//! Offline shim of the [proptest](https://crates.io/crates/proptest) API
//! surface this workspace uses.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be downloaded. This shim keeps every property test in
//! the repository compiling and *running* with the same semantics —
//! deterministic pseudo-random case generation, `prop_assume!` rejection,
//! `prop_assert*!` failure reporting — minus shrinking (a failing case is
//! reported with its seed and case index instead of a minimised input).
//!
//! Supported surface (exactly what the repo's tests use):
//! * `proptest!` with optional `#![proptest_config(...)]`, functions of the
//!   form `fn name(pat in strategy, ...) { body }`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! * `prop_oneof!`, `Just`, `any::<T>()`, `.prop_map(...)`,
//!   `.prop_filter(...)`, tuple strategies, integer range strategies
//! * `prop::collection::vec`, `prop::sample::select`, `prop::bool::ANY`,
//!   `prop::bool::weighted`
//! * `ProptestConfig::with_cases`

#![forbid(unsafe_code)]

/// Deterministic test RNG (SplitMix64) — reproducible across runs.
pub mod test_runner {
    /// Pseudo-RNG the strategies draw from. SplitMix64: tiny, fast, and
    /// plenty good for test-case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the generator.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Debiased via 128-bit multiply-shift.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Why a generated case did not count as a pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// A `prop_assert*!` failed; abort the whole test.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Run-time configuration of a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run.
        pub cases: u32,
        /// Give up after this many consecutive `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// Configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// FNV-1a over the test name: a stable per-test seed, so different
    /// tests explore different streams but each test is reproducible.
    pub fn seed_of(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        h
    }
}

/// Strategies: how test inputs are generated.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values. Unlike real proptest there is no value
    /// tree and no shrinking: `sample` directly produces a value.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keep only values for which `f` returns true (resampling).
        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_filter` adapter (rejection sampling, bounded retries).
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive samples");
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Empty union; add alternatives with [`Union::or`].
        pub fn new() -> Union<V> {
            Union { options: Vec::new() }
        }

        /// Add an alternative.
        pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Union<V> {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<V> Default for Union<V> {
        fn default() -> Self {
            Union::new()
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            assert!(!self.options.is_empty(), "prop_oneof! needs alternatives");
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Acceptable size arguments for [`vec()`].
        pub trait IntoSizeRange {
            /// Lower (inclusive) and upper (inclusive) bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                assert!(self.start < self.end, "empty size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self)
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            VecStrategy { element, min, max }
        }
    }

    /// Sampling from explicit value lists.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Uniform choice from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                assert!(!self.0.is_empty(), "select from an empty list");
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// `prop::sample::select(values)`.
        pub fn select<T: Clone>(values: impl Into<Vec<T>>) -> Select<T> {
            Select(values.into())
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Fair coin.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// The fair-coin strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// `true` with probability `p`.
        #[derive(Clone, Copy, Debug)]
        pub struct Weighted(pub f64);

        impl Strategy for Weighted {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.unit_f64() < self.0
            }
        }

        /// `prop::bool::weighted(p)`.
        pub fn weighted(p: f64) -> Weighted {
            Weighted(p)
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that draws `config.cases` accepted inputs from a
/// deterministic per-test stream and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        // The `#[test]` attribute arrives via `$meta` (proptest! blocks
        // annotate each fn with it), so it is not re-emitted here.
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::from_seed($crate::test_runner::seed_of(stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            while accepted < config.cases {
                case += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections ({rejected})",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case} (deterministic seed, no shrinking): {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($s))+
    };
}

/// Reject the current case and draw a new one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Fail the test if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the test if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b,
            )));
        }
    }};
}

/// Fail the test if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a), stringify!($b), a,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)*), a,
            )));
        }
    }};
}

#[cfg(test)]
mod shim_tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::from_seed(7);
        let mut b = crate::test_runner::TestRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_wiring_works(
            x in 0u64..100,
            v in prop::collection::vec(any::<u8>(), 1..5),
            flag in prop::bool::ANY,
            pick in prop::sample::select(vec![10u32, 20, 30]),
        ) {
            prop_assume!(x != 99);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0, "vec len {} must be positive", v.len());
            let _ = flag;
            prop_assert!(pick % 10 == 0);
        }

        #[test]
        fn oneof_and_map_compose(
            op in prop_oneof![
                (0u8..4, 1u8..=8).prop_map(|(a, s)| (a as u16, s as u16)),
                (0u8..4).prop_map(|a| (a as u16, 0u16)),
            ],
        ) {
            prop_assert!(op.0 < 4 && op.1 <= 8);
        }
    }
}
