//! Offline shim of the [criterion](https://crates.io/crates/criterion) API
//! surface this workspace uses.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be downloaded. This shim keeps `crates/bench`
//! compiling and produces useful wall-clock numbers:
//!
//! * `cargo bench -- --test` (the CI smoke mode) runs every benchmark body
//!   exactly once and reports pass/fail;
//! * a plain `cargo bench` times each benchmark over a fixed measurement
//!   budget and prints `name  median-ish mean  iterations`.
//!
//! No statistics, no plots, no baselines — the repo's first-class perf
//! tracking lives in `asf-repro perf` (see DESIGN.md §Performance).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for parity with the real crate (benches may use either this
/// or `std::hint::black_box`).
pub use std::hint::black_box;

/// Target measurement budget per benchmark in normal mode.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.test_mode, &id.into(), &mut f);
        self
    }
}

/// A named group of benchmarks (`sample_size` is accepted and ignored —
/// the shim sizes its measurement by wall-clock budget instead).
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the shim budgets by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark one function under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.c.test_mode, &full, &mut f);
        self
    }

    /// End the group (no-op; present for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` does the timing.
pub struct Bencher {
    test_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` (once in `--test` mode, else until the measurement
    /// budget is spent).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // Warm-up + calibration run.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let mut iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        iters += 1; // include the calibration run in the reported mean
        self.iters = iters;
        self.elapsed = start.elapsed() + once;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(test_mode: bool, name: &str, f: &mut F) {
    let mut b = Bencher { test_mode, iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
    } else if b.iters > 0 {
        let mean = b.elapsed.as_secs_f64() / b.iters as f64;
        println!("bench {name:<48} {:>12.3} ms/iter  ({} iters)", mean * 1e3, b.iters);
    } else {
        println!("bench {name:<48} (no measurement: b.iter was not called)");
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod shim_tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher { test_mode: false, iters: 0, elapsed: Duration::ZERO };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(b.iters >= 1);
        assert_eq!(n, b.iters);
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut b = Bencher { test_mode: true, iters: 0, elapsed: Duration::ZERO };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 1);
        assert_eq!(b.iters, 1);
    }
}
