//! Run-queue micro-benchmark (DESIGN.md §14): the calendar queue against the
//! `BinaryHeap<Reverse<(u64, usize)>>` it replaced, on the two event-stream
//! shapes the engine actually produces:
//!
//! * `dense/<n>` — `n` cores re-queuing a few cycles ahead of each other,
//!   the steady-state shape of a running simulation. Events cluster inside
//!   one or two ring buckets, so the calendar queue's pop is a mask rotate
//!   plus a tiny min-scan with no sift.
//! * `sparse/<n>` — the same stream with frequent far-future jumps (the
//!   exponential-backoff shape), forcing events through the overflow heap
//!   and across bucket-window boundaries — the calendar queue's worst case.
//!
//! Both drivers replay one deterministic pre-generated delta stream through
//! whichever queue is under test, so the two structures do identical work.
//! Round-4 before/after numbers live in EXPERIMENTS.md.

use asf_machine::sched::{CalendarQueue, SPAN};
use asf_mem::rng::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Pops (= pushes) per benchmark iteration.
const EVENTS: usize = 4096;

/// Pre-generate the delta stream so queue cost is the only thing measured.
/// `far_every` ≈ one far-future (overflow-shaped) delta per that many events;
/// 0 disables them (pure dense mix).
fn deltas(seed: u64, far_every: u64) -> Vec<u64> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..EVENTS)
        .map(|_| {
            if far_every > 0 && rng.below(far_every) == 0 {
                // Backoff-shaped jump: up to several ring spans out.
                rng.range(SPAN / 2, SPAN * 4)
            } else {
                // Near-future requeue: next few memory latencies.
                rng.range(1, 300)
            }
        })
        .collect()
}

fn drive_calendar(n_cores: usize, deltas: &[u64]) -> u64 {
    let mut q = CalendarQueue::new();
    for core in 0..n_cores {
        q.push(core as u64, core);
    }
    let mut sum: u64 = 0;
    for &d in deltas {
        let (clock, core) = q.pop().expect("queue stays populated");
        sum = sum.wrapping_add(clock);
        q.push(clock + d, core);
    }
    sum
}

fn drive_heap(n_cores: usize, deltas: &[u64]) -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for core in 0..n_cores {
        q.push(Reverse((core as u64, core)));
    }
    let mut sum: u64 = 0;
    for &d in deltas {
        let Reverse((clock, core)) = q.pop().expect("queue stays populated");
        sum = sum.wrapping_add(clock);
        q.push(Reverse((clock + d, core)));
    }
    sum
}

fn bench_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched");
    let dense = deltas(0x5CED, 0);
    let sparse = deltas(0xBACC0FF, 8);
    for n in [8usize, 32] {
        g.bench_function(format!("dense/calendar/{n}"), |b| {
            b.iter(|| black_box(drive_calendar(n, &dense)))
        });
        g.bench_function(format!("dense/heap/{n}"), |b| {
            b.iter(|| black_box(drive_heap(n, &dense)))
        });
        g.bench_function(format!("sparse/calendar/{n}"), |b| {
            b.iter(|| black_box(drive_calendar(n, &sparse)))
        });
        g.bench_function(format!("sparse/heap/{n}"), |b| {
            b.iter(|| black_box(drive_heap(n, &sparse)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
