//! Serve-cache micro-benchmarks (DESIGN.md §16): the request-independent
//! costs a submission pays before any simulation runs.
//!
//! * `canonicalize` — spec JSON parse → canonical form (what `POST
//!   /v1/jobs` does to every body);
//! * `digest` — canonical form → FNV-1a content address;
//! * `lookup_hit` — the memoized fast path: digest → LRU hit (the whole
//!   point of the serve layer is that this is the entire cost of a
//!   repeated job);
//! * `lookup_miss` — the miss path over a populated cache (what a fresh
//!   spec pays before queueing);
//! * `get_or_compute_hit` — the single-flight entry point when the answer
//!   is already cached (submit path of a coalesced repeat).
//!
//! Like the other micro benches this compiles in CI via
//! `cargo bench -- --test`.

use asf_core::detector::DetectorKind;
use asf_serve::cache::{CacheConfig, CachedResult, ResultCache};
use asf_serve::spec::JobSpec;
use asf_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// A representative spec body as a client would post it (fields
/// deliberately not in canonical order).
const SUBMIT_BODY: &str = "{\"seed\": 773, \"bench\": \"ssca2\", \
    \"observe\": false, \"detector\": \"sb4\", \"scale\": \"standard\", \
    \"faults\": \"none\"}";

fn entry(digest: u64) -> CachedResult {
    CachedResult {
        spec_digest: digest,
        stats_digest: digest.rotate_left(13),
        body: Arc::new(format!("{{\"schema\": \"asf-serve-v1\", \"n\": {digest}}}")),
        metrics: None,
        trace: None,
    }
}

/// A memory-only cache pre-populated with `n` entries.
fn populated(n: u64) -> ResultCache {
    let cache =
        ResultCache::new(CacheConfig { capacity: n as usize + 16, disk_dir: None })
            .expect("memory cache");
    for d in 0..n {
        cache.insert(d.wrapping_mul(0x9e37_79b9_7f4a_7c15), entry(d));
    }
    cache
}

fn bench_canonicalize(c: &mut Criterion) {
    c.bench_function("serve_cache/canonicalize", |b| {
        b.iter(|| {
            let spec = JobSpec::from_json(black_box(SUBMIT_BODY)).expect("parse");
            black_box(spec.canonical())
        })
    });
}

fn bench_digest(c: &mut Criterion) {
    let spec = JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Standard, 773);
    c.bench_function("serve_cache/digest", |b| {
        b.iter(|| black_box(&spec).digest())
    });
}

fn bench_lookup_hit(c: &mut Criterion) {
    let cache = populated(512);
    let hot = 7u64.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    c.bench_function("serve_cache/lookup_hit", |b| {
        b.iter(|| cache.lookup(black_box(hot)).expect("resident"))
    });
}

fn bench_lookup_miss(c: &mut Criterion) {
    let cache = populated(512);
    c.bench_function("serve_cache/lookup_miss", |b| {
        b.iter(|| black_box(cache.lookup(black_box(0xdead_beef))))
    });
}

fn bench_get_or_compute_hit(c: &mut Criterion) {
    let cache = populated(512);
    let hot = 11u64.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    c.bench_function("serve_cache/get_or_compute_hit", |b| {
        b.iter(|| {
            cache
                .get_or_compute(black_box(hot), || unreachable!("resident entry"))
                .expect("hit")
        })
    });
}

criterion_group!(
    benches,
    bench_canonicalize,
    bench_digest,
    bench_lookup_hit,
    bench_lookup_miss,
    bench_get_or_compute_hit
);
criterion_main!(benches);
