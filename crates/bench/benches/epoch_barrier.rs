//! Epoch-barrier micro-benchmark (DESIGN.md §15): the cost of the
//! cross-shard inbox drain that runs single-threaded between epochs.
//!
//! Two levels:
//!
//! * `dir_drain/<clusters>` — the barrier's directory work in isolation:
//!   pass 1 notes every line that gained speculative state this epoch,
//!   pass 2 routes each committed write footprint and walks the returned
//!   target bitmask — exactly the shape of `ShardEngine::resolve_barrier`,
//!   minus the per-target probe delivery into a live machine.
//! * `engine/<threads>` — a complete 32-core / 2-shard streaming run end to
//!   end, so the barrier cost is visible in its real proportions (epoch
//!   execution dominates; the drain must stay a rounding error).
//!
//! Like `sched`/`probe_batch`, this compiles in CI via `cargo bench -- --test`.

use asf_core::detector::DetectorKind;
use asf_machine::hier::{DirLatency, InterClusterDirectory};
use asf_machine::machine::SimConfig;
use asf_machine::shard::{ShardConfig, ShardEngine};
use asf_mem::addr::{Addr, LineAddr};
use asf_mem::rng::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Committed lines routed per simulated epoch (per cluster).
const COMMITS_PER_CLUSTER: usize = 64;
/// Newly speculative lines noted per simulated epoch (per cluster).
const TOUCHED_PER_CLUSTER: usize = 128;
/// Distinct lines in the synthetic working set.
const LINES: u64 = 1024;

fn line(rng: &mut SimRng) -> LineAddr {
    Addr(rng.below(LINES) * 64).line()
}

/// Pre-generated per-cluster epoch logs: (spec_touched, committed lines).
fn logs(clusters: usize, seed: u64) -> Vec<(Vec<LineAddr>, Vec<LineAddr>)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..clusters)
        .map(|_| {
            let touched = (0..TOUCHED_PER_CLUSTER).map(|_| line(&mut rng)).collect();
            let commits = (0..COMMITS_PER_CLUSTER).map(|_| line(&mut rng)).collect();
            (touched, commits)
        })
        .collect()
}

/// One barrier's directory drain in canonical order: all notes, then all
/// routes, walking each target mask ascending.
fn drain(dir: &mut InterClusterDirectory, logs: &[(Vec<LineAddr>, Vec<LineAddr>)]) -> u64 {
    let lat = DirLatency::opteron_like();
    for (s, (touched, _)) in logs.iter().enumerate() {
        for &l in touched {
            dir.note(l, s);
        }
    }
    let mut delivered: u64 = 0;
    for (s, (_, commits)) in logs.iter().enumerate() {
        for &l in commits {
            let mut targets = dir.route(l, s, lat);
            while targets != 0 {
                let t = targets.trailing_zeros() as u64;
                targets &= targets - 1;
                delivered = delivered.wrapping_add(t + 1);
            }
        }
    }
    delivered
}

fn bench_epoch_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch_barrier");
    for clusters in [4usize, 16] {
        let data = logs(clusters, 0xE90C);
        // Persistent directory across iterations, like across real epochs:
        // steady-state drains hit an already-populated sharer map.
        let mut dir = InterClusterDirectory::new();
        g.bench_function(format!("dir_drain/{clusters}"), |b| {
            b.iter(|| black_box(drain(&mut dir, &data)))
        });
    }
    let preset = asf_workloads::streaming::by_name("smoke").expect("smoke preset");
    for threads in [1usize, 2] {
        g.sample_size(10);
        g.bench_function(format!("engine/{threads}"), |b| {
            b.iter(|| {
                let base = SimConfig::paper_seeded(DetectorKind::SubBlock(8), 0xE90C);
                let cfg = ShardConfig { worker_threads: threads, ..ShardConfig::huge(32) };
                let out = ShardEngine::new(&preset, base, cfg).try_run().expect("run");
                black_box(out.stats.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epoch_barrier);
criterion_main!(benches);
