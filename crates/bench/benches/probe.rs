//! Probe-resolution micro-benchmark (DESIGN.md §10): isolates the cost of
//! `probe_others` by driving miss-heavy scripted workloads where probe
//! handling dominates the step loop, in the two extremes the residency
//! index distinguishes:
//!
//! * `uncontended` — every core streams over its own private region, so
//!   each miss probes a line no other core has ever touched. The index
//!   resolves these probes without visiting a single remote core; the
//!   exhaustive walk inspects all seven.
//! * `contended` — every core streams over one shared read-only region, so
//!   each miss probes a line every other core may hold. Here the index
//!   can skip at most the cores that already evicted their copy, and the
//!   two walks cost about the same — the bench pins that the index never
//!   *hurts* when it cannot help.
//!
//! Each case runs with the residency-narrowed walk (the default) and with
//! `exhaustive_probe_walk` (the pre-index behaviour); the uncontended gap
//! between them is what the index buys.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const CORES: u64 = 8;
/// Lines per streaming region: twice the paper L1 (512 sets × 8 ways), so
/// revisits have been evicted, miss again, and re-probe.
const REGION_LINES: u64 = 8192;
/// Reads per transaction — far below L1 capacity, so no capacity aborts.
const TX_READS: u64 = 4;
const TXNS_PER_CORE: u64 = 256;

/// Each core streams reads over a region with a co-prime line step, so
/// essentially every transactional read is an L1 miss that issues a probe.
/// `private` selects per-core disjoint regions vs one shared region.
fn streaming_workload(private: bool) -> ScriptedWorkload {
    let mut scripts = Vec::new();
    for tid in 0..CORES {
        let base = if private { 0x100_0000 * (tid + 1) } else { 0x100_0000 };
        let mut next = tid * 11; // stagger so contended cores overlap, not march in step
        let mut items = Vec::new();
        for _ in 0..TXNS_PER_CORE {
            let mut ops = Vec::with_capacity(TX_READS as usize);
            for _ in 0..TX_READS {
                ops.push(TxOp::Read { addr: Addr(base + (next % REGION_LINES) * 64), size: 8 });
                next += 7;
            }
            items.push(WorkItem::Tx(TxAttempt::new(ops)));
        }
        scripts.push(items);
    }
    ScriptedWorkload { name: "probe-micro", scripts }
}

fn bench_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe");
    g.sample_size(10);
    for (case, private) in [("uncontended", true), ("contended", false)] {
        let w = streaming_workload(private);
        for (walk, exhaustive) in [("indexed", false), ("exhaustive", true)] {
            g.bench_function(format!("{case}/{walk}"), |b| {
                b.iter(|| {
                    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 9);
                    cfg.exhaustive_probe_walk = exhaustive;
                    let out = Machine::run(&w, cfg);
                    black_box((out.stats.probes, out.stats.cycles))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
