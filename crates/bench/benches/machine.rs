//! Whole-machine benchmarks: simulator throughput per benchmark/detector
//! and the design-choice ablations called out in DESIGN.md — the dirty
//! mechanism on/off (cost of soundness) and the retained-metadata table.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    for name in ["ssca2", "vacation", "kmeans", "intruder"] {
        for det in [DetectorKind::Baseline, DetectorKind::SubBlock(4)] {
            g.bench_function(format!("{name}/{det}"), |b| {
                let w = asf_workloads::by_name(name, Scale::Small).unwrap();
                b.iter(|| {
                    let out = Machine::run(w.as_ref(), SimConfig::paper_seeded(det, 1));
                    black_box(out.stats.cycles)
                })
            });
        }
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    // Cost of the dirty mechanism: same workload, sub-block 4, dirty on/off.
    // (Off is unsound in general — this measures simulator + protocol cost,
    // mirroring the paper's §IV-E overhead discussion.)
    for enable_dirty in [true, false] {
        g.bench_function(format!("dirty_{}", if enable_dirty { "on" } else { "off" }), |b| {
            let w = asf_workloads::by_name("vacation", Scale::Small).unwrap();
            b.iter(|| {
                let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 2);
                cfg.enable_dirty = enable_dirty;
                let out = Machine::run(w.as_ref(), cfg);
                black_box(out.stats.cycles)
            })
        });
    }
    // Related-work mode: DPTM-style WAR speculation vs eager detection.
    for war in [false, true] {
        g.bench_function(format!("war_speculation_{}", if war { "on" } else { "off" }), |b| {
            let w = asf_workloads::by_name("apriori", Scale::Small).unwrap();
            b.iter(|| {
                let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, 4);
                cfg.war_speculation = war;
                let out = Machine::run(w.as_ref(), cfg);
                black_box(out.stats.cycles)
            })
        });
    }
    // Resolution policy ablation.
    for policy in [
        asf_machine::machine::ResolutionPolicy::RequesterWins,
        asf_machine::machine::ResolutionPolicy::VictimWins,
    ] {
        g.bench_function(format!("resolution_{policy:?}"), |b| {
            let w = asf_workloads::by_name("vacation", Scale::Small).unwrap();
            b.iter(|| {
                let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 5);
                cfg.resolution = policy;
                let out = Machine::run(w.as_ref(), cfg);
                black_box(out.stats.cycles)
            })
        });
    }
    // Backoff policy ablation: paper-standard exponential vs near-zero base.
    for (label, base, cap) in [("backoff_paper", 64u64, 10u32), ("backoff_tiny", 4, 2)] {
        g.bench_function(label, |b| {
            let w = asf_workloads::by_name("intruder", Scale::Small).unwrap();
            b.iter(|| {
                let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, 3);
                cfg.backoff_base = base;
                cfg.backoff_cap_exp = cap;
                let out = Machine::run(w.as_ref(), cfg);
                black_box(out.stats.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_workloads, bench_ablations);
criterion_main!(benches);
