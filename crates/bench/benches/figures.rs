//! One Criterion bench per paper table/figure: each measures the time to
//! regenerate that artifact end-to-end at small scale (simulation +
//! aggregation + rendering). `bench_figXX` names follow DESIGN.md §5.

use asf_harness::experiments;
use asf_harness::matrix::Matrix;
use asf_workloads::Scale;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn small_matrix() -> Matrix {
    Matrix::paper_grid(Scale::Small, 0xbe4c)
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper-tables");
    g.bench_function("bench_table1_states", |b| {
        b.iter(|| black_box(experiments::table1().render()))
    });
    g.bench_function("bench_table2_machine", |b| {
        b.iter(|| black_box(experiments::table2().render()))
    });
    g.bench_function("bench_table3_benchmarks", |b| {
        b.iter(|| black_box(experiments::table3().render()))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    // The matrix is the expensive part shared by Figures 1–5 and 8–10;
    // build it once and bench the per-figure aggregation, then bench the
    // full matrix computation itself.
    let m = small_matrix();
    let mut g = c.benchmark_group("paper-figures");
    g.bench_function("bench_fig01_false_rate", |b| {
        b.iter(|| black_box(experiments::fig1(&m).render()))
    });
    g.bench_function("bench_fig02_breakdown", |b| {
        b.iter(|| black_box(experiments::fig2(&m).render()))
    });
    g.bench_function("bench_fig03_timeline", |b| {
        b.iter(|| black_box(experiments::fig3(&m).render()))
    });
    g.bench_function("bench_fig04_space", |b| {
        b.iter(|| black_box(experiments::fig4(&m).render()))
    });
    g.bench_function("bench_fig05_offsets", |b| {
        b.iter(|| black_box(experiments::fig5(&m).render()))
    });
    g.bench_function("bench_fig08_sweep", |b| {
        b.iter(|| black_box(experiments::fig8(&m).render()))
    });
    g.bench_function("bench_fig09_overall", |b| {
        b.iter(|| black_box(experiments::fig9(&m).render()))
    });
    g.bench_function("bench_fig10_speedup", |b| {
        b.iter(|| black_box(experiments::fig10(&m).render()))
    });
    g.bench_function("bench_headline", |b| {
        b.iter(|| black_box(experiments::headline(&m).render()))
    });
    g.bench_function("bench_overhead_model", |b| {
        b.iter(|| black_box(experiments::overhead_table().render()))
    });
    g.finish();

    // Figures 6 and 7 run their own scripted simulations each time.
    let mut g = c.benchmark_group("paper-scripted");
    g.sample_size(20);
    g.bench_function("bench_fig06_dirty_hazard", |b| {
        b.iter(|| black_box(experiments::fig6().render()))
    });
    g.bench_function("bench_fig07_piggyback", |b| {
        b.iter(|| black_box(experiments::fig7().render()))
    });
    g.finish();

    let mut g = c.benchmark_group("matrix");
    g.sample_size(10);
    g.bench_function("bench_paper_grid_small", |b| b.iter(|| black_box(small_matrix().len())));
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
