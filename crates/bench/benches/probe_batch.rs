//! Batched probe-resolution micro-benchmark (DESIGN.md §14): the same
//! probe-heavy contended workload run with the default batched spec-directory
//! pass and with `sequential_probe_resolution`, which forces the reference
//! one-victim-at-a-time walk the batched pass is fenced against.
//!
//! * `batch/<k>` — default path: one dense-row bitmask join picks out the
//!   probed victims, verdicts are computed in a single pass over
//!   `row & targets`, then applied.
//! * `sequential/<k>` — reference path: snapshot the victim list, then
//!   re-resolve each victim's sub-block overlap independently.
//!
//! Both produce bit-identical `RunStats` (see `tests/probe_equivalence.rs`
//! and the golden A/B cells); this bench exists to price the difference.
//! Round-4 numbers live in EXPERIMENTS.md.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SHARED_BASE: u64 = 0x80_0000;

/// All eight cores update a rotating window of `k` shared slots, so nearly
/// every access probes live remote speculative state.
fn contended_workload(k: u64, txns: u64) -> ScriptedWorkload {
    let mut scripts = Vec::new();
    for tid in 0..8u64 {
        let mut items = Vec::new();
        for t in 0..txns {
            let ops = (0..k)
                .map(|i| {
                    let slot = (i + tid + t) % k;
                    TxOp::Update { addr: Addr(SHARED_BASE + slot * 64), size: 8, delta: 1 }
                })
                .collect();
            items.push(WorkItem::Tx(TxAttempt::new(ops)));
        }
        scripts.push(items);
    }
    ScriptedWorkload { name: "probe-batch", scripts }
}

fn run(w: &ScriptedWorkload, sequential: bool) -> (u64, u64) {
    let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(8), 0xBA7C);
    cfg.sequential_probe_resolution = sequential;
    let out = Machine::run(w, cfg);
    (out.stats.probes, out.stats.cycles)
}

fn bench_probe_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe_batch");
    g.sample_size(10);
    for k in [8u64, 32] {
        let w = contended_workload(k, 24);
        // Same stream through both paths: equal stats, different wall time.
        let batched = run(&w, false);
        let sequential = run(&w, true);
        assert_eq!(batched, sequential, "probe paths must agree before timing");
        g.bench_function(format!("batch/{k}"), |b| {
            b.iter(|| black_box(run(&w, false)))
        });
        g.bench_function(format!("sequential/{k}"), |b| {
            b.iter(|| black_box(run(&w, true)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_probe_batch);
criterion_main!(benches);
