//! Commit/abort teardown micro-benchmark (DESIGN.md §11): isolates the cost
//! of ending a transaction attempt as a function of write-set size, in the
//! three teardown flavours the generation-tagged state machinery serves:
//!
//! * `commit/<K>` — one core repeatedly writes the same `K` lines and
//!   commits. After the first transaction the lines sit writable in L1, so
//!   each iteration is `K` cheap hits plus one commit teardown: the bench
//!   is dominated by publish + gang-clear cost.
//! * `abort/<K>` — the same `K` writes followed by a certain user abort.
//!   Every attempt discards a `K`-line write set (and refetches it on the
//!   next attempt), driving the abort teardown path until the fallback
//!   lock resolves the item.
//! * `contended/<K>` — all eight cores update `K` slots of one shared
//!   region, so remote probes constantly hit live speculative state and
//!   tear down victims mid-flight (`abort_victim`), mixing the probe and
//!   teardown hot paths the spec-state directory accelerates.
//!
//! Before/after numbers for the directory + generation-tag change live in
//! EXPERIMENTS.md (round 3).

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Private region base; consecutive lines map to consecutive L1 sets
/// (512 sets × 2 ways at paper geometry), so up to 512 pinned lines never
/// trigger a capacity abort.
const PRIVATE_BASE: u64 = 0x200_0000;
const SHARED_BASE: u64 = 0x80_0000;

/// Write-set sizes swept (lines per transaction).
const SIZES: [u64; 3] = [16, 64, 256];

fn commit_workload(k: u64, txns: u64) -> ScriptedWorkload {
    let mut items = Vec::new();
    for _ in 0..txns {
        let ops = (0..k)
            .map(|i| TxOp::Write { addr: Addr(PRIVATE_BASE + i * 64), size: 8, value: i })
            .collect();
        items.push(WorkItem::Tx(TxAttempt::new(ops)));
    }
    ScriptedWorkload { name: "teardown-commit", scripts: vec![items] }
}

fn abort_workload(k: u64, items_n: u64) -> ScriptedWorkload {
    let mut items = Vec::new();
    for _ in 0..items_n {
        let mut ops: Vec<TxOp> = (0..k)
            .map(|i| TxOp::Write { addr: Addr(PRIVATE_BASE + i * 64), size: 8, value: i })
            .collect();
        // Certain user abort: the attempt retries until the fallback lock
        // picks it up, tearing down a K-line write set every attempt.
        ops.push(TxOp::UserAbort { num: 1, den: 1 });
        items.push(WorkItem::Tx(TxAttempt::new(ops)));
    }
    ScriptedWorkload { name: "teardown-abort", scripts: vec![items] }
}

fn contended_workload(k: u64, txns: u64) -> ScriptedWorkload {
    let mut scripts = Vec::new();
    for tid in 0..8u64 {
        let mut items = Vec::new();
        for t in 0..txns {
            // Every core updates the same K slots, staggered so probes land
            // on live speculative state and abort victims constantly.
            let ops = (0..k)
                .map(|i| {
                    let slot = (i + tid + t) % k;
                    TxOp::Update { addr: Addr(SHARED_BASE + slot * 64), size: 8, delta: 1 }
                })
                .collect();
            items.push(WorkItem::Tx(TxAttempt::new(ops)));
        }
        scripts.push(items);
    }
    ScriptedWorkload { name: "teardown-contended", scripts }
}

fn run(w: &ScriptedWorkload) -> (u64, u64) {
    let cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(8), 0x7EAD);
    let out = Machine::run(w, cfg);
    (out.stats.tx_aborted, out.stats.cycles)
}

fn bench_teardown(c: &mut Criterion) {
    let mut g = c.benchmark_group("teardown");
    g.sample_size(10);
    for k in SIZES {
        let w = commit_workload(k, 64);
        g.bench_function(format!("commit/{k}"), |b| b.iter(|| black_box(run(&w))));
    }
    for k in SIZES {
        let w = abort_workload(k, 2);
        g.bench_function(format!("abort/{k}"), |b| b.iter(|| black_box(run(&w))));
    }
    for k in SIZES {
        let w = contended_workload(k, 16);
        g.bench_function(format!("contended/{k}"), |b| b.iter(|| black_box(run(&w))));
    }
    g.finish();
}

criterion_group!(benches, bench_teardown);
criterion_main!(benches);
