//! Micro-benchmarks of the hot paths: the detector's probe check (executed
//! on every coherence probe against every speculative line), mask
//! coarsening, the set-associative tag array, and the deterministic RNG.

use asf_core::detector::{DetectorKind, ProbeKind};
use asf_core::spec::SpecState;
use asf_mem::addr::{Addr, LineAddr};
use asf_mem::cache::CacheArray;
use asf_mem::geometry::CacheGeometry;
use asf_mem::mask::AccessMask;
use asf_mem::rng::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_detector(c: &mut Criterion) {
    let mut g = c.benchmark_group("detector");
    let mut st = SpecState::EMPTY;
    st.mark_write(AccessMask::from_range(0, 8));
    st.mark_read(AccessMask::from_range(24, 16));
    let probes: Vec<AccessMask> = (0..56).map(|o| AccessMask::from_range(o, 8)).collect();

    for k in [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect] {
        g.bench_function(format!("check_probe/{k}"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for &m in &probes {
                    if k
                        .check_probe(black_box(&st), ProbeKind::Invalidating, black_box(m))
                        .is_conflict()
                    {
                        hits += 1;
                    }
                    if k
                        .check_probe(black_box(&st), ProbeKind::NonInvalidating, black_box(m))
                        .is_conflict()
                    {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn bench_masks(c: &mut Criterion) {
    let mut g = c.benchmark_group("mask");
    let masks: Vec<AccessMask> = (0..57).map(|o| AccessMask::from_range(o, 7)).collect();
    for n in [2usize, 4, 8, 16] {
        g.bench_function(format!("coarsen/{n}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &m in &masks {
                    acc ^= m.coarsen(black_box(n)).0;
                }
                black_box(acc)
            })
        });
    }
    g.bench_function("overlaps", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &a in &masks {
                for &bm in &masks {
                    hits += a.overlaps(bm) as u32;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_cache_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache-array");
    let geom = CacheGeometry::new(64 * 1024, 2);
    g.bench_function("insert_evict_1k", |b| {
        b.iter(|| {
            let mut arr: CacheArray<u32> = CacheArray::new(geom);
            for i in 0..1024u64 {
                let line = Addr(i * 64 * 7).line(); // stride to mix sets
                let _ = arr.insert(black_box(line), i as u32, |_| false);
            }
            black_box(arr.len())
        })
    });
    g.bench_function("lookup_hit", |b| {
        let mut arr: CacheArray<u32> = CacheArray::new(geom);
        let lines: Vec<LineAddr> = (0..512u64).map(|i| Addr(i * 64).line()).collect();
        for (i, &l) in lines.iter().enumerate() {
            let _ = arr.insert(l, i as u32, |_| false);
        }
        b.iter(|| {
            let mut sum = 0u64;
            for &l in &lines {
                if let Some(&v) = arr.peek(black_box(l)) {
                    sum += v as u64;
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64_1k", |b| {
        let mut rng = SimRng::seed_from_u64(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_detector, bench_masks, bench_cache_array, bench_rng);
criterion_main!(benches);
