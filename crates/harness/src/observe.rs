//! The `asf-repro observe` experiment (DESIGN.md §13): run benchmarks with
//! the full observability layer switched on and emit, per benchmark,
//!
//! * a Chrome `trace_event` / Perfetto-compatible timeline with per-core
//!   tracks (transaction begin/commit/abort, probes, retention,
//!   dirty-refetch, fallback-lock lifecycle), streamed through
//!   [`ChromeTraceSink`] so nothing is ring-buffer-dropped;
//! * a metrics snapshot (`asf-obs-v1` JSON: named counters, interval
//!   gauges, wall-time phase histograms);
//! * a hot-path breakdown table (wall time per simulator phase) and a
//!   conflicts-per-interval time-series table with a bar-chart rendering.
//!
//! Observability is contracted to be bit-transparent
//! (`tests/observability.rs` pins `RunStats` equality), so the numbers
//! here are exactly the numbers every other experiment reports.

use crate::error::HarnessError;
use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::obs::{ObsConfig, ObsReport};
use asf_machine::trace::ChromeTraceSink;
use asf_stats::chart::BarChart;
use asf_stats::json::parse;
use asf_stats::run::RunStats;
use asf_stats::table::Table;
use asf_workloads::Scale;

/// Interval width (cycles) of the conflict time-series — the "conflicts
/// per 100k cycles" resolution of the observe report.
pub const DEFAULT_INTERVAL: u64 = 100_000;

/// The benchmark set used by `observe --smoke`: one small, fast benchmark
/// with enough contention to exercise every event class.
pub const SMOKE_BENCH: &str = "ssca2";

/// One benchmark observed end to end.
#[derive(Debug)]
pub struct Observation {
    /// Benchmark name.
    pub bench: String,
    /// The run's ordinary statistics (identical to an unobserved run).
    pub stats: RunStats,
    /// Metrics registry + phase profiler snapshot.
    pub report: ObsReport,
    /// Finished Chrome `trace_event` JSON document.
    pub trace_json: String,
    /// Number of timeline events in `trace_json`.
    pub trace_events: u64,
}

/// Run one benchmark with metrics, profiling, and the streaming timeline
/// sink all enabled.
pub fn observe_one(
    bench: &str,
    scale: Scale,
    seed: u64,
    interval_cycles: u64,
) -> Result<Observation, HarnessError> {
    let w = asf_workloads::by_name(bench, scale)
        .ok_or_else(|| HarnessError::UnknownBenchmark(bench.to_string()))?;
    let cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed);
    let mut machine = Machine::new(w.as_ref(), cfg);
    machine.enable_observability(ObsConfig { interval_cycles, profile: true });
    machine.set_trace_sink(Box::new(ChromeTraceSink::new()));
    let out = machine.try_run_to_completion().map_err(|e| HarnessError::FailedCell {
        bench: bench.to_string(),
        detector: DetectorKind::SubBlock(4).label(),
        error: e.to_string(),
    })?;
    let mut sink = machine.take_trace_sink().expect("sink installed above");
    let sink = sink
        .as_any()
        .downcast_mut::<ChromeTraceSink>()
        .expect("the installed sink is a ChromeTraceSink");
    let sink = std::mem::replace(sink, ChromeTraceSink::new());
    let trace_events = sink.events();
    Ok(Observation {
        bench: bench.to_string(),
        stats: out.stats,
        report: out.obs.expect("observability enabled above"),
        trace_json: sink.finish(),
        trace_events,
    })
}

/// Validate one observation against the artifact contract the CI smoke
/// step enforces: the timeline parses as a non-empty Chrome `trace_event`
/// array with per-core tracks carrying transaction lifecycle events, and
/// the metrics snapshot parses with at least ten named counters, the
/// interval series, and the phase histograms.
pub fn validate(obs: &Observation) -> Result<(), String> {
    // --- timeline ------------------------------------------------------
    let trace = parse(&obs.trace_json).map_err(|e| format!("trace JSON does not parse: {e}"))?;
    let events = trace.as_arr().map_err(|e| format!("trace is not an array: {e}"))?;
    if events.is_empty() {
        return Err("trace is empty".into());
    }
    let mut tids = std::collections::HashSet::new();
    let (mut begins, mut closes, mut tracks) = (0u64, 0u64, 0u64);
    for ev in events {
        let name = ev
            .field("name")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("event without a name: {e}"))?;
        let ph = ev
            .field("ph")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("event without a phase: {e}"))?;
        match (name, ph) {
            ("tx-begin", "i") => begins += 1,
            ("transaction" | "transaction-aborted", "X") => {
                closes += 1;
                tids.insert(ev.field("tid").and_then(|v| v.as_u64()).unwrap_or(u64::MAX));
            }
            ("thread_name", "M") => tracks += 1,
            _ => {}
        }
    }
    if begins == 0 || closes == 0 {
        return Err(format!(
            "timeline lacks transaction lifecycle events (begins {begins}, commits/aborts {closes})"
        ));
    }
    if tracks == 0 || tids.is_empty() {
        return Err("timeline has no named per-core tracks".into());
    }
    // --- metrics snapshot ----------------------------------------------
    let snap = parse(&obs.report.to_json()).map_err(|e| format!("metrics JSON: {e}"))?;
    let schema = snap
        .field("schema")
        .and_then(|v| v.as_str())
        .map_err(|e| format!("metrics snapshot without schema: {e}"))?;
    if schema != "asf-obs-v1" {
        return Err(format!("unexpected metrics schema {schema:?}"));
    }
    if obs.report.registry.counter_count() < 10 {
        return Err(format!(
            "metrics snapshot has {} counters, contract says >= 10",
            obs.report.registry.counter_count()
        ));
    }
    snap.field("counters").map_err(|e| format!("metrics snapshot: {e}"))?;
    let intervals = snap.field("intervals").map_err(|e| format!("metrics snapshot: {e}"))?;
    let conflicts = intervals
        .field("conflicts.per_interval")
        .map_err(|e| format!("metrics snapshot: {e}"))?;
    conflicts.field("width").and_then(|v| v.as_u64()).map_err(|e| format!("series width: {e}"))?;
    conflicts.field("buckets").and_then(|v| v.as_u64_vec()).map_err(|e| format!("series: {e}"))?;
    snap.field("phases").map_err(|e| format!("metrics snapshot: {e}"))?;
    // Cross-check: the registry's conflict counter must agree with the
    // digest-pinned RunStats (the bit-transparency contract in action).
    let counted = obs.report.registry.get_by_name("conflict.detected").unwrap_or(0);
    if counted != obs.stats.conflicts.total() {
        return Err(format!(
            "registry counted {counted} conflicts but RunStats has {}",
            obs.stats.conflicts.total()
        ));
    }
    Ok(())
}

/// The wall-time-per-phase breakdown table across all observations.
pub fn breakdown_table(observations: &[Observation]) -> Table {
    let mut t = Table::new(
        "Observe: hot-path wall-time breakdown",
        &["benchmark", "phase", "calls", "total ms", "mean µs", "share"],
    );
    for obs in observations {
        let total_ns: u64 = obs.report.phases.phases().map(|(_, _, ns, _, _)| ns).sum();
        for (name, count, ns, _max, _hist) in obs.report.phases.phases() {
            let share = if total_ns > 0 { ns as f64 / total_ns as f64 } else { 0.0 };
            let mean_us = if count > 0 { ns as f64 / count as f64 / 1_000.0 } else { 0.0 };
            t.row(vec![
                obs.bench.clone(),
                name.to_string(),
                count.to_string(),
                format!("{:.2}", ns as f64 / 1e6),
                format!("{mean_us:.2}"),
                asf_stats::table::pct(share),
            ]);
        }
    }
    t
}

/// The conflicts-per-interval time-series table across all observations
/// (one row per non-empty window, plus each benchmark's totals).
pub fn series_table(observations: &[Observation]) -> Table {
    let mut t = Table::new(
        "Observe: conflicts per interval",
        &["benchmark", "window start (cycles)", "conflicts", "false"],
    );
    for obs in observations {
        let mut windows: Vec<(u64, u64, u64)> = Vec::new();
        for (name, width, buckets) in obs.report.registry.intervals() {
            let which = match name {
                "conflicts.per_interval" => 0,
                "false_conflicts.per_interval" => 1,
                _ => continue,
            };
            for (i, &n) in buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let start = i as u64 * width;
                match windows.iter_mut().find(|w| w.0 == start) {
                    Some(w) => {
                        if which == 0 {
                            w.1 += n;
                        } else {
                            w.2 += n;
                        }
                    }
                    None => windows.push(if which == 0 {
                        (start, n, 0)
                    } else {
                        (start, 0, n)
                    }),
                }
            }
        }
        windows.sort_unstable();
        for (start, c, f) in &windows {
            t.row(vec![
                obs.bench.clone(),
                start.to_string(),
                c.to_string(),
                f.to_string(),
            ]);
        }
        t.row(vec![
            format!("{} (total)", obs.bench),
            "-".into(),
            obs.stats.conflicts.total().to_string(),
            obs.stats.conflicts.false_total().to_string(),
        ]);
    }
    t
}

/// Bar chart of each observation's conflict time-series (one bar per
/// interval window), rendered with the same machinery as the figure charts.
pub fn series_chart(obs: &Observation) -> BarChart {
    let mut c = BarChart::new(
        format!("{}: conflicts per {}k cycles", obs.bench, DEFAULT_INTERVAL / 1000),
        "",
    );
    for (name, width, buckets) in obs.report.registry.intervals() {
        if name != "conflicts.per_interval" {
            continue;
        }
        for (i, &n) in buckets.iter().enumerate() {
            c.bar(format!("{}k", i as u64 * width / 1000), n as f64);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_one_produces_valid_artifacts() {
        let obs = observe_one(SMOKE_BENCH, Scale::Small, 17, DEFAULT_INTERVAL).expect("runs");
        validate(&obs).expect("artifacts meet the contract");
        assert!(obs.trace_events > 0);
        assert!(obs.report.registry.get_by_name("tx.commits").unwrap() > 0);
        let breakdown = breakdown_table(std::slice::from_ref(&obs));
        assert!(breakdown.len() >= 4, "one row per profiled phase");
        let series = series_table(std::slice::from_ref(&obs));
        assert!(!series.is_empty());
    }

    #[test]
    fn unknown_benchmark_is_a_typed_error() {
        let err = observe_one("nope", Scale::Small, 1, DEFAULT_INTERVAL).unwrap_err();
        assert_eq!(err, HarnessError::UnknownBenchmark("nope".into()));
    }

    #[test]
    fn validate_rejects_empty_trace() {
        let mut obs = observe_one(SMOKE_BENCH, Scale::Small, 17, DEFAULT_INTERVAL).expect("runs");
        obs.trace_json = "[\n]\n".into();
        let err = validate(&obs).unwrap_err();
        assert!(err.contains("empty"), "got: {err}");
    }
}
