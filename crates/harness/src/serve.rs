//! `asf-repro serve` / `asf-repro loadtest` — harness glue for the
//! content-addressed simulation service (DESIGN.md §16).
//!
//! `serve` runs [`asf_serve::server::Server`] in the foreground until a
//! `POST /v1/shutdown` arrives (or, with `--smoke`, runs the CI gate:
//! ephemeral port, one fixed-seed job submitted twice, the repeat must be
//! a byte-identical cache hit). `loadtest` hammers a private server with
//! in-process concurrent clients over a Zipf-skewed job mix and appends
//! the measurement as a round of the `"serve_rounds"` section of
//! `BENCH_perf.json` — the same append-only co-tenancy discipline as
//! `"scale_rounds"` (see [`crate::section`]).

use crate::section;
use asf_serve::loadtest::{LoadTestOpts, LoadTestReport};
use asf_stats::table::Table;
use asf_workloads::Scale;

/// Default concurrent clients for `asf-repro loadtest` ("thousands of
/// in-process concurrent clients" at full scale; CI uses fewer).
pub const DEFAULT_CLIENTS: usize = 128;
/// Default requests per client.
pub const DEFAULT_REQUESTS: usize = 24;
/// Default distinct-spec universe size.
pub const DEFAULT_DISTINCT: usize = 32;

/// The speedup floor the load test holds the hot path to (ISSUE/DESIGN
/// §16 acceptance: memoized repeats ≥ 100x faster than cold simulation of
/// the standard-scale probe cell).
pub const SPEEDUP_FLOOR: f64 = 100.0;

/// Shape a [`LoadTestOpts`] from CLI-level knobs. `scale` sets the mixed
/// jobs' size; the speedup probe is standard-scale regardless.
pub fn loadtest_opts(clients: usize, scale: Scale, seed: u64) -> LoadTestOpts {
    LoadTestOpts {
        clients,
        requests_per_client: DEFAULT_REQUESTS,
        distinct_specs: DEFAULT_DISTINCT,
        seed,
        scale,
        workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
        // Deep enough that a full-burst start never 429s the measurement
        // itself; admission control is exercised by the serve unit tests.
        queue_capacity: clients.saturating_mul(DEFAULT_REQUESTS).max(1024),
    }
}

/// Human-readable summary table of one load-test run.
pub fn loadtest_table(opts: &LoadTestOpts, report: &LoadTestReport) -> Table {
    let mut t = Table::new(
        "serve loadtest — Zipf-skewed job mix against the result cache",
        &[
            "clients",
            "requests",
            "cached",
            "coalesced",
            "queued",
            "rejected",
            "retries",
            "hit rate",
            "p50 (us)",
            "p99 (us)",
            "h50 (us)",
            "h90 (us)",
            "h99 (us)",
            "cold (ms)",
            "hot (us)",
            "speedup",
        ],
    );
    t.row(vec![
        opts.clients.to_string(),
        report.requests.to_string(),
        report.cached.to_string(),
        report.coalesced.to_string(),
        report.queued.to_string(),
        report.rejected.to_string(),
        report.retries.to_string(),
        format!("{:.1}%", report.hit_rate * 100.0),
        format!("{:.1}", report.p50_us),
        format!("{:.1}", report.p99_us),
        format!("{:.1}", report.hist_p50_us),
        format!("{:.1}", report.hist_p90_us),
        format!("{:.1}", report.hist_p99_us),
        format!("{:.2}", report.cold_ns as f64 / 1e6),
        format!("{:.1}", report.hot_ns as f64 / 1e3),
        format!("{:.0}x", report.speedup),
    ]);
    t
}

/// Render one `serve_rounds` entry for [`append_serve_round`].
pub fn serve_round_entry(
    opts: &LoadTestOpts,
    report: &LoadTestReport,
    round: u64,
    git_subject: &str,
) -> String {
    format!(
        "{{\"round\": {round}, \"clients\": {}, \"distinct_specs\": {}, \
         \"mix_seed\": {}, \"git_subject\": \"{}\", \"measure\": {}}}",
        opts.clients,
        opts.distinct_specs,
        opts.seed,
        section::sanitize(git_subject),
        report.to_json(),
    )
}

/// The verbatim `"serve_rounds": [...]` section text, if present.
pub fn extract_serve_rounds(json: &str) -> Option<&str> {
    section::extract_section(json, "serve_rounds")
}

/// The 1-based number the next appended round should carry.
pub fn next_serve_round(json: &str) -> u64 {
    section::next_round(json, "serve_rounds")
}

/// Append one round to the `"serve_rounds"` section of a `BENCH_perf.json`
/// document (creating section/document as needed).
pub fn append_serve_round(json: &str, entry: &str) -> String {
    section::append_round(json, "serve_rounds", entry)
}

/// Re-attach `old_json`'s `"serve_rounds"` section to a freshly rendered
/// perf report that lacks one.
pub fn carry_serve_rounds(old_json: &str, new_json: &str) -> String {
    section::carry_section(old_json, new_json, "serve_rounds")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> LoadTestReport {
        LoadTestReport {
            requests: 3072,
            cached: 2000,
            coalesced: 700,
            queued: 372,
            rejected: 0,
            retries: 5,
            hit_rate: 2000.0 / 3072.0,
            p50_us: 81.0,
            p99_us: 410.5,
            hist_p50_us: 131.0,
            hist_p90_us: 524.2,
            hist_p99_us: 524.2,
            cold_ns: 9_000_000,
            hot_ns: 60_000,
            speedup: 150.0,
        }
    }

    #[test]
    fn round_entry_is_valid_json_and_appends() {
        let opts = loadtest_opts(128, Scale::Small, 7);
        let entry = serve_round_entry(&opts, &fake_report(), 1, "some [bracketed] \"subject\"");
        let doc = append_serve_round("", &entry);
        assert!(asf_stats::json::parse(&doc).is_ok(), "{doc}");
        assert_eq!(next_serve_round(&doc), 2);
        let doc2 = append_serve_round(&doc, &serve_round_entry(&opts, &fake_report(), 2, "x"));
        assert!(asf_stats::json::parse(&doc2).is_ok(), "{doc2}");
        assert_eq!(next_serve_round(&doc2), 3);
        assert!(doc2.contains("\"speedup\": 150.0"));
    }

    #[test]
    fn table_renders_the_headline_numbers() {
        let opts = loadtest_opts(128, Scale::Small, 7);
        let rendered = loadtest_table(&opts, &fake_report()).render();
        assert!(rendered.contains("150x"), "{rendered}");
        assert!(rendered.contains("65.1%"), "{rendered}");
    }
}
