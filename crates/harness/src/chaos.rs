//! `asf-repro chaos` — the self-healing soak (DESIGN.md §17).
//!
//! Drives a live [`asf_serve::server::Server`] under a seeded
//! [`ServeChaosPlan`]: a quarter of job attempts panic their worker, a
//! quarter stall far past the job deadline, and a quarter of cell writes
//! fail or tear on disk. The soak then asserts the self-healing
//! invariants end to end:
//!
//! 1. **The pool heals** — every injected panic is counted, every
//!    retired worker is respawned, and the pool ends at full strength
//!    (`/v1/healthz` reports `ok`).
//! 2. **No job outlives its deadline** by more than one watchdog tick
//!    plus a grace window: every submission reaches a *terminal* state
//!    (`done`, `failed`, `cancelled`, `deadline_exceeded`) inside
//!    `deadline + tick + grace`.
//! 3. **Cache integrity holds** — every served result parses as a
//!    well-formed `asf-serve-v1` document for the right spec and repeat
//!    reads are byte-identical; torn cells are quarantined, never served.
//! 4. **Work still completes** — resubmitting a failed/cancelled spec
//!    eventually computes it (fresh attempts draw fresh chaos verdicts),
//!    and the final drain finishes promptly because injected stalls
//!    observe the shutdown flag.
//!
//! Everything is deterministic in the plan seed: the same seed replays
//! the same panics, stalls, and torn writes, so a CI failure reproduces
//! locally with the same command.

use asf_serve::chaos::ServeChaosPlan;
use asf_serve::flightrec::FLIGHTREC_SCHEMA;
use asf_serve::http::Client;
use asf_serve::server::{ServeOpts, Server};
use asf_stats::table::Table;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Knobs for one soak run.
#[derive(Clone, Debug)]
pub struct ChaosOpts {
    /// Chaos-plan seed; the whole run is deterministic in it.
    pub seed: u64,
    /// Distinct specs in the first wave.
    pub specs: usize,
    /// Hard bound on extra specs submitted while hunting coverage
    /// (smoke mode keeps going until it has seen at least one injected
    /// panic *and* one deadline expiry).
    pub max_specs: usize,
    /// Worker threads under supervision.
    pub workers: usize,
    /// Per-job deadline. Deliberately far below the injected stall, so
    /// every stalled attempt exercises deadline cancellation.
    pub deadline_ms: u64,
    /// Watchdog scan interval.
    pub tick_ms: u64,
    /// Scheduling-noise allowance on top of `deadline + tick` before a
    /// still-pending job counts as an invariant violation.
    pub grace_ms: u64,
    /// Resubmission rounds for specs chaos knocked down.
    pub rounds: u32,
    /// Require ≥1 injected panic and ≥1 deadline expiry (the smoke
    /// gate's "the chaos actually fired" check).
    pub require_coverage: bool,
    /// Where flight-recorder dumps land. `None` keeps them under the
    /// soak's temp directory (validated, then cleaned up with it);
    /// `Some(dir)` persists them — the CLI passes `results/`.
    pub flightrec_dir: Option<PathBuf>,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            seed: 0xc405,
            specs: 24,
            max_specs: 96,
            workers: 3,
            deadline_ms: 400,
            tick_ms: 10,
            grace_ms: 2_000,
            rounds: 4,
            require_coverage: true,
            flightrec_dir: None,
        }
    }
}

/// What one soak run observed; `table()` renders the summary.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Distinct specs driven.
    pub specs: usize,
    /// Total submissions (resubmission rounds included).
    pub submissions: u64,
    /// Specs whose result was ultimately served.
    pub completed: usize,
    /// Worker panics injected by the plan.
    pub panics_injected: u64,
    /// Stalls injected by the plan.
    pub stalls_injected: u64,
    /// Jobs the watchdog expired.
    pub deadline_exceeded: u64,
    /// Jobs that landed `failed` (injected panics surface here).
    pub failed: u64,
    /// Workers respawned by supervision.
    pub respawns: u64,
    /// Torn cells quarantined by the checksum check.
    pub quarantined: u64,
    /// Injected disk-write failures absorbed.
    pub disk_write_failures: u64,
    /// Milliseconds the final drain took.
    pub drain_ms: u64,
    /// Flight-recorder dump triggers fired during the soak.
    pub flight_dumps: u64,
    /// Paths of the schema-validated dump files written.
    pub dump_paths: Vec<PathBuf>,
    /// Address the soak server listened on.
    pub addr: String,
}

impl ChaosReport {
    /// Summary table for the CLI.
    pub fn table(&self, seed: u64) -> Table {
        let mut t = Table::new(
            "chaos soak — self-healing serve layer under seeded fault injection",
            &[
                "seed",
                "specs",
                "submissions",
                "completed",
                "panics",
                "respawns",
                "stalls",
                "deadlined",
                "failed",
                "quarantined",
                "disk fails",
                "drain (ms)",
                "flight dumps",
            ],
        );
        t.row(vec![
            format!("{seed:#x}"),
            self.specs.to_string(),
            self.submissions.to_string(),
            self.completed.to_string(),
            self.panics_injected.to_string(),
            self.respawns.to_string(),
            self.stalls_injected.to_string(),
            self.deadline_exceeded.to_string(),
            self.failed.to_string(),
            self.quarantined.to_string(),
            self.disk_write_failures.to_string(),
            self.drain_ms.to_string(),
            self.flight_dumps.to_string(),
        ]);
        t
    }
}

/// The job mix: tiny distinct specs (seed-parameterised) so compute time
/// is negligible next to the injected adversity.
fn spec_body(i: usize) -> String {
    let bench = if i.is_multiple_of(2) { "ssca2" } else { "intruder" };
    format!(
        "{{\"bench\": \"{bench}\", \"detector\": \"sb4\", \"scale\": \"small\", \
         \"seed\": {}}}",
        1000 + i
    )
}

/// One tracked submission.
struct Pending {
    index: usize,
    id: String,
    submitted: Instant,
}

/// Silence the panic hook for the plan's own injected panics (they are
/// the point of the soak); everything else still reports. Restores the
/// previous hook on drop.
struct QuietChaosPanics;

impl QuietChaosPanics {
    fn install() -> QuietChaosPanics {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("chaos: injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("chaos: injected"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
        QuietChaosPanics
    }
}

impl Drop for QuietChaosPanics {
    fn drop(&mut self) {
        // Modifying the hook from a panicking thread aborts the process;
        // leave it installed if we are unwinding.
        if !std::thread::panicking() {
            let _ = std::panic::take_hook();
        }
    }
}

fn submit(client: &mut Client, index: usize) -> Result<Pending, String> {
    let reply = client
        .post("/v1/jobs", &spec_body(index))
        .map_err(|e| format!("submit spec {index}: {e}"))?;
    if reply.status != 200 {
        return Err(format!("submit spec {index}: HTTP {} {}", reply.status, reply.text()));
    }
    let text = reply.text();
    let root = asf_stats::json::parse(&text).map_err(|e| format!("submit reply: {e}"))?;
    let id = root
        .field("job")
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .map_err(|e| format!("submit reply {text:?}: {e}"))?;
    Ok(Pending { index, id, submitted: Instant::now() })
}

/// Poll `pending` until every job is terminal, enforcing invariant 2 —
/// or error out naming the job that outlived its window. Returns the
/// per-spec terminal labels.
fn await_terminals(
    client: &mut Client,
    pending: &[Pending],
    opts: &ChaosOpts,
) -> Result<Vec<(usize, String)>, String> {
    let allowance = Duration::from_millis(opts.deadline_ms + opts.tick_ms + opts.grace_ms);
    let mut landed: Vec<Option<String>> = vec![None; pending.len()];
    loop {
        let mut open = 0usize;
        for (slot, job) in pending.iter().enumerate() {
            if landed[slot].is_some() {
                continue;
            }
            let reply = client
                .get(&format!("/v1/jobs/{}", job.id))
                .map_err(|e| format!("status {}: {e}", job.id))?;
            let text = reply.text();
            let status = {
                let root = asf_stats::json::parse(&text)
                    .map_err(|e| format!("status for {} does not parse: {e}", job.id))?;
                root.field("status")
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .map_err(|e| format!("status reply {text:?}: {e}"))?
            };
            match status.as_str() {
                "queued" | "running" => {
                    if job.submitted.elapsed() > allowance {
                        return Err(format!(
                            "job {} (spec {}) still {:?} {}ms after submission — \
                             outlived deadline {}ms + tick {}ms + grace {}ms",
                            job.id,
                            job.index,
                            status,
                            job.submitted.elapsed().as_millis(),
                            opts.deadline_ms,
                            opts.tick_ms,
                            opts.grace_ms,
                        ));
                    }
                    open += 1;
                }
                _ => landed[slot] = Some(status),
            }
        }
        if open == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(opts.tick_ms));
    }
    Ok(pending
        .iter()
        .zip(landed)
        .map(|(job, status)| (job.index, status.expect("loop exits only when all landed")))
        .collect())
}

/// Invariant 3: a served result must be a well-formed `asf-serve-v1`
/// document and repeat reads byte-identical. A 404 "evicted" answer is
/// legitimate (tiny cache + quarantined cells); anything else is not.
fn check_result_integrity(client: &mut Client, id: &str) -> Result<bool, String> {
    let first = client
        .get(&format!("/v1/jobs/{id}/result"))
        .map_err(|e| format!("result {id}: {e}"))?;
    match first.status {
        200 => {}
        404 | 410 => return Ok(false),
        other => return Err(format!("result {id}: unexpected HTTP {other}: {}", first.text())),
    }
    let body = first.text();
    let root = asf_stats::json::parse(&body)
        .map_err(|e| format!("served result {id} does not parse: {e}"))?;
    let schema = root
        .field("schema")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    if schema != "asf-serve-v1" {
        return Err(format!("served result {id} has schema {schema:?}"));
    }
    let digest = root
        .field("spec_digest")
        .and_then(|v| v.as_str())
        .unwrap_or_default();
    if digest != id {
        return Err(format!("served result {id} carries spec_digest {digest:?}"));
    }
    let again = client
        .get(&format!("/v1/jobs/{id}/result"))
        .map_err(|e| format!("repeat result {id}: {e}"))?;
    if again.status == 200 && again.body != first.body {
        return Err(format!("repeat read of result {id} was not byte-identical"));
    }
    Ok(true)
}

/// Scrape `/v1/metrics/prometheus` and require it to parse as valid
/// OpenMetrics text (the exposition must stay scrapeable before, during
/// and after the chaos). Returns the `asf_http_requests_total` sum so the
/// caller can assert counters are monotonic across scrapes.
fn scrape_prometheus(client: &mut Client, when: &str) -> Result<f64, String> {
    let resp = client
        .get("/v1/metrics/prometheus")
        .map_err(|e| format!("prometheus scrape ({when}): {e}"))?;
    if resp.status != 200 {
        return Err(format!("prometheus scrape ({when}) status {}", resp.status));
    }
    let text = resp.text();
    let exposition = asf_stats::openmetrics::parse_exposition(&text)
        .map_err(|e| format!("prometheus output ({when}) does not parse: {e}"))?;
    Ok(exposition
        .samples
        .iter()
        .filter(|s| s.name == "asf_http_requests_total")
        .map(|s| s.value)
        .sum())
}

/// Read every flight dump back, validate the `asf-flightrec-v1` schema,
/// and require at least one dump to reference (as its `job`) a digest the
/// soak actually submitted — the recorder must name the job that died,
/// not just fire.
fn check_flight_dumps(paths: &[PathBuf], submitted: &HashSet<String>) -> Result<(), String> {
    if paths.is_empty() {
        return Err("chaos injected faults but the flight recorder wrote no dump".to_string());
    }
    let mut referenced = false;
    for path in paths {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("flight dump {}: {e}", path.display()))?;
        let root = asf_stats::json::parse(&body)
            .map_err(|e| format!("flight dump {} does not parse: {e}", path.display()))?;
        let schema = root
            .field("schema")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("flight dump {}: {e}", path.display()))?;
        if schema != FLIGHTREC_SCHEMA {
            return Err(format!("flight dump {} has schema {schema:?}", path.display()));
        }
        let reason = root
            .field("reason")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("flight dump {}: {e}", path.display()))?;
        if !matches!(reason, "worker_panic" | "deadline_exceeded") {
            return Err(format!(
                "flight dump {} carries unexpected reason {reason:?}",
                path.display()
            ));
        }
        root.field("events")
            .and_then(|v| v.as_arr().map(|a| a.len()))
            .map_err(|e| format!("flight dump {} events: {e}", path.display()))?;
        if let Ok(job) = root.field("job").and_then(|v| v.as_str()) {
            if submitted.contains(job) {
                referenced = true;
            }
        }
    }
    if !referenced {
        return Err("no flight dump references a submitted job digest".to_string());
    }
    Ok(())
}

/// Run the soak. Deterministic in `opts.seed`; errors describe the
/// violated invariant.
pub fn soak(opts: &ChaosOpts) -> Result<ChaosReport, String> {
    let _quiet = QuietChaosPanics::install();
    let disk_dir = std::env::temp_dir().join(format!(
        "asf_chaos_soak_{}_{:x}",
        std::process::id(),
        opts.seed
    ));
    let _ = std::fs::remove_dir_all(&disk_dir);
    let flight_dir =
        opts.flightrec_dir.clone().unwrap_or_else(|| disk_dir.join("flightrec"));
    let server = Server::start(ServeOpts {
        workers: opts.workers,
        queue_capacity: opts.max_specs.max(16),
        // Tiny memory cache: results spill to (chaos-torn) disk cells and
        // reloads exercise the checksum/quarantine path.
        cache_capacity: 4,
        disk_dir: Some(disk_dir.clone()),
        default_deadline_ms: opts.deadline_ms,
        max_deadline_ms: opts.deadline_ms,
        deadline_tick_ms: opts.tick_ms,
        chaos: ServeChaosPlan {
            stall_ms: opts.deadline_ms.saturating_mul(25),
            ..ServeChaosPlan::soak(opts.seed)
        },
        flightrec_dir: Some(flight_dir.clone()),
        ..ServeOpts::default()
    })
    .map_err(|e| format!("cannot start chaos server: {e}"))?;
    let state = server.state();
    let mut client = Client::connect(&server.addr()).map_err(|e| format!("connect: {e}"))?;
    let scrape_before = scrape_prometheus(&mut client, "before soak")?;

    let mut report = ChaosReport { addr: server.addr(), ..ChaosReport::default() };
    let mut done: Vec<(usize, String)> = Vec::new();
    let mut submitted_ids: HashSet<String> = HashSet::new();
    let mut next_spec = 0usize;
    let mut wave: Vec<usize> = Vec::new();

    // Wave 0 is the configured mix; later waves resubmit what chaos
    // knocked down, plus (in coverage mode) fresh specs until both fault
    // classes have demonstrably fired.
    for round in 0..=opts.rounds {
        if round == 0 {
            wave = (0..opts.specs).collect();
            next_spec = opts.specs;
        }
        if wave.is_empty() {
            let covered = state.chaos_panics_injected.load(Ordering::Relaxed) > 0
                && state.jobs_deadline_exceeded.load(Ordering::Relaxed) > 0;
            if !opts.require_coverage || covered || next_spec >= opts.max_specs {
                break;
            }
            // Deterministic coverage hunt: extend the spec sequence.
            wave = (next_spec..(next_spec + 8).min(opts.max_specs)).collect();
            next_spec = (next_spec + 8).min(opts.max_specs);
        }
        let mut pending = Vec::new();
        for &index in &wave {
            let job = submit(&mut client, index)?;
            submitted_ids.insert(job.id.clone());
            pending.push(job);
            report.submissions += 1;
        }
        // Mid-soak scrape: the exposition must stay parseable while
        // panics, stalls and deadline kills are in full swing.
        scrape_prometheus(&mut client, "during soak")?;
        let landed = await_terminals(&mut client, &pending, opts)?;
        wave = landed
            .iter()
            .filter(|(_, status)| !matches!(status.as_str(), "done" | "cached"))
            .map(|(index, _)| *index)
            .collect();
        for (index, status) in landed {
            if matches!(status.as_str(), "done" | "cached") {
                done.push((index, pending.iter().find(|p| p.index == index).unwrap().id.clone()));
            }
        }
    }

    // Invariant 3 over everything that completed.
    report.completed = 0;
    for (_, id) in &done {
        if check_result_integrity(&mut client, id)? {
            report.completed += 1;
        }
    }

    // Invariant 1: the pool healed and readiness is green.
    let health_body = client
        .get("/v1/healthz")
        .map_err(|e| format!("healthz: {e}"))?
        .text();
    let health = server.state().pool_health();
    if health.live != health.workers {
        return Err(format!(
            "pool did not heal: {}/{} workers live ({health_body})",
            health.live, health.workers
        ));
    }
    if health.respawns != health.panics {
        return Err(format!(
            "respawns ({}) diverged from panics ({}) — {health_body}",
            health.respawns, health.panics
        ));
    }
    if !health_body.contains("\"ok\": true") {
        return Err(format!("healthz not ok after soak: {health_body}"));
    }
    report.panics_injected = state.chaos_panics_injected.load(Ordering::Relaxed);
    report.stalls_injected = state.chaos_stalls_injected.load(Ordering::Relaxed);
    report.deadline_exceeded = state.jobs_deadline_exceeded.load(Ordering::Relaxed);
    report.failed = state.jobs_failed.load(Ordering::Relaxed);
    report.respawns = health.respawns;
    report.quarantined = state.cache.counters.corrupt_quarantined.load(Ordering::Relaxed);
    report.disk_write_failures =
        state.cache.counters.disk_write_failures.load(Ordering::Relaxed);
    report.specs = next_spec;
    if health.panics != report.panics_injected {
        return Err(format!(
            "worker panics ({}) diverged from injected panics ({}) — a job \
             panicked on its own",
            health.panics, report.panics_injected
        ));
    }
    if opts.require_coverage {
        if report.panics_injected == 0 {
            return Err("coverage: the plan never injected a worker panic".to_string());
        }
        if report.deadline_exceeded == 0 {
            return Err("coverage: no job ever exceeded its deadline".to_string());
        }
    }
    if report.completed == 0 {
        return Err("no spec ever completed under chaos".to_string());
    }

    // Flight recorder: every panic and deadline kill fired a dump; the
    // written files must be whole, schema-tagged, and at least one must
    // name a job the soak submitted.
    report.flight_dumps = state.flightrec.dumps();
    report.dump_paths = state.flightrec.dump_paths();
    if report.flight_dumps == 0 {
        return Err("chaos fired but flight_dumps is zero".to_string());
    }
    check_flight_dumps(&report.dump_paths, &submitted_ids)?;

    // Final scrape: still parseable after the adversity, and the request
    // counter never went backwards.
    let scrape_after = scrape_prometheus(&mut client, "after soak")?;
    if scrape_after < scrape_before {
        return Err(format!(
            "asf_http_requests_total decreased across the soak \
             ({scrape_before} -> {scrape_after})"
        ));
    }

    // Invariant 4: the drain completes promptly — injected stalls watch
    // the shutdown flag, so nothing waits out a full stall.
    let drain_started = Instant::now();
    drop(state);
    server.shutdown();
    report.drain_ms = drain_started.elapsed().as_millis() as u64;
    if report.drain_ms > opts.deadline_ms.saturating_mul(25) {
        return Err(format!("drain took {}ms — a stall outlived shutdown", report.drain_ms));
    }
    let _ = std::fs::remove_dir_all(&disk_dir);
    Ok(report)
}

/// The CI smoke gate: a short deterministic soak that must inject at
/// least one worker panic and one deadline expiry, write ≥1 schema-valid
/// flight dump into `results/`, keep `/v1/metrics/prometheus` scrapeable
/// throughout, and exit green. The returned line names the listening
/// address and the dump artifacts.
pub fn smoke(seed: u64) -> Result<String, String> {
    let opts = ChaosOpts {
        seed,
        specs: 16,
        max_specs: 64,
        rounds: 3,
        flightrec_dir: Some(PathBuf::from("results")),
        ..ChaosOpts::default()
    };
    let report = soak(&opts)?;
    let artifacts = match report.dump_paths.first() {
        Some(first) if report.dump_paths.len() > 1 => format!(
            "{} (+{} more)",
            first.display(),
            report.dump_paths.len() - 1
        ),
        Some(first) => first.display().to_string(),
        None => "none".to_string(),
    };
    Ok(format!(
        "chaos smoke ok (seed {seed:#x}): addr={} {} specs, {} panics healed by {} \
         respawns, {} deadline expiries, {} stalls, {} torn cells quarantined, \
         {} completed, drain {}ms, {} flight dumps, artifacts={artifacts}",
        report.addr,
        report.specs,
        report.panics_injected,
        report.respawns,
        report.deadline_exceeded,
        report.stalls_injected,
        report.quarantined,
        report.completed,
        report.drain_ms,
        report.flight_dumps,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cheap structural check; the full soak runs as `asf-repro chaos
    /// --smoke` in CI.
    #[test]
    fn report_table_renders() {
        let report = ChaosReport {
            specs: 16,
            submissions: 40,
            completed: 16,
            panics_injected: 5,
            respawns: 5,
            ..ChaosReport::default()
        };
        let rendered = report.table(0xc405).render();
        assert!(rendered.contains("16"), "{rendered}");
        assert!(rendered.contains("0xc405"), "{rendered}");
    }

    #[test]
    fn spec_mix_is_distinct_and_parsable() {
        for i in 0..8 {
            let spec = asf_serve::spec::JobSpec::from_json(&spec_body(i)).expect("parses");
            let other = asf_serve::spec::JobSpec::from_json(&spec_body(i + 1)).expect("parses");
            assert_ne!(spec.digest(), other.digest());
        }
    }
}
