//! `asf-repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! asf-repro [EXPERIMENT ...] [--scale small|standard|large] [--seed N] [--csv DIR] [--json DIR]
//!                            [--threads N] [--check-baseline BENCH_perf.json]
//!                            [--checkpoint FILE] [--resume]
//!
//! EXPERIMENT: all | ext | table1 | table2 | table3 | fig1 .. fig10
//!           | overhead | headline | diag | scaling | backoff | policy | charts | excluded | related | signatures | variance | adaptive | fabric | summary | faults | perf | profile:<bench> | trace:<bench>
//! ```
//!
//! Experiments needing simulation runs share one (benchmark × detector)
//! matrix, aggregated over three seeds; `--seed` changes the seed family,
//! `--scale` the input size. `--csv DIR` additionally writes each table as
//! `DIR/<name>.csv`. `--threads N` (or the `ASF_THREADS` env var) sets the
//! matrix worker-pool size — wall-clock only, results are identical for
//! every worker count; default is the machine's available parallelism.
//!
//! Matrix jobs run under `catch_unwind` with one retry; a job that still
//! fails becomes a failed cell — tables render partial results and the
//! failures are listed at the end (exit code 1). `--checkpoint FILE`
//! persists each completed job to `FILE` as it finishes; `--resume` loads
//! the file first and re-runs only the jobs it is missing.

use asf_harness::experiments;
use asf_harness::matrix::{ComputeOpts, Matrix};
use asf_harness::Checkpoint;
use asf_stats::table::Table;
use asf_workloads::Scale;

const USAGE: &str = "usage: asf-repro [all|ext|table1|table2|table3|fig1..fig10|overhead|headline|diag|scaling|backoff|policy\
                     |charts|excluded|related|signatures|variance|adaptive|fabric|summary|faults|perf|observe|scale|serve|loadtest|chaos|dash|profile:<bench>|trace:<bench>]* \
                     [--scale small|standard|large|huge] [--seed N] [--csv DIR] [--json DIR] [--threads N] [--samples N] \
                     [--check-baseline BENCH_perf.json] [--checkpoint FILE] [--resume] [--smoke] [--allow-failed] \
                     [--port N] [--clients N] [--cache-dir DIR] [--offline]";

/// Subject line of the HEAD commit, for stamping report rounds.
fn git_subject() -> String {
    std::process::Command::new("git")
        .args(["log", "-1", "--pretty=%s"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "(no git)".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Standard;
    let mut seed: u64 = 0x5eed_2013;
    let mut csv_dir: Option<String> = None;
    let mut json_dir: Option<String> = None;
    let mut check_baseline: Option<String> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume = false;
    let mut smoke = false;
    let mut offline = false;
    let mut allow_failed = false;
    let mut port: u16 = 0;
    let mut clients = asf_harness::serve::DEFAULT_CLIENTS;
    let mut cache_dir: Option<String> = None;
    let mut samples = asf_harness::perf::DEFAULT_SAMPLES;
    let mut cmds: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("small") => Scale::Small,
                    Some("standard") => Scale::Standard,
                    Some("large") => Scale::Large,
                    Some("huge") => Scale::Huge,
                    other => {
                        eprintln!("unknown scale {other:?}\n{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a u64\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--json" => {
                i += 1;
                json_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--json needs a directory\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer\n{USAGE}");
                        std::process::exit(2);
                    });
                asf_harness::matrix::set_default_workers(Some(n));
            }
            "--check-baseline" => {
                i += 1;
                check_baseline = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--check-baseline needs a BENCH_perf.json path\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--checkpoint" => {
                i += 1;
                checkpoint_path = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--checkpoint needs a file path\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--samples" => {
                i += 1;
                samples = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--samples needs a positive integer\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--port" => {
                i += 1;
                port = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--port needs a u16 (0 = ephemeral)\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--clients" => {
                i += 1;
                clients = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--clients needs a positive integer\n{USAGE}");
                        std::process::exit(2);
                    });
            }
            "--cache-dir" => {
                i += 1;
                cache_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--cache-dir needs a directory\n{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--resume" => resume = true,
            "--smoke" => smoke = true,
            "--offline" => offline = true,
            "--allow-failed" => allow_failed = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            cmd => cmds.push(cmd.to_string()),
        }
        i += 1;
    }
    if cmds.is_empty() {
        cmds.push("all".to_string());
    }

    // Structured JSON-lines logging (stderr, ASF_LOG-filtered): every run
    // stamps which experiments it drives, correlating harness activity
    // with the serve layer's request logs when both are captured.
    let log = asf_stats::slog::Logger::from_env();
    log.info("repro.start")
        .str("cmds", &cmds.join(","))
        .str("scale", &format!("{scale:?}"))
        .u64("seed", seed)
        .emit();

    // Only build the matrix if some requested experiment needs it.
    let needs_matrix = cmds.iter().any(|c| {
        matches!(
            c.as_str(),
            "all" | "fig1" | "fig2" | "fig3" | "fig4" | "fig5" | "fig8" | "fig9" | "fig10"
                | "headline" | "diag" | "charts" | "summary"
        )
    });
    if resume && checkpoint_path.is_none() {
        eprintln!("--resume needs --checkpoint FILE\n{USAGE}");
        std::process::exit(2);
    }
    let matrix = needs_matrix.then(|| {
        eprintln!("computing run matrix (scale {scale:?}, seed {seed:#x}) …");
        let checkpoint = checkpoint_path.as_ref().map(|path| {
            if resume {
                Checkpoint::load_or_new(path).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                })
            } else {
                Checkpoint::new(path)
            }
        });
        let opts = ComputeOpts { retries: 1, checkpoint, ..ComputeOpts::default() };
        let m = Matrix::paper_grid_opts(scale, seed, opts);
        if m.jobs_resumed > 0 {
            eprintln!(
                "resumed {} job(s) from checkpoint, ran {}",
                m.jobs_resumed, m.jobs_run
            );
        }
        m
    });
    let m = matrix.as_ref();

    // Tables that rendered at least one `failed` placeholder cell. Every
    // experiment with an internal matrix (scaling, backoff, ext, …) flows
    // through `emit`, so scanning rendered rows here catches failures the
    // shared paper-grid check below cannot see.
    let failed_tables: std::cell::RefCell<Vec<String>> = std::cell::RefCell::new(Vec::new());
    let emit = |name: &str, table: Table| {
        if table.rows().iter().any(|r| r.iter().any(|c| c == "failed")) {
            failed_tables.borrow_mut().push(name.to_string());
        }
        print!("{}", table.render());
        println!();
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, table.to_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{name}.json");
            std::fs::write(&path, table.to_json()).expect("write json");
            eprintln!("wrote {path}");
        }
    };

    for cmd in &cmds {
        log.debug("repro.cmd").str("cmd", cmd).emit();
        match cmd.as_str() {
            "all" => {
                for (name, table) in experiments::all_experiments(m.expect("matrix")) {
                    emit(name, table);
                }
            }
            "ext" => {
                // Every extension experiment beyond the paper's artifacts.
                emit("scaling", experiments::scaling(scale, seed));
                emit("backoff", experiments::backoff_sweep(scale, seed));
                emit("policy", experiments::policy_ablation(scale, seed));
                emit("related", experiments::related_work(scale, seed));
                emit("signatures", experiments::signatures(scale, seed));
                emit("excluded", experiments::excluded(scale, seed));
                emit("excluded_bayes", experiments::excluded_bayes(scale, seed));
                emit("adaptive", experiments::adaptive(scale, seed));
                emit("fabric", experiments::fabric(scale, seed));
                emit("variance", experiments::variance(scale, seed, 5));
            }
            "table1" => emit("table1", experiments::table1()),
            "table2" => emit("table2", experiments::table2()),
            "table3" => emit("table3", experiments::table3()),
            "fig1" => emit("fig1", experiments::fig1(m.expect("matrix"))),
            "fig2" => emit("fig2", experiments::fig2(m.expect("matrix"))),
            "fig3" => emit("fig3", experiments::fig3(m.expect("matrix"))),
            "fig4" => emit("fig4", experiments::fig4(m.expect("matrix"))),
            "fig5" => emit("fig5", experiments::fig5(m.expect("matrix"))),
            "fig6" => emit("fig6", experiments::fig6()),
            "fig7" => emit("fig7", experiments::fig7()),
            "fig8" => emit("fig8", experiments::fig8(m.expect("matrix"))),
            "fig9" => emit("fig9", experiments::fig9(m.expect("matrix"))),
            "fig10" => emit("fig10", experiments::fig10(m.expect("matrix"))),
            "overhead" => emit("overhead", experiments::overhead_table()),
            "scaling" => emit("scaling", experiments::scaling(scale, seed)),
            "backoff" => emit("backoff", experiments::backoff_sweep(scale, seed)),
            "policy" => emit("policy", experiments::policy_ablation(scale, seed)),
            "excluded" => {
                emit("excluded", experiments::excluded(scale, seed));
                emit("excluded_bayes", experiments::excluded_bayes(scale, seed));
            }
            "related" => emit("related", experiments::related_work(scale, seed)),
            "signatures" => emit("signatures", experiments::signatures(scale, seed)),
            "variance" => emit("variance", experiments::variance(scale, seed, 5)),
            "adaptive" => emit("adaptive", experiments::adaptive(scale, seed)),
            "fabric" => emit("fabric", experiments::fabric(scale, seed)),
            "perf" => {
                // Throughput smoke grid; also writes the machine-readable
                // report to BENCH_perf.json in the current directory (the
                // repo root when run from CI), independent of --json.
                // With --check-baseline PATH the committed report is read
                // *before* the overwrite and the run fails (exit 1) on a
                // >25% wall-time regression or any simulated-cycles drift.
                eprintln!(
                    "timing perf smoke grid (scale {scale:?}, seed {seed:#x}, \
                     {samples} sample(s)/cell) …"
                );
                let baseline = check_baseline.as_ref().map(|p| {
                    std::fs::read_to_string(p).unwrap_or_else(|e| {
                        eprintln!("cannot read baseline {p}: {e}");
                        std::process::exit(2);
                    })
                });
                let report = asf_harness::perf::measure_samples(scale, seed, samples);
                emit("perf", report.table());
                // Carry the append-only round history — and any scale_rounds
                // section — forward from the file being replaced (empty when
                // absent) and record this run as the next round, stamped
                // with HEAD's commit subject.
                let old_json = std::fs::read_to_string("BENCH_perf.json").unwrap_or_default();
                let prior = asf_harness::perf::parse_history(&old_json);
                let history =
                    asf_harness::perf::next_history(&prior, &report, &git_subject());
                let rendered = report.to_json_with_history(&history);
                let carried = asf_harness::scale::carry_scale_rounds(&old_json, &rendered);
                let carried = asf_harness::serve::carry_serve_rounds(&old_json, &carried);
                std::fs::write("BENCH_perf.json", carried)
                    .expect("write BENCH_perf.json");
                eprintln!("wrote BENCH_perf.json ({} history rounds)", history.len());
                if let Some(json) = baseline {
                    match asf_harness::perf::check_against_baseline(&report, &json, 0.25) {
                        Ok(msg) => eprintln!("{msg}"),
                        Err(msg) => {
                            eprintln!("FAIL: {msg}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            "scale" => {
                // Shard-parallel scaling sweep (DESIGN.md §15). `--smoke`
                // runs the CI gate instead: a 2-shard config with 1 and 2
                // worker threads in one process, exit 1 unless bit-equal.
                if smoke {
                    match asf_harness::scale::smoke(seed) {
                        Ok(msg) => eprintln!("{msg}"),
                        Err(e) => {
                            eprintln!("FAIL: {e}");
                            std::process::exit(1);
                        }
                    }
                    continue;
                }
                // `--scale huge` runs the million-transaction soak; every
                // other scale uses the balanced mix preset.
                let preset = if scale == Scale::Huge { "million" } else { "mix" };
                eprintln!(
                    "scale sweep: preset {preset}, cores {:?} x threads {:?}, seed {seed:#x} …",
                    asf_harness::scale::CORES_GRID,
                    asf_harness::scale::THREADS_GRID,
                );
                let mut checkpoint = checkpoint_path.as_ref().map(|path| {
                    if resume {
                        Checkpoint::load_or_new(path).unwrap_or_else(|e| {
                            eprintln!("error: {e}");
                            std::process::exit(2);
                        })
                    } else {
                        Checkpoint::new(path)
                    }
                });
                let report = asf_harness::scale::sweep(
                    preset,
                    seed,
                    &asf_harness::scale::CORES_GRID,
                    &asf_harness::scale::THREADS_GRID,
                    checkpoint.as_mut(),
                )
                .unwrap_or_else(|e| {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                });
                emit("scale", report.table());
                if let Some(dir) = &json_dir {
                    for (name, json) in &report.timelines {
                        let path = format!("{dir}/{name}.json");
                        std::fs::write(&path, json).expect("write timeline");
                        eprintln!("wrote {path} — open in chrome://tracing or Perfetto");
                    }
                }
                // Append this sweep as a round of the scale_rounds section.
                let old_json = std::fs::read_to_string("BENCH_perf.json").unwrap_or_default();
                let entry = asf_harness::scale::scale_round_entry(
                    &report,
                    asf_harness::scale::next_scale_round(&old_json),
                    &git_subject(),
                );
                std::fs::write(
                    "BENCH_perf.json",
                    asf_harness::scale::append_scale_round(&old_json, &entry),
                )
                .expect("write BENCH_perf.json");
                eprintln!("appended scale round to BENCH_perf.json");
            }
            "serve" => {
                // Content-addressed simulation service (DESIGN.md §16).
                // `--smoke` runs the CI gate in-process instead: ephemeral
                // port, one fixed-seed job submitted twice, the repeat must
                // answer `cached` with a byte-identical result body.
                if smoke {
                    match asf_serve::loadtest::smoke(seed) {
                        Ok(msg) => eprintln!("{msg} (seed {seed:#x})"),
                        Err(e) => {
                            eprintln!("FAIL: serve smoke: {e}");
                            std::process::exit(1);
                        }
                    }
                    continue;
                }
                let flightrec_dir = std::path::PathBuf::from("results");
                let opts = asf_serve::server::ServeOpts {
                    addr: format!("127.0.0.1:{port}"),
                    disk_dir: cache_dir.clone().map(std::path::PathBuf::from),
                    flightrec_dir: Some(flightrec_dir.clone()),
                    ..asf_serve::server::ServeOpts::default()
                };
                let server = asf_serve::server::Server::start(opts).unwrap_or_else(|e| {
                    eprintln!("FAIL: cannot start server: {e}");
                    std::process::exit(1);
                });
                let addr = server.addr();
                let state = server.state();
                eprintln!(
                    "asf-serve listening on http://{addr} — POST /v1/jobs to submit, \
                     GET /v1/metrics/prometheus to scrape, POST /v1/shutdown to stop"
                );
                server.wait();
                let dumps = state.flightrec.dump_paths();
                let artifacts = if dumps.is_empty() {
                    "none".to_string()
                } else {
                    format!(
                        "{} ({} flight dumps)",
                        flightrec_dir.display(),
                        dumps.len()
                    )
                };
                eprintln!(
                    "asf-serve stopped: addr=http://{addr} requests={} artifacts={artifacts}",
                    state.metrics.total_requests()
                );
            }
            "loadtest" => {
                // Hammer a private server with concurrent in-process
                // clients over a Zipf-skewed job mix; append the round to
                // BENCH_perf.json's serve_rounds section.
                let opts = asf_harness::serve::loadtest_opts(clients, scale, seed);
                eprintln!(
                    "serve loadtest: {} clients x {} requests over {} distinct specs \
                     (scale {scale:?}, seed {seed:#x}) …",
                    opts.clients, opts.requests_per_client, opts.distinct_specs
                );
                let report = asf_serve::loadtest::run(&opts).unwrap_or_else(|e| {
                    eprintln!("FAIL: loadtest: {e}");
                    std::process::exit(1);
                });
                emit("loadtest", asf_harness::serve::loadtest_table(&opts, &report));
                if report.speedup < asf_harness::serve::SPEEDUP_FLOOR {
                    eprintln!(
                        "warning: hot-path speedup {:.0}x is below the {:.0}x target \
                         (loaded host?)",
                        report.speedup,
                        asf_harness::serve::SPEEDUP_FLOOR
                    );
                }
                let old_json = std::fs::read_to_string("BENCH_perf.json").unwrap_or_default();
                let entry = asf_harness::serve::serve_round_entry(
                    &opts,
                    &report,
                    asf_harness::serve::next_serve_round(&old_json),
                    &git_subject(),
                );
                std::fs::write(
                    "BENCH_perf.json",
                    asf_harness::serve::append_serve_round(&old_json, &entry),
                )
                .expect("write BENCH_perf.json");
                eprintln!("appended serve round to BENCH_perf.json");
            }
            "chaos" => {
                // Self-healing soak (DESIGN.md §17): drive a live server
                // under a seeded ServeChaosPlan and assert the healing
                // invariants. `--smoke` runs the short CI gate, which also
                // requires the plan to have demonstrably fired (≥1 injected
                // worker panic, ≥1 deadline expiry). Deterministic in
                // --seed: a CI failure replays locally with the same seed.
                if smoke {
                    match asf_harness::chaos::smoke(seed) {
                        Ok(msg) => eprintln!("{msg}"),
                        Err(e) => {
                            eprintln!("FAIL: chaos smoke: {e}");
                            std::process::exit(1);
                        }
                    }
                    continue;
                }
                eprintln!("chaos soak (seed {seed:#x}) …");
                let opts = asf_harness::chaos::ChaosOpts {
                    seed,
                    ..asf_harness::chaos::ChaosOpts::default()
                };
                match asf_harness::chaos::soak(&opts) {
                    Ok(report) => emit("chaos", report.table(seed)),
                    Err(e) => {
                        eprintln!("FAIL: chaos soak: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "dash" => {
                // Read-only observability dashboard (DESIGN.md §18).
                // `--offline` renders the BENCH_perf.json trajectory (the
                // CI mode, pinned against the committed report); otherwise
                // poll a live server given by --port.
                if offline {
                    let json = std::fs::read_to_string("BENCH_perf.json").unwrap_or_else(|e| {
                        eprintln!("FAIL: dash --offline needs BENCH_perf.json: {e}");
                        std::process::exit(1);
                    });
                    match asf_harness::dash::offline(&json) {
                        Ok(out) => print!("{out}"),
                        Err(e) => {
                            eprintln!("FAIL: dash: {e}");
                            std::process::exit(1);
                        }
                    }
                    continue;
                }
                if port == 0 {
                    eprintln!(
                        "dash needs --port N of a running asf-serve (or --offline)\n{USAGE}"
                    );
                    std::process::exit(2);
                }
                match asf_harness::dash::online(&format!("127.0.0.1:{port}"), 3, 500) {
                    Ok(out) => print!("{out}"),
                    Err(e) => {
                        eprintln!("FAIL: dash: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "observe" => {
                // End-to-end observability run (DESIGN.md §13): per
                // benchmark, write the Chrome/Perfetto timeline and the
                // asf-obs-v1 metrics snapshot, and print the hot-path
                // breakdown + conflict time-series. `--smoke` restricts to
                // one small benchmark and *validates* the artifacts
                // (exit 1 on any contract violation) — the CI gate.
                let benches: Vec<&str> = if smoke {
                    vec![asf_harness::observe::SMOKE_BENCH]
                } else {
                    asf_harness::experiments::REPRESENTATIVE.to_vec()
                };
                eprintln!(
                    "observing {benches:?} (scale {scale:?}, seed {seed:#x}) …"
                );
                let dir = json_dir.clone().unwrap_or_else(|| "results".to_string());
                std::fs::create_dir_all(&dir).expect("create results dir");
                let mut observations = Vec::new();
                for bench in benches {
                    let obs = asf_harness::observe::observe_one(
                        bench,
                        scale,
                        seed,
                        asf_harness::observe::DEFAULT_INTERVAL,
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    });
                    if smoke {
                        if let Err(msg) = asf_harness::observe::validate(&obs) {
                            eprintln!("FAIL: observe artifacts for {bench}: {msg}");
                            std::process::exit(1);
                        }
                        eprintln!("observe artifacts for {bench} validate OK");
                    }
                    let trace_path = format!("{dir}/observe_trace_{bench}.json");
                    std::fs::write(&trace_path, &obs.trace_json).expect("write trace");
                    eprintln!(
                        "wrote {trace_path} ({} events) — open in chrome://tracing or Perfetto",
                        obs.trace_events
                    );
                    let metrics_path = format!("{dir}/observe_metrics_{bench}.json");
                    std::fs::write(&metrics_path, obs.report.to_json()).expect("write metrics");
                    eprintln!("wrote {metrics_path}");
                    observations.push(obs);
                }
                emit("observe_breakdown", asf_harness::observe::breakdown_table(&observations));
                emit("observe_series", asf_harness::observe::series_table(&observations));
                for obs in &observations {
                    println!("{}", asf_harness::observe::series_chart(obs).render(48));
                }
            }
            cmd if cmd.starts_with("trace:") => {
                // Run one benchmark with tracing and write a Chrome-tracing
                // JSON next to the CSVs (or ./trace_<bench>.json).
                let bench = cmd.trim_start_matches("trace:");
                let w = asf_workloads::by_name(bench, scale).unwrap_or_else(|| {
                    eprintln!("unknown benchmark {bench}");
                    std::process::exit(2);
                });
                let cfg = asf_machine::machine::SimConfig::paper_seeded(
                    asf_core::detector::DetectorKind::SubBlock(4),
                    seed,
                );
                let mut machine = asf_machine::machine::Machine::new(w.as_ref(), cfg);
                machine.enable_trace(200_000);
                let out = machine.run_to_completion();
                let trace = out.trace.expect("tracing enabled");
                let dir = csv_dir.clone().unwrap_or_else(|| ".".to_string());
                std::fs::create_dir_all(&dir).expect("create dir");
                let path = format!("{dir}/trace_{bench}.json");
                std::fs::write(&path, trace.to_chrome_json()).expect("write trace");
                println!(
                    "wrote {path} ({} events, {} dropped) — open in chrome://tracing or Perfetto",
                    trace.len(),
                    trace.dropped()
                );
            }
            "faults" => {
                eprintln!("fault-injection grid (scale {scale:?}, seed {seed:#x}) …");
                match experiments::faults(scale, seed) {
                    Ok(table) => emit("faults", table),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(1);
                    }
                }
            }
            cmd if cmd.starts_with("profile:") => {
                let bench = cmd.trim_start_matches("profile:");
                match experiments::profile(bench, scale, seed) {
                    Ok(table) => emit(&format!("profile_{bench}"), table),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "charts" => {
                let mm = m.expect("matrix");
                println!("{}", experiments::fig1_chart(mm).render(48));
                println!("{}", experiments::fig8_chart(mm).render(48));
                println!("{}", experiments::fig10_chart(mm).render(48));
            }
            "headline" => emit("headline", experiments::headline(m.expect("matrix"))),
            "summary" => emit("summary", experiments::summary(m.expect("matrix"))),
            "diag" => emit("diag", experiments::diag(m.expect("matrix"))),
            other => {
                eprintln!("unknown experiment {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    // Failed cells render as placeholder rows above; list them here and
    // fail the process so CI notices partial results. This covers both the
    // shared paper-grid matrix and every experiment-internal matrix (whose
    // `failed` placeholder rows are caught at emit time). `--allow-failed`
    // downgrades the exit to a warning for deliberate partial runs.
    let mut any_failed = false;
    if let Some(m) = m {
        let failed = m.failed_cells();
        if !failed.is_empty() {
            any_failed = true;
            eprintln!("{} matrix cell(s) failed (tables show partial results):", failed.len());
            for (key, error, attempts) in &failed {
                eprintln!(
                    "  {}/{} after {attempts} attempt(s): {error}",
                    key.bench, key.detector
                );
            }
        }
    }
    let failed_tables = failed_tables.into_inner();
    if !failed_tables.is_empty() {
        any_failed = true;
        eprintln!(
            "{} table(s) contain failed cells: {}",
            failed_tables.len(),
            failed_tables.join(", ")
        );
    }
    if any_failed {
        if allow_failed {
            eprintln!("--allow-failed: exiting 0 despite failed cells");
        } else {
            std::process::exit(1);
        }
    }
}
