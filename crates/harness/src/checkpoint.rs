//! Crash-safe matrix checkpoints.
//!
//! A [`Checkpoint`] maps completed grid jobs — one `(benchmark, detector,
//! seed)` triple each — to their [`RunStats`], persisted as JSON after
//! every job so a killed run loses at most the jobs in flight. A rerun
//! with `--resume` loads the file and skips every recorded job;
//! [`crate::matrix::Matrix`] then recomputes only what is missing (failed
//! cells are never recorded, so they are exactly what gets retried).
//!
//! Saves go through a temp file and an atomic rename: a crash mid-write
//! leaves the previous checkpoint intact, never a half-written one.

use crate::error::HarnessError;
use asf_mem::fxhash::FxHashMap;
use asf_stats::json::{escape, parse, JsonValue};
use asf_stats::run::RunStats;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process counter distinguishing concurrent saves' temp files.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Persistent record of completed matrix jobs.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    cells: FxHashMap<String, RunStats>,
}

/// The key of one job: `bench|detector|seed`.
pub fn job_key(bench: &str, detector: &str, seed: u64) -> String {
    format!("{bench}|{detector}|{seed}")
}

impl Checkpoint {
    /// An empty checkpoint that will save to `path`.
    pub fn new(path: impl Into<PathBuf>) -> Checkpoint {
        Checkpoint { path: path.into(), cells: FxHashMap::default() }
    }

    /// Load an existing checkpoint, or start empty when `path` does not
    /// exist yet. A present-but-unparsable file is an error, not a silent
    /// restart — resuming from a corrupt checkpoint would drop work.
    pub fn load_or_new(path: impl Into<PathBuf>) -> Result<Checkpoint, HarnessError> {
        let path = path.into();
        if !path.exists() {
            return Ok(Checkpoint::new(path));
        }
        let src = std::fs::read_to_string(&path)
            .map_err(|e| HarnessError::Checkpoint(format!("read {}: {e}", path.display())))?;
        let root = parse(&src)
            .map_err(|e| HarnessError::Checkpoint(format!("parse {}: {e}", path.display())))?;
        let mut cells = FxHashMap::default();
        let JsonValue::Obj(entries) = root
            .field("cells")
            .map_err(HarnessError::Checkpoint)?
        else {
            return Err(HarnessError::Checkpoint("'cells' is not an object".into()));
        };
        for (key, value) in entries {
            let stats = RunStats::from_value(value)
                .map_err(|e| HarnessError::Checkpoint(format!("cell '{key}': {e}")))?;
            cells.insert(key.clone(), stats);
        }
        Ok(Checkpoint { path, cells })
    }

    /// The stats recorded for one job, if any.
    pub fn get(&self, key: &str) -> Option<&RunStats> {
        self.cells.get(key)
    }

    /// Number of recorded jobs.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Record a completed job and persist the checkpoint. Persisting after
    /// *every* job is the crash-safety contract: whatever is on disk is
    /// always a complete, loadable set of finished jobs.
    pub fn record(&mut self, key: String, stats: RunStats) -> Result<(), HarnessError> {
        self.cells.insert(key, stats);
        self.save()
    }

    /// Write the checkpoint to its path (temp file + atomic rename).
    pub fn save(&self) -> Result<(), HarnessError> {
        let mut keys: Vec<&String> = self.cells.keys().collect();
        keys.sort(); // stable file content for a given cell set
        let mut out = String::from("{\n  \"version\": 1,\n  \"cells\": {");
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", escape(key), self.cells[*key].to_json()));
        }
        out.push_str("\n  }\n}\n");
        // The temp name must be unique per (process, save): two processes
        // sharing one `--checkpoint` path — or two threads saving at once —
        // would otherwise interleave writes into the *same* `.json.tmp`
        // and rename a torn file into place. pid + per-process sequence
        // keeps every in-flight save on its own file; the final rename is
        // still atomic, so whichever save lands last wins whole.
        let tmp = self.path.with_extension(format!(
            "json.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let fail = |stage: &str, e: std::io::Error| {
            HarnessError::Checkpoint(format!("{stage} {}: {e}", self.path.display()))
        };
        std::fs::write(&tmp, out).map_err(|e| fail("write", e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp); // don't strand the temp file
            fail("rename", e)
        })
    }

    /// Where this checkpoint persists.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("asf_checkpoint_{name}_{}.json", std::process::id()));
        p
    }

    #[test]
    fn roundtrips_recorded_cells() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut cp = Checkpoint::load_or_new(&path).unwrap();
        assert!(cp.is_empty());
        let stats = RunStats {
            tx_started: 41,
            tx_committed: 41,
            faults: asf_stats::fault::FaultStats { spurious_aborts: 7, ..Default::default() },
            ..Default::default()
        };
        cp.record(job_key("vacation", "sb4", 3), stats.clone()).unwrap();
        let reloaded = Checkpoint::load_or_new(&path).unwrap();
        assert_eq!(reloaded.len(), 1);
        assert_eq!(reloaded.get(&job_key("vacation", "sb4", 3)), Some(&stats));
        assert_eq!(reloaded.get("vacation|sb4|4"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_saves_never_share_a_temp_file() {
        // Regression: saves used a fixed `<path>.json.tmp`, so two writers
        // sharing one checkpoint path could interleave into the same temp
        // file and rename a torn mix into place. With per-save unique temp
        // names, hammering one path from many threads must always leave a
        // complete, parsable checkpoint equal to one writer's snapshot.
        let path = tmp_path("concurrent");
        let _ = std::fs::remove_file(&path);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let mut cp = Checkpoint::new(&path);
                    for round in 0..20u64 {
                        let stats = RunStats {
                            tx_started: t * 1000 + round,
                            tx_committed: t * 1000 + round,
                            ..Default::default()
                        };
                        cp.record(job_key("bench", "sb4", t), stats).unwrap();
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        // Whatever won the last rename must be a complete snapshot: one
        // cell (each writer reuses one key), cleanly parsable.
        let survivor = Checkpoint::load_or_new(&path).unwrap();
        assert_eq!(survivor.len(), 1);
        // No temp files stranded next to the checkpoint.
        let dir = path.parent().unwrap();
        let strays: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| {
                n.starts_with(
                    path.file_stem().unwrap().to_string_lossy().as_ref(),
                ) && n.contains(".tmp")
            })
            .collect();
        assert!(strays.is_empty(), "stranded temp files: {strays:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_is_an_error_not_a_restart() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        let err = Checkpoint::load_or_new(&path).unwrap_err();
        assert!(matches!(err, HarnessError::Checkpoint(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
