//! # asf-harness — experiment definitions
//!
//! One function per paper table/figure, regenerating the same rows/series
//! from the simulator. The `asf-repro` binary exposes them on the command
//! line; `crates/bench` wraps them in Criterion benches.
//!
//! The heart is [`matrix::Matrix`]: the (benchmark × detector) grid of
//! simulation runs that Figures 1, 2, 8, 9 and 10 are all read off of.
//! Runs are deterministic in `(scale, seed)`; the matrix computes them in
//! parallel with scoped threads (the simulator itself is single-threaded by
//! design — determinism first).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod checkpoint;
pub mod dash;
pub mod error;
pub mod experiments;
pub mod matrix;
pub mod observe;
pub mod perf;
pub mod scale;
pub mod section;
pub mod serve;

pub use checkpoint::Checkpoint;
pub use error::HarnessError;
pub use matrix::{ComputeOpts, InjectPanic, JobOutcome, Matrix, RunKey};
