//! `asf-repro perf` — simulator throughput measurement.
//!
//! Runs a fixed (benchmark × detector) smoke grid single-threaded and
//! reports, per benchmark, wall time and simulated accesses per second
//! (an access = one cache-line fragment of one memory operation — the unit
//! of work of `Machine::access_line`, the simulator's hot path).
//!
//! The grid is **pinned to one worker**: [`measure`] runs each cell
//! directly on the calling thread, bypassing `Matrix::compute`'s worker
//! pool — and therefore deliberately ignoring `--threads`/`ASF_THREADS`.
//! Two reasons: the numbers must measure per-access cost rather than the
//! host's core count, and the `--check-baseline` regression gate compares
//! wall times against a committed baseline, which would be silently skewed
//! (false passes *or* false failures) if a worker-count knob could change
//! how many simulations share the machine during timing.
//!
//! The report doubles as the repo's perf regression artifact: the harness
//! writes it to `BENCH_perf.json` (repo root in CI) and EXPERIMENTS.md
//! records the baselines. Simulated *outcomes* are pinned separately by
//! `tests/golden_stats.rs`; this file only measures speed.

use crate::matrix::run_one;
use asf_core::detector::DetectorKind;
use asf_stats::table::Table;
use asf_workloads::Scale;
use std::time::{Duration, Instant};

/// The fixed detector set of the smoke grid: line granularity, the paper's
/// preferred sub-blocking, and the byte-granularity oracle — the three
/// configurations with the most distinct per-access work.
pub fn smoke_detectors() -> Vec<DetectorKind> {
    vec![DetectorKind::Baseline, DetectorKind::SubBlock(8), DetectorKind::Perfect]
}

/// One timed (benchmark × detector) cell.
#[derive(Clone, Debug)]
pub struct PerfCell {
    /// Benchmark name.
    pub bench: String,
    /// Detector label (`baseline`, `sb8`, `perfect`).
    pub detector: String,
    /// Representative wall time: the **median** over the samples taken
    /// (round 4 measured ±50% wall noise on a 1-vCPU runner; the median of
    /// interleaved samples is what `--check-baseline` compares).
    pub wall: Duration,
    /// Fastest sample — the least-perturbed observation, stored alongside
    /// the median so the JSON records how noisy the runner was.
    pub wall_min: Duration,
    /// Simulated accesses (L1 hits + misses, per line fragment).
    pub accesses: u64,
    /// Simulated cycles (determinism cross-check against golden runs).
    pub cycles: u64,
}

/// A completed throughput measurement.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Input scale the grid ran at.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// All timed cells, in (benchmark, detector) grid order.
    pub cells: Vec<PerfCell>,
}

/// Default sample count for [`measure_samples`] (the `--samples` flag).
pub const DEFAULT_SAMPLES: usize = 5;

/// Time the smoke grid once per cell — [`measure_samples`] with a single
/// sample (median = min = the one observation). Kept for callers that want
/// the quick, noise-accepting measurement.
pub fn measure(scale: Scale, seed: u64) -> PerfReport {
    measure_samples(scale, seed, 1)
}

/// Time the smoke grid `samples` times per cell: every benchmark at `scale`
/// under [`smoke_detectors`], sequentially on this thread (1 worker by
/// construction — see the module docs for why the worker-count knobs must
/// not reach this grid).
///
/// Samples are **interleaved** — the whole grid is swept `samples` times
/// rather than timing one cell `samples` times back-to-back — so a noise
/// burst (page-cache eviction, a neighbour stealing the vCPU) lands on *one*
/// sample of many cells instead of all samples of one cell, which is the
/// case a median can actually reject. Each cell's `wall` is the median of
/// its samples and `wall_min` the fastest; simulated `accesses`/`cycles`
/// must be bit-identical across samples (the runs are deterministic — any
/// difference is a simulator bug and panics here).
pub fn measure_samples(scale: Scale, seed: u64, samples: usize) -> PerfReport {
    assert!(samples >= 1, "need at least one sample");
    let mut cells: Vec<PerfCell> = Vec::new();
    let mut walls: Vec<Vec<Duration>> = Vec::new();
    for pass in 0..samples {
        let mut i = 0;
        for w in asf_workloads::all(scale) {
            for &det in &smoke_detectors() {
                let start = Instant::now();
                // Suite benchmarks under the paper config cannot fail; a
                // failure here is a harness bug worth dying loudly over.
                let stats = run_one(w.name(), det, scale, seed)
                    .unwrap_or_else(|e| panic!("perf grid cell failed: {e}"));
                let wall = start.elapsed();
                if pass == 0 {
                    cells.push(PerfCell {
                        bench: w.name().to_string(),
                        detector: det.label(),
                        wall,
                        wall_min: wall,
                        accesses: stats.l1_hits + stats.l1_misses,
                        cycles: stats.cycles,
                    });
                    walls.push(vec![wall]);
                } else {
                    let c = &cells[i];
                    let (acc, cyc) = (stats.l1_hits + stats.l1_misses, stats.cycles);
                    assert!(
                        acc == c.accesses && cyc == c.cycles,
                        "non-deterministic run: {}/{} sample {pass} measured \
                         {acc} accesses / {cyc} cycles vs {} / {}",
                        c.bench,
                        c.detector,
                        c.accesses,
                        c.cycles,
                    );
                    walls[i].push(wall);
                }
                i += 1;
            }
        }
    }
    for (c, w) in cells.iter_mut().zip(walls.iter_mut()) {
        w.sort();
        c.wall_min = w[0];
        // Lower median for even counts: deterministic, pessimism-free.
        c.wall = w[(w.len() - 1) / 2];
    }
    PerfReport { scale, seed, cells }
}

fn rate(accesses: u64, wall: Duration) -> f64 {
    accesses as f64 / wall.as_secs_f64().max(1e-9)
}

impl PerfReport {
    /// Benchmarks present, in grid order.
    fn benches(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.cells {
            if out.last() != Some(&c.bench.as_str()) {
                out.push(&c.bench);
            }
        }
        out
    }

    /// Total wall time across the grid.
    pub fn total_wall(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }

    /// Total simulated accesses across the grid.
    pub fn total_accesses(&self) -> u64 {
        self.cells.iter().map(|c| c.accesses).sum()
    }

    /// Per-benchmark table (detectors aggregated) plus a TOTAL row:
    /// accesses, wall time, and accesses/second.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("perf — simulator throughput ({:?}, seed {:#x})", self.scale, self.seed),
            &["benchmark", "accesses", "wall ms", "Macc/s"],
        );
        let mut row = |name: &str, acc: u64, wall: Duration| {
            t.row(vec![
                name.to_string(),
                acc.to_string(),
                format!("{:.2}", wall.as_secs_f64() * 1e3),
                format!("{:.2}", rate(acc, wall) / 1e6),
            ]);
        };
        for b in self.benches() {
            let (mut acc, mut wall) = (0u64, Duration::ZERO);
            for c in self.cells.iter().filter(|c| c.bench == b) {
                acc += c.accesses;
                wall += c.wall;
            }
            row(b, acc, wall);
        }
        row("TOTAL", self.total_accesses(), self.total_wall());
        t
    }

    /// Machine-readable report (hand-rolled JSON — dependency policy):
    /// per-cell detail plus grid totals.
    pub fn to_json(&self) -> String {
        self.render(&[])
    }

    /// [`PerfReport::to_json`] with the append-only round history attached
    /// (omitted entirely when `history` is empty, keeping the original
    /// shape). The history array is emitted *after* the top-level
    /// `total_wall_ms` so [`parse_baseline`]'s first-occurrence scan keeps
    /// finding the grid total, not a history entry's.
    pub fn to_json_with_history(&self, history: &[HistoryEntry]) -> String {
        self.render(history)
    }

    fn render(&self, history: &[HistoryEntry]) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"bench\": \"{}\", \"detector\": \"{}\", \
                 \"wall_ms\": {:.3}, \"wall_min_ms\": {:.3}, \
                 \"accesses\": {}, \"cycles\": {}, \
                 \"accesses_per_sec\": {:.0}}}",
                c.bench,
                c.detector,
                c.wall.as_secs_f64() * 1e3,
                c.wall_min.as_secs_f64() * 1e3,
                c.accesses,
                c.cycles,
                rate(c.accesses, c.wall),
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n  \"total_accesses\": {},\n  \
             \"total_accesses_per_sec\": {:.0}",
            self.total_wall().as_secs_f64() * 1e3,
            self.total_accesses(),
            rate(self.total_accesses(), self.total_wall()),
        ));
        if !history.is_empty() {
            out.push_str(",\n  \"history\": [");
            for (i, h) in history.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"round\": {}, \"git_subject\": \"{}\", \"total_wall_ms\": {:.3}}}",
                    h.round,
                    sanitize_subject(&h.git_subject),
                    h.total_wall_ms,
                ));
            }
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Commit subjects are narrative, not data: swap the two characters the
/// hand-rolled scanner cannot round-trip (quote, backslash) for plain
/// lookalikes instead of escaping, keeping [`parse_history`] a dumb scan.
fn sanitize_subject(s: &str) -> String {
    s.replace(['\\', '"'], "'")
}

/// One round of the append-only perf history carried inside
/// `BENCH_perf.json`: which change produced that round's committed artifact
/// and the grid total it recorded. Wall times are environment-sensitive, so
/// the history is a narrative of what each round *measured and committed*,
/// not a promise two entries ran on equally quiet machines.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// 1-based perf-round number, strictly increasing.
    pub round: u64,
    /// Subject line of the commit that round's grid was measured at.
    pub git_subject: String,
    /// Total grid wall time that round committed, in milliseconds.
    pub total_wall_ms: f64,
}

/// The `"history"` array of a `BENCH_perf.json`, oldest round first.
/// Reports written before the history existed (or with no completed rounds)
/// parse as empty — absence is not an error.
pub fn parse_history(json: &str) -> Vec<HistoryEntry> {
    let mut out = Vec::new();
    let Some(start) = json.find("\"history\":") else {
        return out;
    };
    // Entries are flat, so the array ends at the first `]`.
    let Some(len) = json[start..].find(']') else {
        return out;
    };
    let slice = &json[start..start + len];
    let mut pos = 0;
    while let Some((round, after)) = json_field(slice, "round", pos) {
        let Some((git_subject, after)) = json_string(slice, "git_subject", after) else {
            break;
        };
        let Some((total_wall_ms, after)) = json_field(slice, "total_wall_ms", after) else {
            break;
        };
        out.push(HistoryEntry { round: round as u64, git_subject, total_wall_ms });
        pos = after;
    }
    out
}

/// Extend `prev` (the history carried in the on-disk report being replaced)
/// with this run as the next round. Rounds number from 1 when there is no
/// prior history.
pub fn next_history(
    prev: &[HistoryEntry],
    report: &PerfReport,
    git_subject: &str,
) -> Vec<HistoryEntry> {
    let mut out = prev.to_vec();
    out.push(HistoryEntry {
        round: prev.last().map_or(1, |h| h.round + 1),
        git_subject: git_subject.to_string(),
        total_wall_ms: report.total_wall().as_secs_f64() * 1e3,
    });
    out
}

/// What `check_against_baseline` needs from a committed `BENCH_perf.json`:
/// the grid identity (scale, seed), the wall-time total, and the simulated
/// cycle count of every cell (the determinism fence).
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// `Scale` the baseline grid ran at (`"Small"`, `"Standard"`, …).
    pub scale: String,
    /// Master seed of the baseline grid.
    pub seed: u64,
    /// Total grid wall time in milliseconds.
    pub total_wall_ms: f64,
    /// `(bench, detector, cycles)` per cell, in grid order.
    pub cells: Vec<(String, String, u64)>,
}

/// First `"key": <value>` after `from` — the entire JSON surface this file
/// emits is flat enough that a scan beats a parser (dependency policy:
/// there is none to use).
fn json_field(s: &str, key: &str, from: usize) -> Option<(f64, usize)> {
    let pat = format!("\"{key}\":");
    let at = s[from..].find(&pat)? + from + pat.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(|v| (v, at))
}

/// First `"key": "<string>"` after `from`.
fn json_string(s: &str, key: &str, from: usize) -> Option<(String, usize)> {
    let pat = format!("\"{key}\": \"");
    let at = s[from..].find(&pat)? + from + pat.len();
    let len = s[at..].find('"')?;
    Some((s[at..at + len].to_string(), at + len))
}

/// Parse a `BENCH_perf.json` produced by [`PerfReport::to_json`]. Returns
/// `None` on any shape surprise (missing field, malformed number).
pub fn parse_baseline(json: &str) -> Option<Baseline> {
    let (scale, _) = json_string(json, "scale", 0)?;
    let (seed, _) = json_field(json, "seed", 0)?;
    let (total_wall_ms, _) = json_field(json, "total_wall_ms", 0)?;
    let mut cells = Vec::new();
    let mut pos = 0;
    while let Some((bench, after)) = json_string(json, "bench", pos) {
        let (detector, after) = json_string(json, "detector", after)?;
        let (cycles, after) = json_field(json, "cycles", after)?;
        cells.push((bench, detector, cycles as u64));
        pos = after;
    }
    if cells.is_empty() {
        return None;
    }
    Some(Baseline { scale, seed: seed as u64, total_wall_ms, cells })
}

/// CI regression guard: compare a fresh measurement against the committed
/// `BENCH_perf.json`. Fails (Err with a human-readable reason) when
///
/// * the baseline is unreadable or ran a different scale (walls are not
///   comparable across scales),
/// * any cell's simulated `cycles` differs while benchmark set and seed
///   match — that is a *correctness* drift wearing a perf costume, caught
///   here deterministically even on noisy runners, or
/// * total wall time regressed by more than `tolerance` (0.25 = fail when
///   more than 25% slower than the baseline).
///
/// On success returns a one-line summary with the speed ratio.
pub fn check_against_baseline(
    report: &PerfReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<String, String> {
    let base = parse_baseline(baseline_json)
        .ok_or_else(|| "baseline JSON is not a PerfReport".to_string())?;
    let scale = format!("{:?}", report.scale);
    if base.scale != scale {
        return Err(format!(
            "scale mismatch: baseline ran {}, this run {scale} — wall times not comparable",
            base.scale
        ));
    }
    if base.seed == report.seed {
        if base.cells.len() != report.cells.len() {
            return Err(format!(
                "grid shape changed: baseline has {} cells, this run {}",
                base.cells.len(),
                report.cells.len()
            ));
        }
        for (b, c) in base.cells.iter().zip(&report.cells) {
            if b.0 != c.bench || b.1 != c.detector {
                return Err(format!(
                    "grid order changed: baseline cell {}/{} vs {}/{}",
                    b.0, b.1, c.bench, c.detector
                ));
            }
            if b.2 != c.cycles {
                return Err(format!(
                    "simulated cycles drifted on {}/{}: baseline {}, this run {} — \
                     not a perf regression, a behaviour change",
                    c.bench, c.detector, b.2, c.cycles
                ));
            }
        }
    }
    let wall_ms = report.total_wall().as_secs_f64() * 1e3;
    let ratio = wall_ms / base.total_wall_ms.max(1e-9);
    if ratio > 1.0 + tolerance {
        return Err(format!(
            "perf regression: total wall {wall_ms:.1} ms vs baseline {:.1} ms \
             ({ratio:.2}x, tolerance {:.0}%)",
            base.total_wall_ms,
            tolerance * 100.0
        ));
    }
    let mut msg = format!(
        "perf ok: total wall {wall_ms:.1} ms vs baseline {:.1} ms ({ratio:.2}x)",
        base.total_wall_ms
    );
    // The baseline's last history entry is the previous completed round;
    // spell out the round-over-round delta when one exists.
    if let Some(prev) = parse_history(baseline_json).last() {
        let delta = (wall_ms - prev.total_wall_ms) / prev.total_wall_ms.max(1e-9) * 100.0;
        msg.push_str(&format!(
            "; vs round {} ({}): {:.1} ms -> {wall_ms:.1} ms ({delta:+.1}%)",
            prev.round, prev.git_subject, prev.total_wall_ms
        ));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_measures_and_serialises() {
        // One tiny cell-shaped report, hand-built (no timing dependence).
        let report = PerfReport {
            scale: Scale::Small,
            seed: 7,
            cells: vec![
                PerfCell {
                    bench: "ssca2".into(),
                    detector: "baseline".into(),
                    wall: Duration::from_millis(4),
                    wall_min: Duration::from_millis(3),
                    accesses: 2000,
                    cycles: 10_000,
                },
                PerfCell {
                    bench: "ssca2".into(),
                    detector: "sb8".into(),
                    wall: Duration::from_millis(6),
                    wall_min: Duration::from_millis(6),
                    accesses: 2000,
                    cycles: 10_000,
                },
            ],
        };
        assert_eq!(report.total_accesses(), 4000);
        assert_eq!(report.total_wall(), Duration::from_millis(10));
        let t = report.table();
        // One benchmark row plus TOTAL.
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1][0], "TOTAL");
        let json = report.to_json();
        assert!(json.contains("\"total_accesses\": 4000"));
        assert!(json.contains("\"detector\": \"sb8\""));
        // Balanced braces — cheap JSON sanity without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    fn tiny_report(wall_ms: u64, cycles: u64) -> PerfReport {
        PerfReport {
            scale: Scale::Small,
            seed: 7,
            cells: vec![PerfCell {
                bench: "ssca2".into(),
                detector: "baseline".into(),
                wall: Duration::from_millis(wall_ms),
                wall_min: Duration::from_millis(wall_ms),
                accesses: 2000,
                cycles,
            }],
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let report = tiny_report(4, 10_000);
        let base = parse_baseline(&report.to_json()).expect("own JSON parses");
        assert_eq!(base.scale, "Small");
        assert_eq!(base.seed, 7);
        assert_eq!(base.cells, vec![("ssca2".into(), "baseline".into(), 10_000)]);
        assert!((base.total_wall_ms - 4.0).abs() < 1e-6);
        assert_eq!(parse_baseline("{\"not\": \"a report\"}"), None);
    }

    #[test]
    fn baseline_check_accepts_equal_and_faster_runs() {
        let base_json = tiny_report(10, 10_000).to_json();
        for wall in [5, 10, 12] {
            let msg = check_against_baseline(&tiny_report(wall, 10_000), &base_json, 0.25)
                .expect("within tolerance");
            assert!(msg.contains("perf ok"), "{msg}");
        }
    }

    #[test]
    fn baseline_check_rejects_regressions_and_drift() {
        let base_json = tiny_report(10, 10_000).to_json();
        let slow = check_against_baseline(&tiny_report(20, 10_000), &base_json, 0.25);
        assert!(slow.unwrap_err().contains("perf regression"));
        // Same seed, different simulated cycles: behaviour drift, not noise.
        let drift = check_against_baseline(&tiny_report(10, 10_001), &base_json, 0.25);
        assert!(drift.unwrap_err().contains("cycles drifted"));
        // Different scale: not comparable at all.
        let mut other = tiny_report(1, 10_000);
        other.scale = Scale::Standard;
        let scale = check_against_baseline(&other, &base_json, 0.25);
        assert!(scale.unwrap_err().contains("scale mismatch"));
    }

    #[test]
    fn history_roundtrips_and_appends() {
        let report = tiny_report(4, 10_000);
        // No history field at all: parses as empty, not an error.
        assert_eq!(parse_history(&report.to_json()), vec![]);
        // Round numbering starts at 1 and the new entry records this run.
        let h1 = next_history(&[], &report, "flat cache arrays");
        assert_eq!(h1.len(), 1);
        assert_eq!(h1[0].round, 1);
        assert!((h1[0].total_wall_ms - 4.0).abs() < 1e-6);
        // Carry-forward keeps old rounds verbatim and increments.
        let faster = tiny_report(3, 10_000);
        let h2 = next_history(&h1, &faster, "calendar \"queue\" run");
        assert_eq!(h2.len(), 2);
        assert_eq!(h2[1].round, 2);
        // Roundtrip through the emitted JSON. Quotes in subjects are
        // sanitized to apostrophes on emit (the scanner cannot round-trip
        // escapes), so compare against the sanitized form.
        let json = faster.to_json_with_history(&h2);
        let parsed = parse_history(&json);
        assert_eq!(parsed[0], h2[0]);
        assert_eq!(parsed[1].git_subject, "calendar 'queue' run");
        assert_eq!(parsed[1].round, 2);
        // The top-level total is still what parse_baseline sees, not a
        // history entry's wall.
        let base = parse_baseline(&json).expect("report with history parses");
        assert!((base.total_wall_ms - 3.0).abs() < 1e-6);
    }

    #[test]
    fn baseline_check_reports_delta_vs_previous_round() {
        let base_report = tiny_report(10, 10_000);
        let history = next_history(&[], &base_report, "previous round");
        let base_json = base_report.to_json_with_history(&history);
        let msg = check_against_baseline(&tiny_report(5, 10_000), &base_json, 0.25)
            .expect("faster run passes");
        assert!(msg.contains("vs round 1 (previous round)"), "{msg}");
        assert!(msg.contains("(-50.0%)"), "{msg}");
        // Without history the message stays in its original shape.
        let plain = check_against_baseline(&tiny_report(5, 10_000), &base_report.to_json(), 0.25)
            .expect("faster run passes");
        assert!(!plain.contains("vs round"), "{plain}");
    }

    #[test]
    fn measure_runs_the_grid() {
        // Restrict to the real measurement path but keep it fast: Small
        // scale, and just assert shape + non-zero work.
        let r = measure(Scale::Small, 0x9e3f);
        let n_benches = asf_workloads::all(Scale::Small).len();
        assert_eq!(r.cells.len(), n_benches * smoke_detectors().len());
        assert!(r.total_accesses() > 0);
        assert!(r.cells.iter().all(|c| c.cycles > 0));
        // One sample: median and min are the same observation.
        assert!(r.cells.iter().all(|c| c.wall == c.wall_min));
    }

    #[test]
    fn multi_sample_medians_bound_the_min() {
        // Real three-sample sweep on the quickest scale: identical
        // simulated results (asserted inside measure_samples), median ≥
        // min, and the JSON carries both.
        let r = measure_samples(Scale::Small, 0x9e3f, 3);
        assert!(r.cells.iter().all(|c| c.wall >= c.wall_min));
        let json = r.to_json();
        assert!(json.contains("\"wall_min_ms\""));
        // The baseline scanner still reads the same shape.
        let base = parse_baseline(&json).expect("parses");
        assert_eq!(base.cells.len(), r.cells.len());
    }
}
