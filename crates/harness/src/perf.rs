//! `asf-repro perf` — simulator throughput measurement.
//!
//! Runs a fixed (benchmark × detector) smoke grid single-threaded and
//! reports, per benchmark, wall time and simulated accesses per second
//! (an access = one cache-line fragment of one memory operation — the unit
//! of work of `Machine::access_line`, the simulator's hot path). The grid
//! is deliberately sequential so the numbers measure per-access cost, not
//! the machine's core count.
//!
//! The report doubles as the repo's perf regression artifact: the harness
//! writes it to `BENCH_perf.json` (repo root in CI) and EXPERIMENTS.md
//! records the baselines. Simulated *outcomes* are pinned separately by
//! `tests/golden_stats.rs`; this file only measures speed.

use crate::matrix::run_one;
use asf_core::detector::DetectorKind;
use asf_stats::table::Table;
use asf_workloads::Scale;
use std::time::{Duration, Instant};

/// The fixed detector set of the smoke grid: line granularity, the paper's
/// preferred sub-blocking, and the byte-granularity oracle — the three
/// configurations with the most distinct per-access work.
pub fn smoke_detectors() -> Vec<DetectorKind> {
    vec![DetectorKind::Baseline, DetectorKind::SubBlock(8), DetectorKind::Perfect]
}

/// One timed (benchmark × detector) cell.
#[derive(Clone, Debug)]
pub struct PerfCell {
    /// Benchmark name.
    pub bench: String,
    /// Detector label (`baseline`, `sb8`, `perfect`).
    pub detector: String,
    /// Wall time of the run.
    pub wall: Duration,
    /// Simulated accesses (L1 hits + misses, per line fragment).
    pub accesses: u64,
    /// Simulated cycles (determinism cross-check against golden runs).
    pub cycles: u64,
}

/// A completed throughput measurement.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Input scale the grid ran at.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// All timed cells, in (benchmark, detector) grid order.
    pub cells: Vec<PerfCell>,
}

/// Time the smoke grid: every benchmark at `scale` under
/// [`smoke_detectors`], one run each, sequentially on this thread.
pub fn measure(scale: Scale, seed: u64) -> PerfReport {
    let mut cells = Vec::new();
    for w in asf_workloads::all(scale) {
        for &det in &smoke_detectors() {
            let start = Instant::now();
            let stats = run_one(w.name(), det, scale, seed);
            let wall = start.elapsed();
            cells.push(PerfCell {
                bench: w.name().to_string(),
                detector: det.label(),
                wall,
                accesses: stats.l1_hits + stats.l1_misses,
                cycles: stats.cycles,
            });
        }
    }
    PerfReport { scale, seed, cells }
}

fn rate(accesses: u64, wall: Duration) -> f64 {
    accesses as f64 / wall.as_secs_f64().max(1e-9)
}

impl PerfReport {
    /// Benchmarks present, in grid order.
    fn benches(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.cells {
            if out.last() != Some(&c.bench.as_str()) {
                out.push(&c.bench);
            }
        }
        out
    }

    /// Total wall time across the grid.
    pub fn total_wall(&self) -> Duration {
        self.cells.iter().map(|c| c.wall).sum()
    }

    /// Total simulated accesses across the grid.
    pub fn total_accesses(&self) -> u64 {
        self.cells.iter().map(|c| c.accesses).sum()
    }

    /// Per-benchmark table (detectors aggregated) plus a TOTAL row:
    /// accesses, wall time, and accesses/second.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("perf — simulator throughput ({:?}, seed {:#x})", self.scale, self.seed),
            &["benchmark", "accesses", "wall ms", "Macc/s"],
        );
        let mut row = |name: &str, acc: u64, wall: Duration| {
            t.row(vec![
                name.to_string(),
                acc.to_string(),
                format!("{:.2}", wall.as_secs_f64() * 1e3),
                format!("{:.2}", rate(acc, wall) / 1e6),
            ]);
        };
        for b in self.benches() {
            let (mut acc, mut wall) = (0u64, Duration::ZERO);
            for c in self.cells.iter().filter(|c| c.bench == b) {
                acc += c.accesses;
                wall += c.wall;
            }
            row(b, acc, wall);
        }
        row("TOTAL", self.total_accesses(), self.total_wall());
        t
    }

    /// Machine-readable report (hand-rolled JSON — dependency policy):
    /// per-cell detail plus grid totals.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"bench\": \"{}\", \"detector\": \"{}\", \
                 \"wall_ms\": {:.3}, \"accesses\": {}, \"cycles\": {}, \
                 \"accesses_per_sec\": {:.0}}}",
                c.bench,
                c.detector,
                c.wall.as_secs_f64() * 1e3,
                c.accesses,
                c.cycles,
                rate(c.accesses, c.wall),
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str(&format!(
            "  \"total_wall_ms\": {:.3},\n  \"total_accesses\": {},\n  \
             \"total_accesses_per_sec\": {:.0}\n}}\n",
            self.total_wall().as_secs_f64() * 1e3,
            self.total_accesses(),
            rate(self.total_accesses(), self.total_wall()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_measures_and_serialises() {
        // One tiny cell-shaped report, hand-built (no timing dependence).
        let report = PerfReport {
            scale: Scale::Small,
            seed: 7,
            cells: vec![
                PerfCell {
                    bench: "ssca2".into(),
                    detector: "baseline".into(),
                    wall: Duration::from_millis(4),
                    accesses: 2000,
                    cycles: 10_000,
                },
                PerfCell {
                    bench: "ssca2".into(),
                    detector: "sb8".into(),
                    wall: Duration::from_millis(6),
                    accesses: 2000,
                    cycles: 10_000,
                },
            ],
        };
        assert_eq!(report.total_accesses(), 4000);
        assert_eq!(report.total_wall(), Duration::from_millis(10));
        let t = report.table();
        // One benchmark row plus TOTAL.
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1][0], "TOTAL");
        let json = report.to_json();
        assert!(json.contains("\"total_accesses\": 4000"));
        assert!(json.contains("\"detector\": \"sb8\""));
        // Balanced braces — cheap JSON sanity without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn measure_runs_the_grid() {
        // Restrict to the real measurement path but keep it fast: Small
        // scale, and just assert shape + non-zero work.
        let r = measure(Scale::Small, 0x9e3f);
        let n_benches = asf_workloads::all(Scale::Small).len();
        assert_eq!(r.cells.len(), n_benches * smoke_detectors().len());
        assert!(r.total_accesses() > 0);
        assert!(r.cells.iter().all(|c| c.cycles > 0));
    }
}
