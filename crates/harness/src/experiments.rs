//! One function per paper table/figure (see DESIGN.md §5 for the index).
//!
//! Every function returns a [`Table`] whose rows mirror what the paper
//! plots; the `asf-repro` binary renders them as text or CSV. Figures 1, 2,
//! 8, 9 and 10 read off a precomputed [`Matrix`]; Figures 3–5 use the
//! baseline runs of the four representative benchmarks; Figures 6 and 7 run
//! scripted protocol scenarios.

use crate::error::HarnessError;
use crate::matrix::Matrix;
use asf_core::detector::{ConflictType, DetectorKind};
use asf_core::overhead;
use asf_core::subblock::SubBlockState;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;
use asf_stats::table::{pct, pct_opt, Table};
use asf_workloads::Scale;

/// The four representative benchmarks of Figures 3–5.
pub const REPRESENTATIVE: [&str; 4] = ["vacation", "genome", "kmeans", "intruder"];

/// Render a missing/failed matrix cell as a placeholder row so the rest of
/// the table still carries data — the partial-results contract of the
/// crash-safe harness — and attach the failure cause(s) as table notes, so
/// CSV/JSON outputs are self-describing instead of bare `failed` cells.
fn failed_row(t: &mut Table, m: &Matrix, bench: &str, cols: usize) {
    failed_row_labeled(t, m, bench, bench, cols);
}

/// [`failed_row`] with a display label distinct from the matrix bench key
/// (e.g. `genome (sb4)` for per-detector rows).
fn failed_row_labeled(t: &mut Table, m: &Matrix, bench: &str, label: &str, cols: usize) {
    let mut row = vec![label.to_string()];
    row.resize(cols, "failed".to_string());
    t.row(row);
    for (key, error, attempts) in m.failed_cells() {
        if key.bench == bench {
            t.note(format!(
                "{}/{} failed after {attempts} attempt(s): {error}",
                key.bench, key.detector
            ));
        }
    }
}

/// Number of time bins used for the Figure 3 curves.
pub const FIG3_BINS: usize = 20;

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table I — the sub-block state encoding.
pub fn table1() -> Table {
    let mut t = Table::new("Table I: sub-block state", &["SPEC", "WR", "state"]);
    for (spec, wr) in [(false, false), (false, true), (true, false), (true, true)] {
        t.row(vec![
            (spec as u8).to_string(),
            (wr as u8).to_string(),
            SubBlockState::from_bits(spec, wr).to_string(),
        ]);
    }
    t
}

/// Table II — the simulated machine configuration.
pub fn table2() -> Table {
    let m = MachineConfig::opteron_8core();
    let mut t = Table::new("Table II: simulation configuration", &["feature", "description"]);
    t.row(vec![
        "Processors".into(),
        format!("{} AMD Opteron-like out-of-order cores", m.cores),
    ]);
    t.row(vec![
        "L1 DCache".into(),
        format!(
            "{} KB, 64 B lines, {}-way, {} cycles load-to-use",
            m.l1.size_bytes / 1024,
            m.l1.ways,
            m.latency.l1
        ),
    ]);
    t.row(vec![
        "Private L2".into(),
        format!(
            "{} KB, {}-way, {} cycles load-to-use",
            m.l2.size_bytes / 1024,
            m.l2.ways,
            m.latency.l2
        ),
    ]);
    t.row(vec![
        "Private L3".into(),
        format!(
            "{} MB, {}-way, {} cycles load-to-use",
            m.l3.size_bytes / (1024 * 1024),
            m.l3.ways,
            m.latency.l3
        ),
    ]);
    t.row(vec![
        "Main memory".into(),
        format!("{} cycles load-to-use", m.latency.memory),
    ]);
    t
}

/// Table III — benchmark descriptions.
pub fn table3() -> Table {
    let mut t = Table::new("Table III: benchmark description", &["benchmark", "description"]);
    for w in asf_workloads::all(Scale::Small) {
        t.row(vec![w.name().to_string(), w.description().to_string()]);
    }
    t
}

// ---------------------------------------------------------------------
// Figures 1–2: false-conflict rates and type breakdown (baseline ASF)
// ---------------------------------------------------------------------

/// Figure 1 — false transactional conflict rate per benchmark under the
/// baseline ASF system, plus the suite average.
pub fn fig1(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Figure 1: false conflict rate (baseline ASF)",
        &["benchmark", "conflicts", "false", "false rate"],
    );
    let mut rates = Vec::new();
    for b in m.benches() {
        let Some(s) = m.stats(&b, DetectorKind::Baseline) else {
            failed_row(&mut t, m, &b, 4);
            continue;
        };
        let rate = s.conflicts.false_rate();
        if let Some(r) = rate {
            rates.push(r);
        }
        t.row(vec![
            b.clone(),
            s.conflicts.total().to_string(),
            s.conflicts.false_total().to_string(),
            pct_opt(rate),
        ]);
    }
    let avg = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
    t.row(vec!["average".into(), String::new(), String::new(), pct_opt(Some(avg))]);
    t
}

/// Figure 2 — breakdown of false conflicts into WAR / RAW / WAW shares.
pub fn fig2(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Figure 2: false conflict type breakdown (baseline ASF)",
        &["benchmark", "WAR", "RAW", "WAW"],
    );
    let mut sums = [0.0f64; 3];
    let mut n = 0usize;
    for b in m.benches() {
        let Some(s) = m.stats(&b, DetectorKind::Baseline) else {
            failed_row(&mut t, m, &b, 4);
            continue;
        };
        match s.conflicts.false_type_shares() {
            Some(shares) => {
                for (acc, v) in sums.iter_mut().zip(shares) {
                    *acc += v;
                }
                n += 1;
                t.row(vec![b.clone(), pct(shares[0]), pct(shares[1]), pct(shares[2])]);
            }
            None => {
                t.row(vec![b.clone(), "n/a".into(), "n/a".into(), "n/a".into()]);
            }
        }
    }
    if n > 0 {
        t.row(vec![
            "average".into(),
            pct(sums[0] / n as f64),
            pct(sums[1] / n as f64),
            pct(sums[2] / n as f64),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figures 3–5: temporal / spatial / intra-line behaviour
// ---------------------------------------------------------------------

/// Figure 3 — cumulative started transactions and false conflicts over
/// execution time, binned into [`FIG3_BINS`] equal windows, for the four
/// representative benchmarks.
pub fn fig3(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Figure 3: cumulative false conflicts / started txns over time (baseline)",
        &["benchmark", "series", "curve (cumulative per 5% time bin)", "burstiness"],
    );
    for &b in REPRESENTATIVE.iter() {
        let Some(s) = m.stats(b, DetectorKind::Baseline) else {
            failed_row(&mut t, m, b, 4);
            continue;
        };
        // The matrix aggregates several seeds (cycles are summed), so the
        // plot horizon is the latest event stamp, not the cycle total.
        let horizon = s
            .started_series
            .last_cycle()
            .max(s.false_series.last_cycle())
            .max(1);
        let started = s.started_series.cumulative(horizon, FIG3_BINS);
        let falses = s.false_series.cumulative(horizon, FIG3_BINS);
        let fmt = |v: &[u64]| {
            v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ")
        };
        t.row(vec![
            b.to_string(),
            "started-txns".into(),
            fmt(&started),
            format!("{:.2}", s.started_series.burstiness(horizon, FIG3_BINS)),
        ]);
        t.row(vec![
            b.to_string(),
            "false-conflicts".into(),
            fmt(&falses),
            format!("{:.2}", s.false_series.burstiness(horizon, FIG3_BINS)),
        ]);
    }
    t
}

/// Figure 4 — false conflicts by cache-line index: the hottest lines and a
/// concentration summary for the four representative benchmarks.
pub fn fig4(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Figure 4: false conflicts by cache line (baseline)",
        &[
            "benchmark",
            "distinct lines",
            "hottest lines (line:count)",
            "top-4 concentration",
        ],
    );
    for &b in REPRESENTATIVE.iter() {
        let Some(s) = m.stats(b, DetectorKind::Baseline) else {
            failed_row(&mut t, m, b, 4);
            continue;
        };
        let hottest = s
            .false_by_line
            .hottest(4)
            .into_iter()
            .map(|(l, c)| format!("{l:#x}:{c}"))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            b.to_string(),
            s.false_by_line.distinct_lines().to_string(),
            hottest,
            pct(s.false_by_line.concentration(4)),
        ]);
    }
    t
}

/// Figure 5 — transactional accesses by intra-line location, bucketed at
/// each benchmark's natural word size.
pub fn fig5(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Figure 5: accesses by location inside cache lines (baseline)",
        &["benchmark", "word", "occupied buckets", "bucket counts"],
    );
    for &b in REPRESENTATIVE.iter() {
        let Some(s) = m.stats(b, DetectorKind::Baseline) else {
            failed_row(&mut t, m, b, 4);
            continue;
        };
        let word = asf_workloads::by_name(b, Scale::Small)
            .expect("known benchmark")
            .word_size();
        let buckets = s.access_offsets.bucketed(word);
        t.row(vec![
            b.to_string(),
            format!("{word}B"),
            format!("{}/{}", s.access_offsets.occupied_buckets(word), buckets.len()),
            buckets
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figures 6–7: protocol walkthroughs (scripted scenarios)
// ---------------------------------------------------------------------

fn fig6_scripted() -> ScriptedWorkload {
    let a = Addr(0x3000); // sub-block 0 of the line
    let b = Addr(0x3010); // sub-block 1
    ScriptedWorkload {
        name: "fig6",
        scripts: vec![
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::Write { addr: a, size: 8, value: 0xAA },
                TxOp::WaitUntil { cycle: 5_000 },
            ]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: b, size: 8 },
                TxOp::WaitUntil { cycle: 2_000 },
                TxOp::Read { addr: a, size: 8 },
            ]))],
        ],
    }
}

/// Figure 6 — the dirty-state hazard scenarios: T0 speculatively writes
/// sub-block 0, T1 reads sub-block 1 (false sharing, no conflict), then T1
/// reads T0's bytes. Without the dirty mechanism the conflict is missed
/// (isolation violation); with it, the forced refetch aborts T0.
pub fn fig6() -> Table {
    let mut t = Table::new(
        "Figure 6: dirty-state hazard (scripted, sub-block 4)",
        &["dirty mechanism", "dirty refetches", "true conflicts", "isolation violations"],
    );
    for enable in [true, false] {
        let mut cfg = SimConfig::paper(DetectorKind::SubBlock(4));
        cfg.machine = MachineConfig::opteron_with_cores(2);
        cfg.enable_dirty = enable;
        let out = Machine::run(&fig6_scripted(), cfg);
        t.row(vec![
            if enable { "on (paper §IV-C)" } else { "off (ablation)" }.to_string(),
            out.stats.dirty_refetches.to_string(),
            out.stats.conflicts.true_total().to_string(),
            out.stats.isolation_violations.to_string(),
        ]);
    }
    t
}

/// Figure 7 — the load-access walkthrough: a transactional load that hits a
/// remote speculatively-written line receives piggy-back bits and marks the
/// written sub-blocks dirty; a later load of those bytes refetches.
pub fn fig7() -> Table {
    let a = Addr(0x7000); // sub-block 0: T0 writes
    let b = Addr(0x7010); // sub-block 1: T1 reads
    let w = ScriptedWorkload {
        name: "fig7",
        scripts: vec![
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::Write { addr: a, size: 8, value: 1 },
                TxOp::WaitUntil { cycle: 4_000 },
            ]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: b, size: 8 }, // receives piggy-back
                TxOp::WaitUntil { cycle: 2_000 },
                TxOp::Read { addr: a, size: 8 }, // dirty hit → refetch
            ]))],
        ],
    };
    let mut cfg = SimConfig::paper(DetectorKind::SubBlock(4));
    cfg.machine = MachineConfig::opteron_with_cores(2);
    let out = Machine::run(&w, cfg);
    let mut t = Table::new(
        "Figure 7: load access with piggy-back dirty marking (scripted)",
        &["event", "count"],
    );
    t.row(vec!["probes broadcast".into(), out.stats.probes.to_string()]);
    t.row(vec!["dirty refetches".into(), out.stats.dirty_refetches.to_string()]);
    t.row(vec![
        "conflicts detected".into(),
        out.stats.conflicts.total().to_string(),
    ]);
    t.row(vec![
        "isolation violations".into(),
        out.stats.isolation_violations.to_string(),
    ]);
    t
}

// ---------------------------------------------------------------------
// Figures 8–10: the headline evaluation
// ---------------------------------------------------------------------

/// Figure 8 — false-conflict reduction rate (vs. baseline) for 2/4/8/16
/// sub-blocks, plus the suite average per configuration.
pub fn fig8(m: &Matrix) -> Table {
    let configs = [
        DetectorKind::SubBlock(2),
        DetectorKind::SubBlock(4),
        DetectorKind::SubBlock(8),
        DetectorKind::SubBlock(16),
    ];
    let mut t = Table::new(
        "Figure 8: false conflict reduction rate vs sub-block count",
        &["benchmark", "sb2", "sb4", "sb8", "sb16"],
    );
    let mut sums = [0.0f64; 4];
    let mut n = 0;
    for b in m.benches() {
        let Some(base) = m.stats(&b, DetectorKind::Baseline).map(|s| &s.conflicts) else {
            failed_row(&mut t, m, &b, 5);
            continue;
        };
        let mut cells = vec![b.clone()];
        let mut counted = false;
        for (i, &k) in configs.iter().enumerate() {
            let Some(s) = m.stats(&b, k) else {
                cells.push("failed".into());
                continue;
            };
            let red = s.conflicts.false_reduction_vs(base);
            if let Some(r) = red {
                sums[i] += r;
                counted = true;
            }
            cells.push(pct_opt(red));
        }
        if counted {
            n += 1;
        }
        t.row(cells);
    }
    if n > 0 {
        let mut cells = vec!["average".to_string()];
        for s in sums {
            cells.push(pct(s / n as f64));
        }
        t.row(cells);
    }
    t
}

/// Figure 9 — overall conflict reduction (true + false) of sub-block-4 and
/// the perfect system versus baseline.
pub fn fig9(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Figure 9: overall conflict reduction vs baseline",
        &["benchmark", "sb4", "perfect", "sb4 / perfect"],
    );
    let mut sum4 = 0.0;
    let mut sump = 0.0;
    let mut n = 0;
    for b in m.benches() {
        let cells = (
            m.stats(&b, DetectorKind::Baseline),
            m.stats(&b, DetectorKind::SubBlock(4)),
            m.stats(&b, DetectorKind::Perfect),
        );
        let (Some(base), Some(sb4), Some(perfect)) = cells else {
            failed_row(&mut t, m, &b, 4);
            continue;
        };
        let base = &base.conflicts;
        let r4 = sb4.conflicts.total_reduction_vs(base);
        let rp = perfect.conflicts.total_reduction_vs(base);
        let ratio = match (r4, rp) {
            (Some(a), Some(p)) if p.abs() > 1e-9 => Some(a / p),
            _ => None,
        };
        if let (Some(a), Some(p)) = (r4, rp) {
            sum4 += a;
            sump += p;
            n += 1;
        }
        t.row(vec![
            b.clone(),
            pct_opt(r4),
            pct_opt(rp),
            ratio.map(|r| format!("{:.2}", r)).unwrap_or_else(|| "n/a".into()),
        ]);
    }
    if n > 0 {
        let a = sum4 / n as f64;
        let p = sump / n as f64;
        t.row(vec![
            "average".into(),
            pct(a),
            pct(p),
            format!("{:.2}", if p.abs() > 1e-9 { a / p } else { 0.0 }),
        ]);
    }
    t
}

/// Figure 10 — execution-time improvement over baseline for sub-block-4 and
/// the perfect system.
pub fn fig10(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Figure 10: execution time improvement vs baseline",
        &["benchmark", "sb4", "perfect"],
    );
    let mut s4 = 0.0;
    let mut sp = 0.0;
    let mut n = 0;
    for b in m.benches() {
        let cells = (
            m.stats(&b, DetectorKind::Baseline),
            m.stats(&b, DetectorKind::SubBlock(4)),
            m.stats(&b, DetectorKind::Perfect),
        );
        let (Some(base), Some(sb4), Some(perfect)) = cells else {
            failed_row(&mut t, m, &b, 3);
            continue;
        };
        let v4 = sb4.speedup_vs(base);
        let vp = perfect.speedup_vs(base);
        s4 += v4;
        sp += vp;
        n += 1;
        t.row(vec![b.clone(), pct(v4), pct(vp)]);
    }
    if n > 0 {
        t.row(vec!["average".into(), pct(s4 / n as f64), pct(sp / n as f64)]);
    }
    t
}

// ---------------------------------------------------------------------
// §IV-E overhead and the headline numbers
// ---------------------------------------------------------------------

/// §IV-E — hardware overhead per detector configuration on the paper's L1.
pub fn overhead_table() -> Table {
    let l1 = MachineConfig::opteron_8core().l1;
    let mut t = Table::new(
        "Hardware overhead (64 KB L1, 64 B lines) — paper §IV-E",
        &["detector", "bits/line", "extra bits/line", "extra bytes", "% of L1", "piggy-back bits"],
    );
    for k in [
        DetectorKind::Baseline,
        DetectorKind::SubBlock(2),
        DetectorKind::SubBlock(4),
        DetectorKind::SubBlock(8),
        DetectorKind::SubBlock(16),
    ] {
        let o = overhead::overhead(k, l1);
        t.row(vec![
            k.label(),
            o.bits_per_line.to_string(),
            o.extra_bits_per_line.to_string(),
            o.extra_bytes.to_string(),
            format!("{:.2}%", o.fraction_of_l1 * 100.0),
            overhead::piggyback_bits(k).to_string(),
        ]);
    }
    t
}

/// The abstract's headline: average false-conflict and overall-conflict
/// reduction of the 4-sub-block configuration (paper: 56.4% and 31.3%).
pub fn headline(m: &Matrix) -> Table {
    let mut false_red = 0.0;
    let mut total_red = 0.0;
    let mut n = 0;
    for b in m.benches() {
        let (Some(base), Some(sb4)) = (
            m.stats(&b, DetectorKind::Baseline).map(|s| &s.conflicts),
            m.stats(&b, DetectorKind::SubBlock(4)).map(|s| &s.conflicts),
        ) else {
            continue; // averages over the surviving cells
        };
        if let (Some(f), Some(t)) = (sb4.false_reduction_vs(base), sb4.total_reduction_vs(base)) {
            false_red += f;
            total_red += t;
            n += 1;
        }
    }
    let mut t = Table::new(
        "Headline: average reductions at 4 sub-blocks",
        &["metric", "paper", "measured"],
    );
    let nf = n.max(1) as f64;
    t.row(vec!["false conflict reduction".into(), "56.4%".into(), pct(false_red / nf)]);
    t.row(vec!["overall conflict reduction".into(), "31.3%".into(), pct(total_red / nf)]);
    t
}

/// Quick diagnostic dump used during workload calibration (kept for
/// `asf-repro diag`; not a paper artifact).
pub fn diag(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Diagnostics per benchmark/detector",
        &[
            "benchmark", "detector", "cycles", "commits", "aborts", "conflicts", "false",
            "WARf", "RAWf", "WAWf", "true", "retries", "fallbacks", "viol",
        ],
    );
    for b in m.benches() {
        for d in DetectorKind::paper_set() {
            if !m.contains(&b, d) {
                continue;
            }
            let Some(s) = m.stats(&b, d) else {
                failed_row_labeled(&mut t, m, &b, &format!("{b} ({})", d.label()), 14);
                continue;
            };
            t.row(vec![
                b.clone(),
                d.label(),
                s.cycles.to_string(),
                s.tx_committed.to_string(),
                s.tx_aborted.to_string(),
                s.conflicts.total().to_string(),
                s.conflicts.false_total().to_string(),
                s.conflicts.false_of(ConflictType::WriteAfterRead).to_string(),
                s.conflicts.false_of(ConflictType::ReadAfterWrite).to_string(),
                s.conflicts.false_of(ConflictType::WriteAfterWrite).to_string(),
                s.conflicts.true_total().to_string(),
                s.max_retries.to_string(),
                s.fallback_commits.to_string(),
                s.isolation_violations.to_string(),
            ]);
        }
    }
    t
}

/// Every experiment in presentation order, as `(name, table)` pairs —
/// what `asf-repro all` prints and EXPERIMENTS.md is generated from.
pub fn all_experiments(m: &Matrix) -> Vec<(&'static str, Table)> {
    vec![
        ("table1", table1()),
        ("table2", table2()),
        ("table3", table3()),
        ("fig1", fig1(m)),
        ("fig2", fig2(m)),
        ("fig3", fig3(m)),
        ("fig4", fig4(m)),
        ("fig5", fig5(m)),
        ("fig6", fig6()),
        ("fig7", fig7()),
        ("fig8", fig8(m)),
        ("fig9", fig9(m)),
        ("fig10", fig10(m)),
        ("overhead", overhead_table()),
        ("headline", headline(m)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_encoding() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t.rows()[0], vec!["0", "0", "Non-speculative"]);
        assert_eq!(t.rows()[1], vec!["0", "1", "Dirty"]);
        assert_eq!(t.rows()[2], vec!["1", "0", "S-RD"]);
        assert_eq!(t.rows()[3], vec!["1", "1", "S-WR"]);
    }

    #[test]
    fn table2_lists_the_machine() {
        let t = table2();
        let text = t.render();
        assert!(text.contains("8 AMD Opteron"));
        assert!(text.contains("64 KB"));
        assert!(text.contains("210 cycles"));
    }

    #[test]
    fn table3_names_all_benchmarks() {
        let t = table3();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn overhead_has_paper_numbers() {
        let t = overhead_table();
        let text = t.render();
        // 4 sub-blocks: 6 extra bits/line, 768 bytes, 1.17%.
        assert!(text.contains("768"), "{text}");
        assert!(text.contains("1.17%"), "{text}");
    }

    #[test]
    fn fig6_contrast_dirty_on_off() {
        let t = fig6();
        assert_eq!(t.len(), 2);
        // on: violations 0; off: violations > 0.
        assert_eq!(t.rows()[0][3], "0");
        assert_ne!(t.rows()[1][3], "0");
    }

    #[test]
    fn fig7_walkthrough_is_clean() {
        let t = fig7();
        let rows = t.rows();
        // dirty refetches happened and no isolation violations.
        assert_ne!(rows[1][1], "0");
        assert_eq!(rows[3][1], "0");
    }
}

// ---------------------------------------------------------------------
// Extension experiments (beyond the paper's figures)
// ---------------------------------------------------------------------

/// Core-count scaling: how the false-conflict rate and the sub-blocking
/// gain grow with parallelism (2/4/8 cores). The paper fixes 8 cores; this
/// sweep shows the trend its motivation predicts — false sharing scales
/// with the number of concurrently running transactions.
pub fn scaling(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Extension: core-count scaling (vacation + ssca2)",
        &["benchmark", "cores", "false rate (baseline)", "sb4 time gain"],
    );
    for bench in ["vacation", "ssca2"] {
        for cores in [2usize, 4, 8] {
            let run = |detector: DetectorKind| {
                let w = asf_workloads::by_name(bench, scale).expect("known benchmark");
                let mut cfg = SimConfig::paper_seeded(detector, seed);
                cfg.machine = MachineConfig::opteron_with_cores(cores);
                Machine::run(w.as_ref(), cfg).stats
            };
            let base = run(DetectorKind::Baseline);
            let sb4 = run(DetectorKind::SubBlock(4));
            t.row(vec![
                bench.to_string(),
                cores.to_string(),
                pct_opt(base.conflicts.false_rate()),
                pct(sb4.speedup_vs(&base)),
            ]);
        }
    }
    t
}

/// Backoff-policy sensitivity on the retry-heavy benchmark (intruder):
/// execution time and abort counts for three backoff windows under the
/// baseline detector. Documents the §V-A design choice.
pub fn backoff_sweep(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Extension: exponential backoff sensitivity (intruder, baseline)",
        &["base window", "cap exp", "cycles", "aborts", "max retries", "fallbacks"],
    );
    for (base, cap) in [(4u64, 2u32), (64, 10), (512, 12)] {
        let w = asf_workloads::by_name("intruder", scale).expect("known benchmark");
        let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
        cfg.backoff_base = base;
        cfg.backoff_cap_exp = cap;
        let s = Machine::run(w.as_ref(), cfg).stats;
        t.row(vec![
            base.to_string(),
            cap.to_string(),
            s.cycles.to_string(),
            s.tx_aborted.to_string(),
            s.max_retries.to_string(),
            s.fallback_commits.to_string(),
        ]);
    }
    t
}

/// Conflict-resolution policy ablation: requester-wins (ASF/the paper) vs
/// victim-wins, under the 4-sub-block detector.
pub fn policy_ablation(scale: Scale, seed: u64) -> Table {
    use asf_machine::machine::ResolutionPolicy;
    let mut t = Table::new(
        "Extension: conflict resolution policy (sub-block 4)",
        &["benchmark", "policy", "cycles", "conflicts", "aborts", "commits"],
    );
    for bench in ["vacation", "intruder", "kmeans"] {
        for policy in [ResolutionPolicy::RequesterWins, ResolutionPolicy::VictimWins] {
            let w = asf_workloads::by_name(bench, scale).expect("known benchmark");
            let mut cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed);
            cfg.resolution = policy;
            let s = Machine::run(w.as_ref(), cfg).stats;
            t.row(vec![
                bench.to_string(),
                format!("{policy:?}"),
                s.cycles.to_string(),
                s.conflicts.total().to_string(),
                s.tx_aborted.to_string(),
                s.tx_committed.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn scaling_rows_and_monotone_gain() {
        let t = scaling(Scale::Small, 5);
        assert_eq!(t.len(), 6);
        // Per benchmark, the sb4 gain at 8 cores exceeds the gain at 2
        // (false sharing grows with parallelism).
        let gain = |row: &Vec<String>| -> f64 {
            row[3].trim_end_matches('%').parse().unwrap()
        };
        let rows = t.rows();
        assert!(gain(&rows[2]) >= gain(&rows[0]) - 5.0, "vacation scaling trend");
        assert!(gain(&rows[5]) >= gain(&rows[3]) - 5.0, "ssca2 scaling trend");
    }

    #[test]
    fn backoff_sweep_has_three_policies() {
        let t = backoff_sweep(Scale::Small, 5);
        assert_eq!(t.len(), 3);
        // The tiny window thrashes: most aborts of the three.
        let aborts: Vec<u64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(aborts[0] > aborts[1], "tiny backoff must thrash: {aborts:?}");
    }

    #[test]
    fn policy_ablation_is_serializable_both_ways() {
        let t = policy_ablation(Scale::Small, 5);
        assert_eq!(t.len(), 6);
        // Commits equal for both policies of the same benchmark.
        for pair in t.rows().chunks(2) {
            assert_eq!(pair[0][5], pair[1][5], "commit counts must match");
        }
    }
}

// ---------------------------------------------------------------------
// Terminal charts (the paper's figures are bar charts)
// ---------------------------------------------------------------------

/// Figure 1 as a terminal bar chart.
pub fn fig1_chart(m: &Matrix) -> asf_stats::chart::BarChart {
    let mut c = asf_stats::chart::BarChart::new(
        "Figure 1: false conflict rate, baseline ASF (%)",
        "%",
    );
    c.max = Some(100.0);
    for b in m.benches() {
        let rate = m
            .stats(&b, DetectorKind::Baseline)
            .and_then(|s| s.conflicts.false_rate())
            .unwrap_or(0.0);
        c.bar(b, rate * 100.0);
    }
    c
}

/// Figure 8's sub-block-4 column as a terminal bar chart.
pub fn fig8_chart(m: &Matrix) -> asf_stats::chart::BarChart {
    let mut c = asf_stats::chart::BarChart::new(
        "Figure 8: false conflict reduction at 4 sub-blocks (%)",
        "%",
    );
    c.max = Some(100.0);
    for b in m.benches() {
        let red = m
            .stats(&b, DetectorKind::Baseline)
            .zip(m.stats(&b, DetectorKind::SubBlock(4)))
            .and_then(|(base, sb4)| sb4.conflicts.false_reduction_vs(&base.conflicts))
            .unwrap_or(0.0);
        c.bar(b, red * 100.0);
    }
    c
}

/// Figure 10 as a terminal bar chart (sb4 series).
pub fn fig10_chart(m: &Matrix) -> asf_stats::chart::BarChart {
    let mut c = asf_stats::chart::BarChart::new(
        "Figure 10: execution time improvement at 4 sub-blocks (%)",
        "%",
    );
    for b in m.benches() {
        let v = m
            .stats(&b, DetectorKind::Baseline)
            .zip(m.stats(&b, DetectorKind::SubBlock(4)))
            .map(|(base, sb4)| sb4.speedup_vs(base))
            .unwrap_or(0.0);
        c.bar(b, v * 100.0);
    }
    c
}

#[cfg(test)]
mod chart_tests {
    use super::*;

    #[test]
    fn charts_cover_all_benchmarks() {
        let m = Matrix::compute(
            &["ssca2", "utilitymine"],
            &DetectorKind::paper_set(),
            Scale::Small,
            &[3],
        );
        for chart in [fig1_chart(&m), fig8_chart(&m), fig10_chart(&m)] {
            assert_eq!(chart.len(), 2);
            assert!(!chart.render(40).is_empty());
        }
    }
}

/// The excluded-benchmark demonstration: why yada cannot run under
/// best-effort ASF — nearly every transaction capacity-aborts and falls
/// back to the global lock (the paper's stated reason for dropping yada
/// and hmm, reproduced as a measurement).
pub fn excluded(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Excluded benchmarks under baseline ASF (why the paper drops them)",
        &["benchmark", "footprint (lines/txn)", "capacity aborts", "fallback commits", "of commits"],
    );
    let mut row = |name: &str, footprint: usize, w: &dyn asf_machine::txprog::Workload| {
        let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
        cfg.max_retries = 4;
        let s = Machine::run(w, cfg).stats;
        t.row(vec![
            name.to_string(),
            footprint.to_string(),
            s.aborts_by_cause[2].to_string(),
            s.fallback_commits.to_string(),
            pct(s.fallback_commits as f64 / s.tx_committed.max(1) as f64),
        ]);
    };
    let yada = asf_workloads::excluded::Yada::new(scale);
    row("yada (scattered cavity vs 2-way sets)", yada.cavity_lines(), &yada);
    let hmm = asf_workloads::excluded::Hmm::new(scale);
    row("hmm (slice exceeds whole L1)", hmm.slice_lines(), &hmm);
    t
}

/// The bayes exclusion, demonstrated: committed-transaction counts across
/// five seeds. The spread is what "non-deterministic finishing conditions"
/// means in practice — per-run comparisons would be meaningless.
pub fn excluded_bayes(scale: Scale, seed: u64) -> Table {
    let w = asf_workloads::excluded::Bayes::new(scale);
    let mut t = Table::new(
        "Excluded: bayes — committed transactions per seed (non-deterministic termination)",
        &["seed", "committed txns", "cycles"],
    );
    for i in 0..5 {
        let s = Machine::run(&w, SimConfig::paper_seeded(DetectorKind::Baseline, seed + i)).stats;
        t.row(vec![
            format!("{:#x}", seed + i),
            s.tx_committed.to_string(),
            s.cycles.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod excluded_tests {
    use super::*;

    #[test]
    fn excluded_table_shows_fallback_dominance() {
        let t = excluded(Scale::Small, 3);
        assert_eq!(t.len(), 2);
        for row in t.rows() {
            let fallback_share: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(
                fallback_share > 60.0,
                "{} must be fallback-dominated: {fallback_share}%",
                row[0]
            );
        }
    }
}

/// Related-work comparison (paper §II): DPTM-style WAR speculation with
/// commit-time value validation versus the paper's sub-blocking, on the
/// whole suite. Demonstrates the paper's two criticisms: such schemes only
/// remove WAR false conflicts (RAW-heavy benchmarks barely move), and they
/// trade eager detection for commit-time validation aborts.
pub fn related_work(scale: Scale, seed: u64) -> Table {
    let mut t = Table::new(
        "Related work: DPTM-style WAR speculation vs sub-blocking",
        &[
            "benchmark",
            "baseline aborts",
            "dptm aborts",
            "dptm gain",
            "sb4 aborts",
            "sb4 gain",
            "WAR specs",
            "validation aborts",
        ],
    );
    for w in asf_workloads::all(scale) {
        let base = {
            let cfg = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
            Machine::run(w.as_ref(), cfg).stats
        };
        let dptm = {
            let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
            cfg.war_speculation = true;
            Machine::run(w.as_ref(), cfg).stats
        };
        let sb4 = {
            let cfg = SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed);
            Machine::run(w.as_ref(), cfg).stats
        };
        t.row(vec![
            w.name().to_string(),
            base.tx_aborted.to_string(),
            dptm.tx_aborted.to_string(),
            pct(dptm.speedup_vs(&base)),
            sb4.tx_aborted.to_string(),
            pct(sb4.speedup_vs(&base)),
            dptm.war_speculations.to_string(),
            dptm.aborts_by_cause[5].to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod related_tests {
    use super::*;

    #[test]
    fn related_work_table_shape() {
        let t = related_work(Scale::Small, 9);
        assert_eq!(t.len(), 10);
        // vacation (WAR-dominant) must show substantial WAR speculations.
        let vac = t.rows().iter().find(|r| r[0] == "vacation").unwrap();
        let specs: u64 = vac[6].parse().unwrap();
        assert!(specs > 0, "vacation should speculate through WARs");
    }
}

/// Per-benchmark deep-dive profile: abort causes, retry distribution,
/// memory behaviour and hot lines for one benchmark under one detector
/// (`asf-repro profile` prints baseline and sb4 side by side).
pub fn profile(bench: &str, scale: Scale, seed: u64) -> Result<Table, HarnessError> {
    let mut t = Table::new(
        format!("Profile: {bench}"),
        &["metric", "baseline", "sb4"],
    );
    let run = |detector| crate::matrix::run_one(bench, detector, scale, seed);
    let base = run(DetectorKind::Baseline)?;
    let sb4 = run(DetectorKind::SubBlock(4))?;
    let mut row = |name: &str, f: &dyn Fn(&asf_stats::run::RunStats) -> String| {
        t.row(vec![name.to_string(), f(&base), f(&sb4)]);
    };
    row("cycles", &|s| s.cycles.to_string());
    row("transactions", &|s| s.tx_started.to_string());
    row("attempts", &|s| s.tx_attempts.to_string());
    row("abort ratio", &|s| pct(s.abort_ratio()));
    row("conflicts (false/true)", &|s| {
        format!("{}/{}", s.conflicts.false_total(), s.conflicts.true_total())
    });
    row("aborts: conflict-true", &|s| s.aborts_by_cause[0].to_string());
    row("aborts: conflict-false", &|s| s.aborts_by_cause[1].to_string());
    row("aborts: capacity", &|s| s.aborts_by_cause[2].to_string());
    row("aborts: user", &|s| s.aborts_by_cause[3].to_string());
    row("mean retries/commit", &|s| format!("{:.2}", s.mean_retries()));
    row("max retries", &|s| s.max_retries.to_string());
    row("backoff cycles", &|s| s.backoff_cycles.to_string());
    row("L1 hit rate", &|s| {
        pct(s.l1_hits as f64 / (s.l1_hits + s.l1_misses).max(1) as f64)
    });
    row("probes", &|s| s.probes.to_string());
    row("dirty refetches", &|s| s.dirty_refetches.to_string());
    row("distinct false-conflict lines", &|s| s.false_by_line.distinct_lines().to_string());
    row("top-4 line concentration", &|s| pct(s.false_by_line.concentration(4)));
    Ok(t)
}

/// Seed-to-seed variance of the headline metrics — quantifies the paper's
/// labyrinth variance remark across the whole suite.
pub fn variance(scale: Scale, seed: u64, runs: usize) -> Table {
    let mut t = Table::new(
        format!("Variance across {runs} seeds (baseline ASF)"),
        &["benchmark", "conflicts mean±sd", "false rate mean±sd", "cycles cv"],
    );
    let mean_sd = |xs: &[f64]| {
        let n = xs.len().max(1) as f64;
        let m = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        (m, var.sqrt())
    };
    for w in asf_workloads::all(scale) {
        let mut conflicts = Vec::new();
        let mut rates = Vec::new();
        let mut cycles = Vec::new();
        for i in 0..runs {
            let s = Machine::run(
                w.as_ref(),
                SimConfig::paper_seeded(DetectorKind::Baseline, seed + i as u64),
            )
            .stats;
            conflicts.push(s.conflicts.total() as f64);
            rates.push(s.conflicts.false_rate().unwrap_or(0.0));
            cycles.push(s.cycles as f64);
        }
        let (cm, cs) = mean_sd(&conflicts);
        let (rm, rs) = mean_sd(&rates);
        let (ym, ys) = mean_sd(&cycles);
        t.row(vec![
            w.name().to_string(),
            format!("{cm:.0}±{cs:.0}"),
            format!("{:.1}%±{:.1}", rm * 100.0, rs * 100.0),
            format!("{:.3}", ys / ym.max(1.0)),
        ]);
    }
    t
}

#[cfg(test)]
mod profile_tests {
    use super::*;

    #[test]
    fn profile_has_both_columns() {
        let t = profile("ssca2", Scale::Small, 3).unwrap();
        assert!(t.len() >= 15);
        assert_eq!(t.header(), &["metric", "baseline", "sb4"]);
        assert!(matches!(
            profile("no-such", Scale::Small, 3),
            Err(HarnessError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn variance_covers_the_suite() {
        let t = variance(Scale::Small, 3, 2);
        assert_eq!(t.len(), 10);
    }
}

/// Adaptive sub-blocking (future-work extension): promote a line to fine
/// tracking only after it exhibits false conflicts. Reports each
/// benchmark's false-conflict reduction and the state-bit budget actually
/// spent, versus uniformly fine sub-blocking.
pub fn adaptive(scale: Scale, seed: u64) -> Table {
    use asf_machine::machine::AdaptiveConfig;
    let l1_lines = MachineConfig::opteron_8core().l1.lines();
    let fine_bits_per_line = 2 * AdaptiveConfig::standard().fine;
    let uniform_bits = l1_lines * fine_bits_per_line;
    let mut t = Table::new(
        "Extension: adaptive sub-blocking (promote after 2 false conflicts, fine = 8)",
        &[
            "benchmark",
            "baseline false",
            "sb8 reduction",
            "adaptive reduction",
            "promoted lines",
            "state bits vs uniform sb8",
        ],
    );
    for w in asf_workloads::all(scale) {
        let base = Machine::run(w.as_ref(), SimConfig::paper_seeded(DetectorKind::Baseline, seed));
        let sb8 = Machine::run(
            w.as_ref(),
            SimConfig::paper_seeded(DetectorKind::SubBlock(8), seed),
        );
        let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
        cfg.adaptive = Some(AdaptiveConfig::standard());
        let ad = Machine::run(w.as_ref(), cfg);
        // Storage: cold lines keep 2 bits; promoted lines carry fine bits
        // (predictor-table cost ignored on both sides of the comparison).
        let adaptive_bits =
            (l1_lines - ad.promoted_lines.min(l1_lines)) * 2
                + ad.promoted_lines.min(l1_lines) * fine_bits_per_line;
        t.row(vec![
            w.name().to_string(),
            base.stats.conflicts.false_total().to_string(),
            pct_opt(sb8.stats.conflicts.false_reduction_vs(&base.stats.conflicts)),
            pct_opt(ad.stats.conflicts.false_reduction_vs(&base.stats.conflicts)),
            ad.promoted_lines.to_string(),
            pct(adaptive_bits as f64 / uniform_bits as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;

    #[test]
    fn adaptive_table_shows_cheap_storage() {
        let t = adaptive(Scale::Small, 11);
        assert_eq!(t.len(), 10);
        for row in t.rows() {
            let bits: f64 = row[5].trim_end_matches('%').parse().unwrap();
            assert!(bits < 50.0, "{}: adaptive must stay far below uniform, got {bits}%", row[0]);
        }
    }
}

/// Coherence-fabric comparison: broadcast snooping (the paper's setting)
/// vs a conservative probe filter ("HT Assist"-style). Outcomes are
/// identical by construction (verified in `tests/fabric_equivalence.rs`);
/// the table reports the probe traffic the filter saves — context for the
/// paper's "piggy-back bits are negligible" overhead argument.
pub fn fabric(scale: Scale, seed: u64) -> Table {
    use asf_machine::machine::FabricKind;
    let mut t = Table::new(
        "Extension: probe traffic, broadcast vs probe filter (baseline ASF)",
        &["benchmark", "probes", "targets (broadcast)", "targets (filter)", "saved"],
    );
    for w in asf_workloads::all(scale) {
        let run = |fabric| {
            let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
            cfg.fabric = fabric;
            Machine::run(w.as_ref(), cfg).stats
        };
        let b = run(FabricKind::Broadcast);
        let f = run(FabricKind::ProbeFilter);
        t.row(vec![
            w.name().to_string(),
            b.probes.to_string(),
            b.probe_targets.to_string(),
            f.probe_targets.to_string(),
            pct(1.0 - f.probe_targets as f64 / b.probe_targets.max(1) as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod fabric_tests {
    use super::*;

    #[test]
    fn fabric_table_reports_savings() {
        let t = fabric(Scale::Small, 13);
        assert_eq!(t.len(), 10);
        for row in t.rows() {
            let saved: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(saved >= 0.0, "{}: filter never costs targets", row[0]);
        }
    }
}

/// One-screen dashboard: the headline numbers plus the suite averages of
/// every evaluation figure.
pub fn summary(m: &Matrix) -> Table {
    let mut t = Table::new(
        "Summary: suite averages (3-seed aggregate)",
        &["metric", "paper", "measured"],
    );
    let benches = m.benches();
    let n = benches.len().max(1) as f64;
    let avg = |f: &dyn Fn(&str) -> f64| benches.iter().map(|b| f(b)).sum::<f64>() / n;
    // Failed cells contribute zero to the averages — the summary is a
    // partial-result view like every other table.
    let false_rate = avg(&|b: &str| {
        m.stats(b, DetectorKind::Baseline)
            .and_then(|s| s.conflicts.false_rate())
            .unwrap_or(0.0)
    });
    let vs_base = |b: &str, d: DetectorKind| {
        Some((m.stats(b, d)?, m.stats(b, DetectorKind::Baseline)?))
    };
    let sb4_false_red = avg(&|b: &str| {
        vs_base(b, DetectorKind::SubBlock(4))
            .and_then(|(s, base)| s.conflicts.false_reduction_vs(&base.conflicts))
            .unwrap_or(0.0)
    });
    let sb4_total_red = avg(&|b: &str| {
        vs_base(b, DetectorKind::SubBlock(4))
            .and_then(|(s, base)| s.conflicts.total_reduction_vs(&base.conflicts))
            .unwrap_or(0.0)
    });
    let sb4_speedup = avg(&|b: &str| {
        vs_base(b, DetectorKind::SubBlock(4))
            .map(|(s, base)| s.speedup_vs(base))
            .unwrap_or(0.0)
    });
    let perfect_speedup = avg(&|b: &str| {
        vs_base(b, DetectorKind::Perfect)
            .map(|(s, base)| s.speedup_vs(base))
            .unwrap_or(0.0)
    });
    t.row(vec!["false conflict rate (baseline)".into(), "≈46%".into(), pct(false_rate)]);
    t.row(vec!["false conflicts removed at sb4".into(), "56.4%".into(), pct(sb4_false_red)]);
    t.row(vec!["all conflicts removed at sb4".into(), "31.3%".into(), pct(sb4_total_red)]);
    t.row(vec!["execution-time gain at sb4".into(), "up to ~30%".into(), pct(sb4_speedup)]);
    t.row(vec!["execution-time gain, perfect bound".into(), "—".into(), pct(perfect_speedup)]);
    t.row(vec![
        "hardware overhead at sb4".into(),
        "1.17% of L1".into(),
        "1.17% of L1 (exact)".into(),
    ]);
    t
}

#[cfg(test)]
mod summary_tests {
    use super::*;

    #[test]
    fn summary_has_six_rows() {
        let m = Matrix::compute(
            &["ssca2", "vacation"],
            &DetectorKind::paper_set(),
            Scale::Small,
            &[2],
        );
        let t = summary(&m);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rows()[1][1], "56.4%");
    }
}

/// Signature-based detection (LogTM-SE style, paper §II) versus the
/// paper's approaches, swept over filter sizes: signatures trade ASF's
/// capacity aborts for alias-induced false conflicts and stay
/// line-granular, so intra-line false sharing remains — sub-blocking and
/// signatures attack *different* false-conflict sources.
pub fn signatures(scale: Scale, seed: u64) -> Table {
    use asf_machine::machine::SignatureConfig;
    let mut t = Table::new(
        "Related work: Bloom-signature detection (LogTM-SE style)",
        &[
            "benchmark",
            "baseline false",
            "sig64 false (alias)",
            "sig256 false (alias)",
            "sig1024 false (alias)",
            "sb4 false",
        ],
    );
    let row = |name: String,
               w: &dyn asf_machine::txprog::Workload,
               t: &mut Table| {
        let base = Machine::run(w, SimConfig::paper_seeded(DetectorKind::Baseline, seed)).stats;
        let sb4 = Machine::run(w, SimConfig::paper_seeded(DetectorKind::SubBlock(4), seed)).stats;
        let sig = |bits: usize| {
            let mut cfg = SimConfig::paper_seeded(DetectorKind::Baseline, seed);
            cfg.signatures = Some(SignatureConfig { bits, hashes: 4 });
            cfg.max_retries = 32;
            let s = Machine::run(w, cfg).stats;
            format!("{} ({})", s.conflicts.false_total(), s.sig_alias_conflicts)
        };
        t.row(vec![
            name,
            base.conflicts.false_total().to_string(),
            sig(64),
            sig(256),
            sig(1024),
            sb4.conflicts.false_total().to_string(),
        ]);
    };
    for w in asf_workloads::all(scale) {
        row(w.name().to_string(), w.as_ref(), &mut t);
    }
    // yada: the workload signatures exist for — unbounded footprints.
    let yada = asf_workloads::excluded::Yada::new(scale);
    row("yada (160-line cavities)".into(), &yada, &mut t);
    t
}

// ---------------------------------------------------------------------
// Fault-injection grid (the robustness experiment)
// ---------------------------------------------------------------------

/// The fault-pressure profiles `asf-repro faults` sweeps, mildest first.
pub fn fault_pressures() -> Vec<(&'static str, asf_machine::fault::FaultPlan)> {
    use asf_machine::fault::FaultPlan;
    vec![
        ("none", FaultPlan::none()),
        ("light", FaultPlan::light()),
        ("heavy", FaultPlan::heavy()),
        ("max-spurious", FaultPlan::max_spurious()),
    ]
}

/// `asf-repro faults` — deterministic fault-injection grid: every pressure
/// profile × {baseline, sb4, perfect} on the representative benchmarks,
/// then a maximal-spurious-pressure sweep over the *whole* suite. Each run
/// is checked against the forward-progress contract — every started
/// transaction commits (hardware or fallback) and isolation holds; a
/// violation aborts the experiment with
/// [`HarnessError::ProgressViolation`]. The returned table shows how much
/// noise was injected and what it cost.
pub fn faults(scale: Scale, seed: u64) -> Result<Table, HarnessError> {
    let detectors =
        [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect];
    let mut t = Table::new(
        "Fault grid: injected pressure × detector (all runs must keep the forward-progress contract)",
        &[
            "benchmark",
            "detector",
            "pressure",
            "injected",
            "committed/started",
            "fallback",
            "aborts",
            "cycles",
        ],
    );
    let run = |bench: &str,
               det: DetectorKind,
               plan: asf_machine::fault::FaultPlan|
     -> Result<asf_stats::run::RunStats, HarnessError> {
        let w = asf_workloads::by_name(bench, scale)
            .ok_or_else(|| HarnessError::UnknownBenchmark(bench.to_string()))?;
        let mut cfg = SimConfig::paper_seeded(det, seed);
        cfg.faults = plan;
        let stats = Machine::try_run(w.as_ref(), cfg)
            .map_err(|e| {
                HarnessError::ProgressViolation(format!("{bench}/{}: {e}", det.label()))
            })?
            .stats;
        if stats.tx_committed != stats.tx_started || stats.isolation_violations != 0 {
            return Err(HarnessError::ProgressViolation(format!(
                "{bench}/{}: committed {}/{} transactions, {} isolation violations",
                det.label(),
                stats.tx_committed,
                stats.tx_started,
                stats.isolation_violations
            )));
        }
        Ok(stats)
    };
    for &b in REPRESENTATIVE.iter() {
        for &det in &detectors {
            for (label, plan) in fault_pressures() {
                let s = run(b, det, plan)?;
                t.row(vec![
                    b.to_string(),
                    det.label(),
                    label.to_string(),
                    s.faults.injected_total().to_string(),
                    format!("{}/{}", s.tx_committed, s.tx_started),
                    s.fallback_commits.to_string(),
                    s.tx_aborted.to_string(),
                    s.cycles.to_string(),
                ]);
            }
        }
    }
    // The acceptance sweep: under maximal spurious pressure no transaction
    // can ever commit in hardware, so the backoff → fallback chain alone
    // must carry every workload in the suite to completion.
    let max = asf_machine::fault::FaultPlan::max_spurious();
    let mut suite_commits = 0u64;
    for w in asf_workloads::all(scale) {
        let s = run(w.name(), DetectorKind::SubBlock(4), max)?;
        suite_commits += s.tx_committed;
    }
    t.row(vec![
        "suite (all 10)".into(),
        "sb4".into(),
        "max-spurious".into(),
        String::new(),
        format!("{suite_commits}/{suite_commits}"),
        String::new(),
        String::new(),
        String::new(),
    ]);
    Ok(t)
}

#[cfg(test)]
mod fault_grid_tests {
    use super::*;

    #[test]
    fn fault_grid_upholds_forward_progress() {
        let t = faults(Scale::Small, 21).expect("no progress violations");
        // 4 representative benches × 3 detectors × 4 pressures + suite row.
        assert_eq!(t.len(), 4 * 3 * 4 + 1);
        // Zero-pressure rows inject nothing; max-spurious rows inject and
        // push every commit through the fallback path.
        for row in t.rows().iter().filter(|r| r[2] == "none") {
            assert_eq!(row[3], "0", "{row:?}");
        }
        for row in t.rows().iter().filter(|r| r[2] == "max-spurious" && r[0] != "suite (all 10)") {
            assert_ne!(row[3], "0", "{row:?}");
            let (committed, fallback) = (&row[4], &row[5]);
            let committed: u64 =
                committed.split('/').next().unwrap().parse().unwrap();
            assert_eq!(fallback.parse::<u64>().unwrap(), committed, "{row:?}");
        }
    }
}

#[cfg(test)]
mod signature_tests {
    use super::*;

    #[test]
    fn signature_table_shape() {
        let t = signatures(Scale::Small, 19);
        assert_eq!(t.len(), 11);
        // yada's dense filters must alias at 64 bits.
        let yada = t.rows().last().unwrap();
        let aliases: u64 = yada[2]
            .split('(')
            .nth(1)
            .unwrap()
            .trim_end_matches(')')
            .parse()
            .unwrap();
        assert!(aliases > 0, "64-bit filters must alias on yada: {yada:?}");
    }
}
