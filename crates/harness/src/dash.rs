//! `asf-repro dash` — a read-only terminal dashboard over the service's
//! observability surface (DESIGN.md §18).
//!
//! Two modes, one renderer:
//!
//! * **online** — poll a live `asf-serve` instance's `/v1/healthz` and
//!   `/v1/metrics/prometheus` endpoints a few times and render request
//!   totals by endpoint, histogram-derived latency quantiles, cache
//!   events and health/uptime as tables and [`BarChart`]s. Strictly
//!   read-only: both endpoints are snapshots, so watching a server never
//!   perturbs it.
//! * **offline** — no server needed: diff the append-only round sections
//!   of a committed `BENCH_perf.json` (`history`, `scale_rounds`,
//!   `serve_rounds`) into one trajectory table, each round against its
//!   predecessor in the same section. This is the CI mode (`asf-repro
//!   dash --offline`), pinned against the checked-in report.

use asf_stats::chart::BarChart;
use asf_stats::json::{self, JsonValue};
use asf_stats::openmetrics::{parse_exposition, Exposition};
use asf_stats::table::Table;

/// Any JSON number as `f64` (the dumb scanners keep integers exact; the
/// dashboard only renders).
fn num(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Int(n) => Some(*n as f64),
        JsonValue::Num(f) => Some(*f),
        _ => None,
    }
}

/// Signed percent change `prev → cur`, rendered with its sign.
fn delta_pct(prev: f64, cur: f64) -> String {
    if prev <= 0.0 {
        return "-".to_string();
    }
    format!("{:+.1}%", (cur - prev) / prev * 100.0)
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..s.char_indices().take(max).last().map(|(i, c)| i + c.len_utf8()).unwrap_or(0)])
    }
}

/// One row of the trajectory: a round of some section with its headline
/// number.
struct TrajectoryRow {
    section: &'static str,
    round: u64,
    subject: String,
    metric: &'static str,
    value: f64,
}

/// Pull `(round, subject, headline)` rows out of one section array.
fn section_rows(
    root: &JsonValue,
    key: &str,
    section: &'static str,
    metric: &'static str,
    headline: impl Fn(&JsonValue) -> Option<f64>,
) -> Vec<TrajectoryRow> {
    let Some(arr) = root.get(key).and_then(|v| v.as_arr().ok().map(<[JsonValue]>::to_vec)) else {
        return Vec::new();
    };
    arr.iter()
        .filter_map(|entry| {
            Some(TrajectoryRow {
                section,
                round: entry.get("round").and_then(|v| v.as_u64().ok())?,
                subject: entry
                    .get("git_subject")
                    .and_then(|v| v.as_str().ok())
                    .unwrap_or("?")
                    .to_string(),
                metric,
                value: headline(entry)?,
            })
        })
        .collect()
}

/// The best (maximum) `macc_per_sec` across a scale round's curve.
fn scale_headline(entry: &JsonValue) -> Option<f64> {
    entry
        .get("curve")?
        .as_arr()
        .ok()?
        .iter()
        .filter_map(|point| point.get("macc_per_sec").and_then(num))
        .fold(None, |best: Option<f64>, v| Some(best.map_or(v, |b| b.max(v))))
}

/// Diff every round section of a `BENCH_perf.json` document into one
/// trajectory table: each round's headline number next to the change
/// against the *previous round of the same section*.
pub fn trajectory_table(json: &str) -> Result<Table, String> {
    let root = json::parse(json).map_err(|e| format!("BENCH_perf.json does not parse: {e}"))?;
    let mut rows: Vec<TrajectoryRow> = Vec::new();
    rows.extend(section_rows(&root, "history", "perf", "wall_ms", |e| {
        e.get("total_wall_ms").and_then(num)
    }));
    rows.extend(section_rows(&root, "scale_rounds", "scale", "macc/s", scale_headline));
    rows.extend(section_rows(&root, "serve_rounds", "serve", "speedup", |e| {
        e.get("measure").and_then(|m| m.get("speedup")).and_then(num)
    }));
    if rows.is_empty() {
        return Err("no history, scale_rounds or serve_rounds section found".to_string());
    }
    let mut t = Table::new(
        "dash — BENCH_perf.json trajectory (each round vs its section predecessor)",
        &["section", "round", "metric", "value", "delta", "git subject"],
    );
    let mut prev: Option<(&'static str, f64)> = None;
    for row in &rows {
        let delta = match prev {
            Some((section, value)) if section == row.section => delta_pct(value, row.value),
            _ => "-".to_string(),
        };
        prev = Some((row.section, row.value));
        t.row(vec![
            row.section.to_string(),
            row.round.to_string(),
            row.metric.to_string(),
            format!("{:.1}", row.value),
            delta,
            truncate(&row.subject, 48),
        ]);
    }
    Ok(t)
}

/// Per-round wall-time chart for the perf section (lower is better).
pub fn perf_chart(json: &str) -> Result<BarChart, String> {
    let root = json::parse(json).map_err(|e| format!("BENCH_perf.json does not parse: {e}"))?;
    let mut chart = BarChart::new("perf rounds — total wall ms (lower is better)", " ms");
    for row in section_rows(&root, "history", "perf", "wall_ms", |e| {
        e.get("total_wall_ms").and_then(num)
    }) {
        chart.bar(format!("round {}", row.round), row.value);
    }
    if chart.is_empty() {
        return Err("no perf history rounds to chart".to_string());
    }
    Ok(chart)
}

/// Serve-round detail: the cache/latency numbers each load-test round
/// recorded, including the histogram-derived percentiles once present.
pub fn serve_rounds_table(json: &str) -> Result<Table, String> {
    let root = json::parse(json).map_err(|e| format!("BENCH_perf.json does not parse: {e}"))?;
    let arr = root
        .get("serve_rounds")
        .and_then(|v| v.as_arr().ok().map(<[JsonValue]>::to_vec))
        .unwrap_or_default();
    let mut t = Table::new(
        "dash — serve rounds (sampled vs histogram-derived latency)",
        &["round", "requests", "hit rate", "p50 (us)", "p99 (us)", "h50 (us)", "h99 (us)", "speedup"],
    );
    let field = |m: &JsonValue, key: &str| -> String {
        m.get(key).and_then(num).map_or("-".to_string(), |v| format!("{v:.1}"))
    };
    for entry in &arr {
        let Some(m) = entry.get("measure") else { continue };
        t.row(vec![
            entry.get("round").and_then(|v| v.as_u64().ok()).unwrap_or(0).to_string(),
            field(m, "requests"),
            field(m, "hit_rate"),
            field(m, "p50_us"),
            field(m, "p99_us"),
            field(m, "hist_p50_us"),
            field(m, "hist_p99_us"),
            field(m, "speedup"),
        ]);
    }
    Ok(t)
}

/// Render the full offline dashboard from a `BENCH_perf.json` document.
pub fn offline(json: &str) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(&trajectory_table(json)?.render());
    out.push('\n');
    out.push_str(&perf_chart(json)?.render(48));
    out.push('\n');
    out.push_str(&serve_rounds_table(json)?.render());
    Ok(out)
}

/// One polled snapshot of a live server.
pub struct DashSample {
    /// Parsed `/v1/metrics/prometheus` exposition.
    pub exposition: Exposition,
    /// `uptime_ms` from `/v1/healthz`.
    pub uptime_ms: u64,
    /// `flight_dumps` from `/v1/healthz`.
    pub flight_dumps: u64,
    /// `version` from `/v1/healthz`.
    pub version: String,
    /// `ok` from `/v1/healthz`.
    pub ok: bool,
}

/// Scrape both observability endpoints once.
pub fn poll(client: &mut asf_serve::http::Client) -> Result<DashSample, String> {
    let health = client.get("/v1/healthz").map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 {
        return Err(format!("healthz status {}", health.status));
    }
    let health_text = health.text();
    let root = json::parse(&health_text).map_err(|e| format!("healthz parse: {e}"))?;
    let metrics = client
        .get("/v1/metrics/prometheus")
        .map_err(|e| format!("prometheus: {e}"))?;
    if metrics.status != 200 {
        return Err(format!("prometheus status {}", metrics.status));
    }
    let exposition = parse_exposition(&metrics.text())
        .map_err(|e| format!("prometheus output does not parse: {e}"))?;
    Ok(DashSample {
        exposition,
        uptime_ms: root.get("uptime_ms").and_then(|v| v.as_u64().ok()).unwrap_or(0),
        flight_dumps: root.get("flight_dumps").and_then(|v| v.as_u64().ok()).unwrap_or(0),
        version: root
            .get("version")
            .and_then(|v| v.as_str().ok())
            .unwrap_or("?")
            .to_string(),
        ok: matches!(root.get("ok"), Some(JsonValue::Bool(true))),
    })
}

/// Estimate a quantile from an exposition histogram's cumulative
/// `_bucket{le=...}` samples — the scrape-side mirror of
/// [`asf_stats::Histogram::quantile`], bracketing the true quantile from
/// above within one log2 bucket.
pub fn quantile_from_buckets(exposition: &Exposition, family: &str, q: f64) -> Option<f64> {
    let mut buckets: Vec<(f64, f64)> = exposition
        .samples
        .iter()
        .filter(|s| s.name == format!("{family}_bucket"))
        .filter_map(|s| {
            let le = s.labels.iter().find(|(k, _)| k == "le")?.1.parse::<f64>().ok()?;
            Some((le, s.value))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are comparable"));
    let total = buckets.last()?.1;
    if total <= 0.0 {
        return None;
    }
    let rank = (q.clamp(0.0, 1.0) * total).ceil().max(1.0);
    buckets.iter().find(|&&(_, cum)| cum >= rank).map(|&(le, _)| le)
}

/// Render the live dashboard from the latest sample (plus a request rate
/// derived from the first, when the caller polled more than once).
pub fn render_online(first: &DashSample, last: &DashSample) -> String {
    let mut out = String::new();
    let mut t = Table::new(
        "dash — asf-serve health",
        &["version", "ok", "uptime (s)", "flight dumps", "requests", "req/s (window)"],
    );
    let requests = last.exposition.sum("asf_http_requests_total");
    let window_ms = last.uptime_ms.saturating_sub(first.uptime_ms);
    let rate = if window_ms > 0 {
        let first_requests = first.exposition.sum("asf_http_requests_total");
        format!("{:.1}", (requests - first_requests) / (window_ms as f64 / 1000.0))
    } else {
        "-".to_string()
    };
    t.row(vec![
        last.version.clone(),
        last.ok.to_string(),
        format!("{:.1}", last.uptime_ms as f64 / 1000.0),
        last.flight_dumps.to_string(),
        format!("{requests:.0}"),
        rate,
    ]);
    out.push_str(&t.render());
    out.push('\n');

    let mut lat = Table::new(
        "dash — latency quantiles from the scraped log2 histograms (us)",
        &["series", "p50", "p90", "p99"],
    );
    for family in ["asf_http_request_duration_ns", "asf_job_e2e_ns", "asf_job_queue_wait_ns", "asf_job_execute_ns"] {
        let q = |q: f64| {
            quantile_from_buckets(&last.exposition, family, q)
                .map_or("-".to_string(), |ns| format!("{:.1}", ns / 1_000.0))
        };
        lat.row(vec![family.to_string(), q(0.50), q(0.90), q(0.99)]);
    }
    out.push_str(&lat.render());
    out.push('\n');

    let mut chart = BarChart::new("requests by endpoint", "");
    let mut by_endpoint: Vec<(String, f64)> = Vec::new();
    for s in &last.exposition.samples {
        if s.name != "asf_http_requests_total" {
            continue;
        }
        if let Some((_, endpoint)) = s.labels.iter().find(|(k, _)| k == "endpoint") {
            match by_endpoint.iter_mut().find(|(e, _)| e == endpoint) {
                Some((_, v)) => *v += s.value,
                None => by_endpoint.push((endpoint.clone(), s.value)),
            }
        }
    }
    by_endpoint.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("counts are finite"));
    for (endpoint, v) in &by_endpoint {
        chart.bar(endpoint.clone(), *v);
    }
    if !chart.is_empty() {
        out.push_str(&chart.render(48));
        out.push('\n');
    }

    let mut cache = Table::new("dash — cache events", &["kind", "count"]);
    for s in &last.exposition.samples {
        if s.name != "asf_cache_events_total" {
            continue;
        }
        if let Some((_, kind)) = s.labels.iter().find(|(k, _)| k == "kind") {
            cache.row(vec![kind.clone(), format!("{:.0}", s.value)]);
        }
    }
    out.push_str(&cache.render());
    out
}

/// Poll a live server `iterations` times, `interval_ms` apart, and render
/// the final dashboard.
pub fn online(addr: &str, iterations: usize, interval_ms: u64) -> Result<String, String> {
    let mut client =
        asf_serve::http::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let first = poll(&mut client)?;
    let mut last = None;
    for _ in 1..iterations.max(1) {
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        last = Some(poll(&mut client)?);
    }
    Ok(render_online(&first, last.as_ref().unwrap_or(&first)))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = r#"{
  "total_wall_ms": 100.0,
  "history": [
    {"round": 1, "git_subject": "first", "total_wall_ms": 200.0},
    {"round": 2, "git_subject": "second", "total_wall_ms": 100.0}
  ],
  "scale_rounds": [
    {"round": 1, "git_subject": "sweep", "curve": [
      {"cores": 64, "threads": 1, "macc_per_sec": 1.5},
      {"cores": 64, "threads": 2, "macc_per_sec": 1.8}
    ]}
  ],
  "serve_rounds": [
    {"round": 1, "git_subject": "serve", "measure":
      {"requests": 3072, "hit_rate": 0.12, "p50_us": 280.0, "p99_us": 29990.4,
       "hist_p50_us": 524.2, "hist_p99_us": 32768.0, "speedup": 183.7}}
  ]
}"#;

    #[test]
    fn trajectory_diffs_each_section_against_itself() {
        let rendered = trajectory_table(FIXTURE).expect("trajectory").render();
        // perf round 2 halves the wall time; scale/serve first rounds have
        // no predecessor, so their delta is "-".
        assert!(rendered.contains("-50.0%"), "{rendered}");
        assert!(rendered.contains("scale"), "{rendered}");
        assert!(rendered.contains("183.7"), "{rendered}");
    }

    #[test]
    fn scale_headline_is_curve_max() {
        let root = json::parse(FIXTURE).unwrap();
        let rows = section_rows(&root, "scale_rounds", "scale", "macc/s", scale_headline);
        assert_eq!(rows.len(), 1);
        assert!((rows[0].value - 1.8).abs() < 1e-9);
    }

    #[test]
    fn offline_renders_tables_and_chart() {
        let out = offline(FIXTURE).expect("offline dashboard");
        assert!(out.contains("trajectory"), "{out}");
        assert!(out.contains("round 2"), "{out}");
        assert!(out.contains("h50"), "{out}");
    }

    #[test]
    fn offline_rejects_empty_documents() {
        assert!(offline("{}").is_err());
        assert!(offline("not json").is_err());
    }

    #[test]
    fn committed_bench_report_drives_the_offline_dash() {
        // The checked-in BENCH_perf.json doubles as the CI fixture for
        // `asf-repro dash --offline`; keep it renderable.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json");
        let json = std::fs::read_to_string(path).expect("committed BENCH_perf.json");
        let out = offline(&json).expect("offline dashboard over committed report");
        assert!(out.contains("perf"), "{out}");
        assert!(out.contains("serve"), "{out}");
    }

    #[test]
    fn bucket_quantiles_come_from_cumulative_le() {
        let text = "# TYPE lat histogram\n\
                    lat_bucket{le=\"100\"} 5\n\
                    lat_bucket{le=\"200\"} 9\n\
                    lat_bucket{le=\"+Inf\"} 10\n\
                    lat_sum 1000\n\
                    lat_count 10\n\
                    # EOF\n";
        let exp = parse_exposition(text).expect("parses");
        assert_eq!(quantile_from_buckets(&exp, "lat", 0.5), Some(100.0));
        assert_eq!(quantile_from_buckets(&exp, "lat", 0.9), Some(200.0));
        assert_eq!(quantile_from_buckets(&exp, "lat", 1.0), Some(f64::INFINITY));
    }
}
