//! Append-only round sections co-tenanting `BENCH_perf.json`.
//!
//! The perf report is hand-rolled flat JSON read by dumb scanners
//! (`perf::parse_baseline`, `perf::parse_history`). Long-lived experiment
//! histories that share the file — `"scale_rounds"` (shard sweeps, DESIGN
//! §15) and `"serve_rounds"` (serve-layer load tests, DESIGN §16) — are
//! maintained by the textual surgery here rather than a JSON round-trip,
//! so a rewrite of one co-tenant preserves every other byte-for-byte. The
//! invariants that keep the co-tenants from corrupting each other:
//!
//! * a section is always emitted/inserted at the END of the document,
//!   after `total_wall_ms` and `history`, so first-occurrence scans keep
//!   hitting the perf grid's fields;
//! * entries never use the keys `bench`, `detector`, `cycles` or
//!   `history`;
//! * git subjects are sanitized of quotes, backslashes and brackets so
//!   the bracket-counting extractor stays sound.

/// Subjects are narrative: swap everything the dumb scanners cannot
/// round-trip (quotes, backslashes, and the brackets the section extractor
/// counts) for harmless lookalikes.
pub fn sanitize(s: &str) -> String {
    s.replace(['\\', '"'], "'").replace('[', "(").replace(']', ")")
}

/// Byte range of the `"<key>": [...]` section in a `BENCH_perf.json`, if
/// present (from the opening quote of the key to the closing `]`,
/// exclusive end one past it).
fn section_range(json: &str, key: &str) -> Option<(usize, usize)> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)?;
    let open = start + json[start..].find('[')?;
    let mut depth = 0usize;
    for (i, b) in json[open..].bytes().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, open + i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// The verbatim `"<key>": [...]` section text, if present.
pub fn extract_section<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    section_range(json, key).map(|(a, b)| &json[a..b])
}

/// The 1-based number the next round appended to `key` should carry.
pub fn next_round(json: &str, key: &str) -> u64 {
    extract_section(json, key)
        .map(|s| s.matches("\"round\":").count() as u64 + 1)
        .unwrap_or(1)
}

/// Insert `section` (a full `"<key>": [...]` text) before the final `}` of
/// `json`.
fn insert_section(json: &str, section: &str) -> String {
    let close = json.rfind('}').expect("a JSON object to splice into");
    let head = json[..close].trim_end();
    let comma = if head.ends_with('{') { "" } else { "," };
    format!("{head}{comma}\n  {section}\n}}\n")
}

/// Append one round entry to the `"<key>"` section of a `BENCH_perf.json`
/// document, creating the section (or, for an empty/absent file, a minimal
/// document) as needed. The rest of the document is preserved
/// byte-for-byte.
pub fn append_round(json: &str, key: &str, entry: &str) -> String {
    if json.trim().is_empty() {
        return format!("{{\n  \"{key}\": [\n    {entry}\n  ]\n}}\n");
    }
    match section_range(json, key) {
        Some((_, end)) => {
            // `end` is one past the section's closing `]`; splice the new
            // entry in front of it.
            let close = end - 1;
            let had_entries = json[..close].trim_end().ends_with('}');
            let sep = if had_entries { ",\n    " } else { "\n    " };
            format!("{}{sep}{entry}\n  {}", json[..close].trim_end(), &json[close..])
        }
        None => insert_section(json, &format!("\"{key}\": [\n    {entry}\n  ]")),
    }
}

/// Re-attach `old_json`'s `"<key>"` section to a freshly rendered perf
/// report (`new_json`), which never emits one itself. Returns `new_json`
/// unchanged when the old document had no such section.
pub fn carry_section(old_json: &str, new_json: &str, key: &str) -> String {
    match extract_section(old_json, key) {
        Some(section) if extract_section(new_json, key).is_none() => {
            insert_section(new_json, section)
        }
        _ => new_json.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sections_coexist_in_one_document() {
        let mut doc = append_round("", "scale_rounds", "{\"round\": 1, \"a\": [1, 2]}");
        doc = append_round(&doc, "serve_rounds", "{\"round\": 1, \"b\": 3}");
        doc = append_round(&doc, "scale_rounds", "{\"round\": 2, \"a\": []}");
        doc = append_round(&doc, "serve_rounds", "{\"round\": 2, \"b\": 4}");
        assert_eq!(next_round(&doc, "scale_rounds"), 3);
        assert_eq!(next_round(&doc, "serve_rounds"), 3);
        let scale = extract_section(&doc, "scale_rounds").unwrap();
        assert!(scale.contains("\"a\": [1, 2]") && !scale.contains("\"b\""));
        let serve = extract_section(&doc, "serve_rounds").unwrap();
        assert!(serve.contains("\"b\": 4") && !serve.contains("\"a\""));
        // A perf rewrite that drops both sections carries each back intact.
        let rewritten = "{\n  \"total_wall_ms\": 1.0\n}\n";
        let carried = carry_section(&doc, rewritten, "scale_rounds");
        let carried = carry_section(&doc, &carried, "serve_rounds");
        assert!(extract_section(&carried, "scale_rounds").is_some());
        assert!(extract_section(&carried, "serve_rounds").is_some());
        assert!(asf_stats::json::parse(&carried).is_ok(), "{carried}");
    }

    #[test]
    fn sanitize_defangs_scanner_hostile_bytes() {
        assert_eq!(sanitize("a \"b\" [c] \\d"), "a 'b' (c) 'd");
    }
}
