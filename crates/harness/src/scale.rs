//! `asf-repro scale` — shard-parallel scaling curves.
//!
//! Sweeps simulated-cores × worker-threads over a streaming workload
//! preset, running each cell through [`ShardEngine`] and reporting the
//! throughput curve: wall time, simulated accesses per second, speedup over
//! the single-threaded reference at the same core count, and the epoch
//! barrier's stall fraction. Every thread count at a given core count must
//! produce **bit-identical** `RunStats` — the sweep itself asserts this
//! (an A/B fence run on every invocation, not only in tests).
//!
//! Results append a round to the `"scale_rounds"` section of
//! `BENCH_perf.json`. The section lives *after* the perf grid's own fields
//! and uses none of the keys the perf baseline scanner looks for
//! (`bench`/`detector`/`cycles`/`history`), so the two reports share one
//! file without either scanner reading the other's numbers. `asf-repro
//! perf` rewrites the file wholesale; [`carry_scale_rounds`] re-attaches
//! the section across that rewrite.
//!
//! Honesty note: speedup > 1 needs real host cores. On a 1-vCPU runner the
//! worker threads time-slice one core and the curve is flat (or slightly
//! worse, barrier overhead being pure cost) — the numbers report what the
//! host actually did, never an extrapolation.

use crate::checkpoint::{job_key, Checkpoint};
use crate::error::HarnessError;
use asf_core::detector::DetectorKind;
use asf_machine::machine::SimConfig;
use asf_machine::shard::{ShardConfig, ShardEngine, ShardOutput};
use asf_machine::Workload;
use asf_stats::chrome::ChromeTraceWriter;
use asf_stats::table::Table;
use asf_workloads::streaming;
use std::time::{Duration, Instant};

/// Simulated-core counts of the default sweep (`--scale huge` tier).
pub const CORES_GRID: [usize; 3] = [64, 128, 256];
/// Worker-thread counts of the default sweep.
pub const THREADS_GRID: [usize; 3] = [1, 2, 4];
/// Detector the sweep runs under: the paper's preferred sub-blocking,
/// matching the perf grid's middle column.
pub const DETECTOR: DetectorKind = DetectorKind::SubBlock(8);

/// One timed (cores × threads) cell of the sweep.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Simulated cores.
    pub cores: usize,
    /// Worker threads that drove the shards.
    pub threads: usize,
    /// Wall time of the cell (zero when resumed from a checkpoint).
    pub wall: Duration,
    /// Simulated accesses (L1 hits + misses).
    pub accesses: u64,
    /// Simulated cycles (max over shards — the run's critical path).
    pub cycles: u64,
    /// Committed transactions.
    pub txns: u64,
    /// Epoch barriers resolved (zero when resumed).
    pub epochs: u64,
    /// Cross-shard probes delivered (zero when resumed).
    pub cross_probes: u64,
    /// Transactions aborted by cross-shard probes (zero when resumed).
    pub cross_aborts: u64,
    /// Barrier stall fraction (0..1; zero when resumed).
    pub stall: f64,
    /// True when the cell's stats came from a checkpoint, not a fresh run.
    /// Resumed cells still participate in the determinism cross-check but
    /// carry no timing.
    pub resumed: bool,
}

/// A completed scaling sweep.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// Streaming preset name (`mix`, `million`, …).
    pub preset: String,
    /// Master seed.
    pub seed: u64,
    /// Cells in (cores, threads) grid order.
    pub cells: Vec<ScaleCell>,
    /// Chrome-trace timelines of the fresh cells:
    /// `(artifact name, JSON document)`.
    pub timelines: Vec<(String, String)>,
}

fn accesses_of(stats: &asf_stats::run::RunStats) -> u64 {
    stats.l1_hits + stats.l1_misses
}

/// Run one (cores, threads) cell: a [`ShardEngine`] over the preset with
/// 16-core clusters and the huge-tier epoch length.
pub fn run_cell(
    preset: &streaming::StreamWorkload,
    cores: usize,
    threads: usize,
    seed: u64,
) -> Result<(ShardOutput, Duration), HarnessError> {
    let base = SimConfig::paper_seeded(DETECTOR, seed);
    let cfg = ShardConfig { worker_threads: threads, ..ShardConfig::huge(cores) };
    let start = Instant::now();
    let out = ShardEngine::new(preset, base, cfg).try_run().map_err(|e| {
        HarnessError::FailedCell {
            bench: format!("scale_{}_c{cores}_t{threads}", preset.name()),
            detector: DETECTOR.label(),
            error: e.to_string(),
        }
    })?;
    let wall = start.elapsed();
    Ok((out, wall))
}

/// The checkpoint key of one sweep cell.
pub fn cell_key(preset: &str, cores: usize, threads: usize, seed: u64) -> String {
    job_key(&format!("scale_{preset}_c{cores}_t{threads}"), "shard", seed)
}

/// Sweep `cores_grid × threads_grid` over the named preset. With a
/// checkpoint, completed cells are recorded as they finish and recorded
/// cells are skipped on resume (their simulated stats still enter the
/// determinism cross-check, so a resumed sweep re-verifies fresh runs
/// against the checkpointed reference).
pub fn sweep(
    preset_name: &str,
    seed: u64,
    cores_grid: &[usize],
    threads_grid: &[usize],
    mut checkpoint: Option<&mut Checkpoint>,
) -> Result<ScaleReport, HarnessError> {
    let preset = streaming::by_name(preset_name)
        .ok_or_else(|| HarnessError::UnknownBenchmark(format!("streaming preset {preset_name}")))?;
    let mut cells = Vec::new();
    let mut timelines = Vec::new();
    for &cores in cores_grid {
        // The determinism fence: every thread count at this core count must
        // reproduce the first cell's simulated outcome bit-for-bit.
        let mut reference: Option<asf_stats::run::RunStats> = None;
        for &threads in threads_grid {
            let key = cell_key(preset_name, cores, threads, seed);
            let recorded =
                checkpoint.as_deref_mut().and_then(|cp| cp.get(&key).cloned());
            let (stats, cell) = if let Some(stats) = recorded {
                let cell = ScaleCell {
                    cores,
                    threads,
                    wall: Duration::ZERO,
                    accesses: accesses_of(&stats),
                    cycles: stats.cycles,
                    txns: stats.tx_committed,
                    epochs: 0,
                    cross_probes: 0,
                    cross_aborts: 0,
                    stall: 0.0,
                    resumed: true,
                };
                (stats, cell)
            } else {
                let (out, wall) = run_cell(&preset, cores, threads, seed)?;
                let cell = ScaleCell {
                    cores,
                    threads,
                    wall,
                    accesses: accesses_of(&out.stats),
                    cycles: out.stats.cycles,
                    txns: out.stats.tx_committed,
                    epochs: out.scale.epochs,
                    cross_probes: out.scale.cross_probes,
                    cross_aborts: out.scale.cross_aborts,
                    stall: out.scale.barrier_stall_fraction(),
                    resumed: false,
                };
                timelines.push((
                    format!("scale_timeline_{preset_name}_c{cores}_t{threads}"),
                    timeline_json(&out),
                ));
                if let Some(cp) = checkpoint.as_deref_mut() {
                    cp.record(key, out.stats.clone())?;
                }
                (out.stats, cell)
            };
            match &reference {
                None => reference = Some(stats),
                Some(r) if *r == stats => {}
                Some(_) => {
                    return Err(HarnessError::Determinism(format!(
                        "scale {preset_name} at {cores} cores: {threads} worker thread(s) \
                         diverged from the sweep's first thread count — shard execution \
                         leaked host timing into simulated state"
                    )));
                }
            }
            cells.push(cell);
        }
    }
    Ok(ScaleReport { preset: preset_name.to_string(), seed, cells, timelines })
}

fn rate(accesses: u64, wall: Duration) -> f64 {
    accesses as f64 / wall.as_secs_f64().max(1e-9)
}

impl ScaleReport {
    /// The single-threaded wall time at `cores`, if that cell ran fresh.
    fn reference_wall(&self, cores: usize) -> Option<Duration> {
        self.cells
            .iter()
            .find(|c| c.cores == cores && c.threads == 1 && !c.resumed)
            .map(|c| c.wall)
    }

    /// The scaling-curve table: one row per (cores, threads) cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("scale — shard-parallel throughput ({}, seed {:#x})", self.preset, self.seed),
            &[
                "cores", "threads", "txns", "wall ms", "Macc/s", "speedup", "epochs",
                "stall %", "x-probes", "x-aborts",
            ],
        );
        for c in &self.cells {
            let (wall_ms, macc, speedup) = if c.resumed {
                ("resumed".to_string(), "-".to_string(), "-".to_string())
            } else {
                let speedup = match self.reference_wall(c.cores) {
                    Some(base) if c.threads > 1 => {
                        format!("{:.2}x", base.as_secs_f64() / c.wall.as_secs_f64().max(1e-9))
                    }
                    _ => "1.00x".to_string(),
                };
                (
                    format!("{:.2}", c.wall.as_secs_f64() * 1e3),
                    format!("{:.2}", rate(c.accesses, c.wall) / 1e6),
                    speedup,
                )
            };
            t.row(vec![
                c.cores.to_string(),
                c.threads.to_string(),
                c.txns.to_string(),
                wall_ms,
                macc,
                speedup,
                c.epochs.to_string(),
                format!("{:.1}", c.stall * 100.0),
                c.cross_probes.to_string(),
                c.cross_aborts.to_string(),
            ]);
        }
        t
    }
}

/// Chrome-trace timeline of one cell: a track per worker thread showing its
/// busy time each epoch, plus a barrier track. Timestamps are cumulative
/// wall microseconds; open in `chrome://tracing` or Perfetto.
pub fn timeline_json(out: &ShardOutput) -> String {
    let mut w = ChromeTraceWriter::new();
    w.thread_name(0, "epoch barrier");
    for wk in 0..out.scale.busy.len() {
        w.thread_name(wk as u64 + 1, &format!("shard worker {wk}"));
    }
    let mut ts: u64 = 0;
    for span in &out.scale.timeline {
        for (wk, busy) in span.busy.iter().enumerate() {
            let dur = busy.as_micros() as u64;
            if dur > 0 {
                w.complete(
                    "epoch",
                    wk as u64 + 1,
                    ts,
                    dur,
                    &[("until_cycle", span.until.to_string())],
                );
            }
        }
        ts += span.wall.as_micros() as u64;
        w.complete(
            "barrier",
            0,
            ts,
            span.barrier.as_micros().max(1) as u64,
            &[("until_cycle", span.until.to_string())],
        );
        ts += span.barrier.as_micros() as u64;
    }
    if out.scale.timeline_dropped > 0 {
        w.instant(
            &format!("{} later epochs not recorded", out.scale.timeline_dropped),
            0,
            ts,
            'g',
            &[],
        );
    }
    w.finish()
}

/// The CI smoke gate: a 2-shard huge-tier config run with 1 and then 2
/// worker threads **in one process**, asserting the two runs are
/// bit-identical — full merged `RunStats`, per-shard clocks, and the
/// cross-shard counters. Returns a one-line summary, or the divergence.
pub fn smoke(seed: u64) -> Result<String, HarnessError> {
    let preset = streaming::by_name("smoke").expect("smoke preset exists");
    let (seq, _) = run_cell(&preset, 32, 1, seed)?;
    let (par, _) = run_cell(&preset, 32, 2, seed)?;
    if seq.stats != par.stats {
        return Err(HarnessError::Determinism(format!(
            "scale smoke: 2-thread RunStats diverged from 1-thread \
             ({} vs {} cycles, {} vs {} commits)",
            par.stats.cycles, seq.stats.cycles, par.stats.tx_committed, seq.stats.tx_committed
        )));
    }
    if seq.per_shard_cycles != par.per_shard_cycles {
        return Err(HarnessError::Determinism(format!(
            "scale smoke: per-shard clocks diverged: {:?} vs {:?}",
            par.per_shard_cycles, seq.per_shard_cycles
        )));
    }
    if (seq.scale.epochs, seq.scale.cross_probes, seq.scale.cross_aborts)
        != (par.scale.epochs, par.scale.cross_probes, par.scale.cross_aborts)
    {
        return Err(HarnessError::Determinism(format!(
            "scale smoke: cross-shard counters diverged: \
             epochs {} vs {}, probes {} vs {}, aborts {} vs {}",
            par.scale.epochs,
            seq.scale.epochs,
            par.scale.cross_probes,
            seq.scale.cross_probes,
            par.scale.cross_aborts,
            seq.scale.cross_aborts,
        )));
    }
    Ok(format!(
        "scale smoke ok: 32 cores / 2 shards, sequential == 2-thread \
         ({} commits, {} epochs, {} cross-shard probes, {} cross-shard aborts)",
        seq.stats.tx_committed, seq.scale.epochs, seq.scale.cross_probes, seq.scale.cross_aborts
    ))
}

// ---------------------------------------------------------------------------
// The "scale_rounds" section of BENCH_perf.json. The textual-surgery
// machinery lives in [`crate::section`] (shared with `serve_rounds`);
// these wrappers keep the scale-specific names callers use.
// ---------------------------------------------------------------------------

use crate::section;

/// The verbatim `"scale_rounds": [...]` section text, if present.
pub fn extract_scale_rounds(json: &str) -> Option<&str> {
    section::extract_section(json, "scale_rounds")
}

/// The 1-based number the next appended round should carry.
pub fn next_scale_round(json: &str) -> u64 {
    section::next_round(json, "scale_rounds")
}

/// Render one round entry (a flat-enough JSON object) for
/// [`append_scale_round`].
pub fn scale_round_entry(report: &ScaleReport, round: u64, git_subject: &str) -> String {
    let mut out = format!(
        "{{\"round\": {round}, \"preset\": \"{}\", \"sweep_seed\": {}, \
         \"git_subject\": \"{}\", \"curve\": [",
        report.preset,
        report.seed,
        section::sanitize(git_subject),
    );
    for (i, c) in report.cells.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if c.resumed {
            out.push_str(&format!(
                "{{\"cores\": {}, \"threads\": {}, \"txns\": {}, \"resumed\": true}}",
                c.cores, c.threads, c.txns
            ));
        } else {
            out.push_str(&format!(
                "{{\"cores\": {}, \"threads\": {}, \"txns\": {}, \"wall_ms\": {:.3}, \
                 \"macc_per_sec\": {:.3}, \"epochs\": {}, \"stall_pct\": {:.1}, \
                 \"cross_probes\": {}, \"cross_aborts\": {}}}",
                c.cores,
                c.threads,
                c.txns,
                c.wall.as_secs_f64() * 1e3,
                rate(c.accesses, c.wall) / 1e6,
                c.epochs,
                c.stall * 100.0,
                c.cross_probes,
                c.cross_aborts,
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Append one round to the `"scale_rounds"` section of a `BENCH_perf.json`
/// document, creating the section (or, for an empty/absent file, a minimal
/// document) as needed. The rest of the document is preserved byte-for-byte.
pub fn append_scale_round(json: &str, entry: &str) -> String {
    section::append_round(json, "scale_rounds", entry)
}

/// Re-attach `old_json`'s `"scale_rounds"` section to a freshly rendered
/// perf report (`new_json`), which never emits one itself. Returns
/// `new_json` unchanged when the old document had no section.
pub fn carry_scale_rounds(old_json: &str, new_json: &str) -> String {
    section::carry_section(old_json, new_json, "scale_rounds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{parse_baseline, parse_history, PerfCell, PerfReport};
    use asf_stats::json::parse;
    use asf_workloads::Scale;

    #[test]
    fn smoke_gate_passes() {
        let msg = smoke(0x5ca1e).expect("1-thread == 2-thread");
        assert!(msg.contains("scale smoke ok"), "{msg}");
        assert!(msg.contains("2 shards"), "{msg}");
    }

    #[test]
    fn sweep_runs_checks_determinism_and_renders() {
        let r = sweep("smoke", 0x5ca1e, &[32], &[1, 2], None).expect("sweep");
        assert_eq!(r.cells.len(), 2);
        // Same simulated outcome at both thread counts (the sweep would
        // have erred otherwise); timing differs.
        assert_eq!(r.cells[0].cycles, r.cells[1].cycles);
        assert_eq!(r.cells[0].accesses, r.cells[1].accesses);
        assert!(r.cells[0].txns > 0);
        assert!(r.cells[0].epochs > 0);
        let t = r.table();
        assert_eq!(t.len(), 2);
        // One timeline per fresh cell, and it is valid Chrome JSON.
        assert_eq!(r.timelines.len(), 2);
        let v = parse(&r.timelines[0].1).expect("timeline parses");
        assert!(!v.as_arr().expect("array").is_empty());
    }

    #[test]
    fn sweep_resumes_from_checkpoint() {
        let mut path = std::env::temp_dir();
        path.push(format!("asf_scale_ckpt_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut cp = Checkpoint::load_or_new(&path).unwrap();
        let fresh = sweep("smoke", 3, &[32], &[1], Some(&mut cp)).expect("fresh");
        assert!(!fresh.cells[0].resumed);
        // Second sweep over a superset: the recorded cell is skipped (no
        // wall, no timeline) but still anchors the determinism check that
        // the fresh 2-thread cell must match.
        let mut cp = Checkpoint::load_or_new(&path).unwrap();
        assert_eq!(cp.len(), 1);
        let again = sweep("smoke", 3, &[32], &[1, 2], Some(&mut cp)).expect("resumed");
        assert!(again.cells[0].resumed);
        assert!(!again.cells[1].resumed);
        assert_eq!(again.cells[0].cycles, again.cells[1].cycles);
        assert_eq!(again.timelines.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    fn tiny_perf_json() -> String {
        PerfReport {
            scale: Scale::Small,
            seed: 7,
            cells: vec![PerfCell {
                bench: "ssca2".into(),
                detector: "baseline".into(),
                wall: std::time::Duration::from_millis(4),
                wall_min: std::time::Duration::from_millis(4),
                accesses: 2000,
                cycles: 10_000,
            }],
        }
        .to_json()
    }

    fn tiny_scale_report() -> ScaleReport {
        ScaleReport {
            preset: "mix".into(),
            seed: 9,
            cells: vec![ScaleCell {
                cores: 64,
                threads: 2,
                wall: Duration::from_millis(12),
                accesses: 4000,
                cycles: 50_000,
                txns: 128,
                epochs: 7,
                cross_probes: 3,
                cross_aborts: 1,
                stall: 0.25,
                resumed: false,
            }],
            timelines: vec![],
        }
    }

    #[test]
    fn scale_rounds_coexist_with_the_perf_scanners() {
        let perf = tiny_perf_json();
        let report = tiny_scale_report();
        assert_eq!(next_scale_round(&perf), 1);
        let one = append_scale_round(&perf, &scale_round_entry(&report, 1, "first sweep"));
        // The perf scanners still read the perf grid, not the scale round.
        let base = parse_baseline(&one).expect("baseline still parses");
        assert_eq!(base.cells, vec![("ssca2".into(), "baseline".into(), 10_000)]);
        assert!((base.total_wall_ms - 4.0).abs() < 1e-6);
        assert_eq!(parse_history(&one), vec![]);
        // Appending again numbers the next round and keeps both entries.
        assert_eq!(next_scale_round(&one), 2);
        let two = append_scale_round(&one, &scale_round_entry(&report, 2, "bad [\"chars\"]"));
        assert_eq!(next_scale_round(&two), 3);
        let section = extract_scale_rounds(&two).expect("section present");
        assert!(section.contains("\"round\": 1") && section.contains("\"round\": 2"));
        assert!(section.contains("bad ('chars')"), "brackets/quotes sanitized: {section}");
        assert!(section.contains("\"stall_pct\": 25.0"));
        // Balanced braces — cheap structural sanity.
        assert_eq!(two.matches('{').count(), two.matches('}').count());
    }

    #[test]
    fn scale_rounds_survive_a_perf_rewrite() {
        let old = append_scale_round(&tiny_perf_json(), &scale_round_entry(&tiny_scale_report(), 1, "kept"));
        // `asf-repro perf` renders a brand-new report (no scale_rounds)…
        let rewritten = tiny_perf_json();
        assert!(extract_scale_rounds(&rewritten).is_none());
        // …and the carry re-attaches the old section verbatim.
        let carried = carry_scale_rounds(&old, &rewritten);
        assert_eq!(extract_scale_rounds(&carried), extract_scale_rounds(&old));
        assert!(parse_baseline(&carried).is_some());
        // No old section → rewrite passes through untouched.
        assert_eq!(carry_scale_rounds(&rewritten, &rewritten), rewritten);
    }

    #[test]
    fn append_creates_a_document_when_missing() {
        let report = tiny_scale_report();
        let doc = append_scale_round("", &scale_round_entry(&report, 1, "fresh"));
        assert_eq!(next_scale_round(&doc), 2);
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }
}
