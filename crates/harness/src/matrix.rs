//! The (benchmark × detector) grid of simulation runs.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_mem::fxhash::FxHashMap;
use asf_stats::run::RunStats;
use asf_workloads::Scale;

/// Identifies one run in the matrix.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RunKey {
    /// Benchmark name (Table III).
    pub bench: String,
    /// Detector label (`baseline`, `sb4`, `perfect`, …).
    pub detector: String,
}

impl RunKey {
    /// Build a key.
    pub fn new(bench: &str, detector: DetectorKind) -> RunKey {
        RunKey { bench: bench.to_string(), detector: detector.label() }
    }
}

/// A computed grid of runs plus the configuration that produced it.
pub struct Matrix {
    /// Input scale.
    pub scale: Scale,
    /// Master seeds (each run aggregates all of them).
    pub seeds: Vec<u64>,
    runs: FxHashMap<RunKey, RunStats>,
}

/// Run one benchmark under one detector, with the paper's machine.
pub fn run_one(bench: &str, detector: DetectorKind, scale: Scale, seed: u64) -> RunStats {
    let workload =
        asf_workloads::by_name(bench, scale).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let cfg = SimConfig::paper_seeded(detector, seed);
    Machine::run(workload.as_ref(), cfg).stats
}

/// Process-wide worker-count override for [`Matrix::compute`]
/// (0 = unset). Set from `asf-repro --threads`; outranked only by an
/// explicit [`Matrix::compute_with_workers`] argument.
static DEFAULT_WORKERS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Set (Some) or unset (None) the process-wide default worker count used
/// by [`Matrix::compute`].
pub fn set_default_workers(n: Option<usize>) {
    DEFAULT_WORKERS.store(n.unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
}

/// Resolve the worker-pool size for `jobs` grid cells: explicit argument,
/// else the `--threads` process override, else the `ASF_THREADS`
/// environment variable, else `available_parallelism` — always clamped to
/// the job count. Worker count affects wall-clock only, never results
/// (each cell's simulation is single-threaded and deterministic).
fn resolve_workers(explicit: Option<usize>, jobs: usize) -> usize {
    let n = explicit
        .or_else(|| {
            match DEFAULT_WORKERS.load(std::sync::atomic::Ordering::Relaxed) {
                0 => None,
                n => Some(n),
            }
        })
        .or_else(|| {
            std::env::var("ASF_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        });
    n.max(1).min(jobs.max(1))
}

impl Matrix {
    /// Compute the grid for the given benchmarks × detectors, in parallel
    /// (a bounded worker pool over scoped threads). Each cell aggregates
    /// one run per seed — the multi-run averaging that tames the
    /// simulation variance the paper itself observes on labyrinth.
    ///
    /// Worker count comes from [`resolve_workers`] (`--threads` /
    /// `ASF_THREADS` / `available_parallelism`); use
    /// [`Matrix::compute_with_workers`] to pin it programmatically.
    pub fn compute(
        benches: &[&str],
        detectors: &[DetectorKind],
        scale: Scale,
        seeds: &[u64],
    ) -> Matrix {
        Matrix::compute_with_workers(benches, detectors, scale, seeds, None)
    }

    /// [`Matrix::compute`] with an explicit worker-pool size
    /// (`None` = resolve from `--threads` / `ASF_THREADS` / parallelism).
    /// Results are identical for every worker count — the grid-determinism
    /// test pins a 1-worker grid against an N-worker grid cell by cell.
    pub fn compute_with_workers(
        benches: &[&str],
        detectors: &[DetectorKind],
        scale: Scale,
        seeds: &[u64],
        workers: Option<usize>,
    ) -> Matrix {
        assert!(!seeds.is_empty(), "need at least one seed");
        let mut jobs: Vec<(RunKey, DetectorKind, String, u64)> = Vec::new();
        for &b in benches {
            for &d in detectors {
                for &s in seeds {
                    jobs.push((RunKey::new(b, d), d, b.to_string(), s));
                }
            }
        }
        let workers = resolve_workers(workers, jobs.len());
        let jobs_ref = &jobs;
        let next = std::sync::atomic::AtomicUsize::new(0);
        let next_ref = &next;
        // Each job writes its pre-assigned slot, so aggregation below runs
        // in job order no matter which worker finishes first — the merged
        // stats (notably series/histogram contents) are identical across
        // runs and across worker counts.
        let slots: Vec<std::sync::Mutex<Option<RunStats>>> =
            (0..jobs.len()).map(|_| std::sync::Mutex::new(None)).collect();
        let slots_ref = &slots;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= jobs_ref.len() {
                        break;
                    }
                    let (_, det, bench, seed) = &jobs_ref[i];
                    let stats = run_one(bench, *det, scale, *seed);
                    *slots_ref[i].lock().unwrap() = Some(stats);
                });
            }
        });
        let mut runs: FxHashMap<RunKey, RunStats> = FxHashMap::default();
        for ((key, ..), slot) in jobs.iter().zip(slots) {
            let stats = slot.into_inner().unwrap().expect("every job ran");
            runs.entry(key.clone())
                .and_modify(|agg| agg.merge(&stats))
                .or_insert(stats);
        }
        Matrix { scale, seeds: seeds.to_vec(), runs }
    }

    /// The standard grid behind Figures 1, 2, 8, 9, 10: all ten benchmarks
    /// under baseline, sb2/4/8/16 and perfect, aggregated over three seeds
    /// derived from `seed`.
    pub fn paper_grid(scale: Scale, seed: u64) -> Matrix {
        let seeds = [seed, seed.wrapping_add(1), seed.wrapping_add(2)];
        Matrix::compute(&asf_workloads::names(scale), &DetectorKind::paper_set(), scale, &seeds)
    }

    /// Look up one run.
    pub fn get(&self, bench: &str, detector: DetectorKind) -> &RunStats {
        self.runs
            .get(&RunKey::new(bench, detector))
            .unwrap_or_else(|| panic!("run ({bench}, {detector}) not in matrix"))
    }

    /// Does the matrix hold this run?
    pub fn contains(&self, bench: &str, detector: DetectorKind) -> bool {
        self.runs.contains_key(&RunKey::new(bench, detector))
    }

    /// Benchmarks present, in Table III order.
    pub fn benches(&self) -> Vec<String> {
        asf_workloads::names(self.scale)
            .into_iter()
            .filter(|b| self.runs.keys().any(|k| k.bench == *b))
            .map(str::to_string)
            .collect()
    }

    /// Number of runs held.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs are held.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_computes_and_indexes() {
        let m = Matrix::compute(
            &["ssca2", "intruder"],
            &[DetectorKind::Baseline, DetectorKind::SubBlock(4)],
            Scale::Small,
            &[7, 8],
        );
        assert_eq!(m.len(), 4);
        assert_eq!(m.benches(), vec!["intruder", "ssca2"]);
        let s = m.get("ssca2", DetectorKind::Baseline);
        assert!(s.tx_committed > 0);
        assert!(m.contains("intruder", DetectorKind::SubBlock(4)));
        assert!(!m.contains("intruder", DetectorKind::Perfect));
    }

    #[test]
    fn matrix_is_deterministic() {
        let a = Matrix::compute(&["ssca2"], &[DetectorKind::Baseline], Scale::Small, &[3]);
        let b = Matrix::compute(&["ssca2"], &[DetectorKind::Baseline], Scale::Small, &[3]);
        let (sa, sb) = (
            a.get("ssca2", DetectorKind::Baseline),
            b.get("ssca2", DetectorKind::Baseline),
        );
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.conflicts, sb.conflicts);
    }

    #[test]
    fn one_worker_and_n_worker_grids_are_identical() {
        // The worker pool is pure wall-clock parallelism: a serial grid and
        // a maximally-parallel grid must agree on every cell's full stats.
        let grid = |workers: usize| {
            Matrix::compute_with_workers(
                &["ssca2", "intruder", "kmeans"],
                &[DetectorKind::Baseline, DetectorKind::SubBlock(8)],
                Scale::Small,
                &[11, 12],
                Some(workers),
            )
        };
        let (serial, parallel) = (grid(1), grid(8));
        for bench in ["ssca2", "intruder", "kmeans"] {
            for det in [DetectorKind::Baseline, DetectorKind::SubBlock(8)] {
                assert_eq!(
                    serial.get(bench, det),
                    parallel.get(bench, det),
                    "{bench}/{det:?}: worker count changed the results"
                );
            }
        }
    }

    #[test]
    fn multi_seed_merge_is_worker_order_independent() {
        // Three seeds race through the worker pool in arbitrary completion
        // order; pre-assigned result slots must make the aggregate — down
        // to merged time-series content — identical across computes.
        let grid = |seeds: &[u64]| {
            Matrix::compute(
                &["ssca2", "intruder"],
                &[DetectorKind::Baseline, DetectorKind::SubBlock(4)],
                Scale::Small,
                seeds,
            )
        };
        let (a, b) = (grid(&[3, 4, 5]), grid(&[3, 4, 5]));
        for bench in ["ssca2", "intruder"] {
            for det in [DetectorKind::Baseline, DetectorKind::SubBlock(4)] {
                let (sa, sb) = (a.get(bench, det), b.get(bench, det));
                assert_eq!(sa.cycles, sb.cycles);
                assert_eq!(sa.conflicts, sb.conflicts);
                assert_eq!(
                    sa.started_series.cumulative(sa.cycles, 32),
                    sb.started_series.cumulative(sb.cycles, 32),
                    "{bench}/{det:?}: merged series drifted between computes"
                );
                assert_eq!(sa.false_by_line.sorted(), sb.false_by_line.sorted());
            }
        }
    }
}
