//! The (benchmark × detector) grid of simulation runs.
//!
//! Grid jobs run on a worker pool under `catch_unwind`: a panicking or
//! erroring job is retried per [`ComputeOpts::retries`] and, if it still
//! fails, becomes a [`JobOutcome::Failed`] cell — the rest of the grid
//! completes and tables render partial results around the hole. Completed
//! jobs can be checkpointed to JSON ([`crate::checkpoint::Checkpoint`])
//! after each job, so an interrupted run resumes with `--resume` paying
//! only for the jobs it had not finished.

use crate::checkpoint::{job_key, Checkpoint};
use crate::error::HarnessError;
use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_mem::fxhash::FxHashMap;
use asf_stats::run::RunStats;
use asf_workloads::Scale;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Identifies one run in the matrix.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RunKey {
    /// Benchmark name (Table III).
    pub bench: String,
    /// Detector label (`baseline`, `sb4`, `perfect`, …).
    pub detector: String,
}

impl RunKey {
    /// Build a key.
    pub fn new(bench: &str, detector: DetectorKind) -> RunKey {
        RunKey { bench: bench.to_string(), detector: detector.label() }
    }
}

/// What one grid cell holds after compute: aggregated stats, or the reason
/// the cell's jobs failed (so sibling cells still render).
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// All of the cell's per-seed jobs completed; stats are merged.
    /// Boxed: `RunStats` is ~1 KiB and would dwarf the `Failed` variant.
    Completed(Box<RunStats>),
    /// At least one job failed even after retries.
    Failed {
        /// Rendered cause (panic payload or simulation error).
        error: String,
        /// Total attempts spent on the failing job.
        attempts: u32,
    },
}

/// Knobs for one grid compute.
#[derive(Default)]
pub struct ComputeOpts {
    /// Worker-pool size (`None` = resolve from `--threads` / `ASF_THREADS`
    /// / available parallelism).
    pub workers: Option<usize>,
    /// Extra attempts per job after its first failure (so `1` = try twice).
    pub retries: u32,
    /// Optional step budget overriding [`SimConfig::paper_seeded`]'s
    /// default — a per-job watchdog so one runaway simulation cannot hang
    /// the grid.
    pub max_steps: Option<u64>,
    /// Checkpoint to resume from and record into. Jobs present in it are
    /// not re-run; every newly completed job is recorded and persisted.
    pub checkpoint: Option<Checkpoint>,
    /// Test hook: panic the first [`InjectPanic::times`] executions of each
    /// job of cell `(bench, detector)` — exercised by the crash-safety
    /// tests. `times ≤ retries` means the cell recovers; `times > retries`
    /// means it fails.
    pub inject_panic: Option<InjectPanic>,
}

/// Deterministic worker-panic injection (test hook).
#[derive(Clone, Debug)]
pub struct InjectPanic {
    /// Benchmark name of the targeted cell.
    pub bench: String,
    /// Detector label of the targeted cell.
    pub detector: String,
    /// Number of executions of each of the cell's jobs that panic before
    /// the job starts succeeding.
    pub times: u32,
}

/// A computed grid of runs plus the configuration that produced it.
pub struct Matrix {
    /// Input scale.
    pub scale: Scale,
    /// Master seeds (each run aggregates all of them).
    pub seeds: Vec<u64>,
    /// Jobs actually executed by this compute (not resumed from a
    /// checkpoint) — the crash-safety tests read this to prove a resume
    /// re-runs only what was missing.
    pub jobs_run: usize,
    /// Jobs satisfied from the checkpoint instead of being executed.
    pub jobs_resumed: usize,
    /// The checkpoint after compute (recorded jobs included), when one was
    /// passed in via [`ComputeOpts::checkpoint`].
    pub checkpoint: Option<Checkpoint>,
    runs: FxHashMap<RunKey, JobOutcome>,
}

/// Run one benchmark under one detector, with the paper's machine.
/// `Err` on names outside the suite and on simulation errors (watchdog).
pub fn run_one(
    bench: &str,
    detector: DetectorKind,
    scale: Scale,
    seed: u64,
) -> Result<RunStats, HarnessError> {
    run_one_budgeted(bench, detector, scale, seed, None)
}

/// [`run_one`] with an optional step-budget override.
pub fn run_one_budgeted(
    bench: &str,
    detector: DetectorKind,
    scale: Scale,
    seed: u64,
    max_steps: Option<u64>,
) -> Result<RunStats, HarnessError> {
    let workload = asf_workloads::by_name(bench, scale)
        .ok_or_else(|| HarnessError::UnknownBenchmark(bench.to_string()))?;
    let mut cfg = SimConfig::paper_seeded(detector, seed);
    if let Some(steps) = max_steps {
        cfg.max_steps = steps;
    }
    Machine::try_run(workload.as_ref(), cfg)
        .map(|out| out.stats)
        .map_err(|e| HarnessError::FailedCell {
            bench: bench.to_string(),
            detector: detector.label(),
            error: e.to_string(),
        })
}

/// Process-wide worker-count override for [`Matrix::compute`]
/// (0 = unset). Set from `asf-repro --threads`; outranked only by an
/// explicit [`ComputeOpts::workers`] argument.
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Set (Some) or unset (None) the process-wide default worker count used
/// by [`Matrix::compute`].
pub fn set_default_workers(n: Option<usize>) {
    DEFAULT_WORKERS.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Resolve the worker-pool size for `jobs` grid cells: explicit argument,
/// else the `--threads` process override, else the `ASF_THREADS`
/// environment variable, else `available_parallelism` — always clamped to
/// the job count. Worker count affects wall-clock only, never results
/// (each cell's simulation is single-threaded and deterministic).
fn resolve_workers(explicit: Option<usize>, jobs: usize) -> usize {
    let n = explicit
        .or_else(|| {
            match DEFAULT_WORKERS.load(Ordering::Relaxed) {
                0 => None,
                n => Some(n),
            }
        })
        .or_else(|| {
            std::env::var("ASF_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        });
    n.max(1).min(jobs.max(1))
}

/// One job's end state inside the worker pool.
enum JobResult {
    Ran(RunStats),
    Resumed(RunStats),
    Failed { error: String, attempts: u32 },
}

/// Execute one job under `catch_unwind`, with retries. The panic hook is
/// left in place (a crashing worker should still say so on stderr); the
/// payload is folded into the returned error string.
fn run_job(
    bench: &str,
    detector: DetectorKind,
    scale: Scale,
    seed: u64,
    opts: &ComputeOpts,
    injections_left: &AtomicUsize,
) -> JobResult {
    let attempts_max = 1 + opts.retries;
    let mut last_error = String::new();
    for _ in 0..attempts_max {
        // The closure only reads shared state; a panic cannot leave it
        // torn, so asserting unwind safety is sound.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if injections_left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                panic!("injected worker panic (test hook)");
            }
            run_one_budgeted(bench, detector, scale, seed, opts.max_steps)
        }));
        match result {
            Ok(Ok(stats)) => return JobResult::Ran(stats),
            Ok(Err(e)) => last_error = e.to_string(),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                last_error = format!("panic: {msg}");
            }
        }
    }
    JobResult::Failed { error: last_error, attempts: attempts_max }
}

impl Matrix {
    /// Compute the grid for the given benchmarks × detectors, in parallel
    /// (a bounded worker pool over scoped threads). Each cell aggregates
    /// one run per seed — the multi-run averaging that tames the
    /// simulation variance the paper itself observes on labyrinth.
    ///
    /// Worker count comes from `resolve_workers` (`--threads` /
    /// `ASF_THREADS` / `available_parallelism`); use [`Matrix::compute_opts`]
    /// to pin it programmatically.
    pub fn compute(
        benches: &[&str],
        detectors: &[DetectorKind],
        scale: Scale,
        seeds: &[u64],
    ) -> Matrix {
        Matrix::compute_opts(benches, detectors, scale, seeds, ComputeOpts::default())
    }

    /// [`Matrix::compute`] with an explicit worker-pool size
    /// (`None` = resolve from `--threads` / `ASF_THREADS` / parallelism).
    /// Results are identical for every worker count — the grid-determinism
    /// test pins a 1-worker grid against an N-worker grid cell by cell.
    pub fn compute_with_workers(
        benches: &[&str],
        detectors: &[DetectorKind],
        scale: Scale,
        seeds: &[u64],
        workers: Option<usize>,
    ) -> Matrix {
        Matrix::compute_opts(
            benches,
            detectors,
            scale,
            seeds,
            ComputeOpts { workers, ..ComputeOpts::default() },
        )
    }

    /// The fully-general compute: worker pool, per-job `catch_unwind` with
    /// retries and step budget, failed cells kept as [`JobOutcome::Failed`]
    /// and the rest of the grid intact, checkpoint resume/record.
    pub fn compute_opts(
        benches: &[&str],
        detectors: &[DetectorKind],
        scale: Scale,
        seeds: &[u64],
        mut opts: ComputeOpts,
    ) -> Matrix {
        assert!(!seeds.is_empty(), "need at least one seed");
        let mut jobs: Vec<(RunKey, DetectorKind, String, u64)> = Vec::new();
        for &b in benches {
            for &d in detectors {
                for &s in seeds {
                    jobs.push((RunKey::new(b, d), d, b.to_string(), s));
                }
            }
        }
        let workers = resolve_workers(opts.workers, jobs.len());
        // The injection budget is global and decremented atomically, so the
        // targeted cell panics exactly `times` times across all its
        // attempts no matter how jobs land on workers.
        let injection_budget = |key: &RunKey| -> usize {
            match &opts.inject_panic {
                Some(p) if p.bench == key.bench && p.detector == key.detector => {
                    p.times as usize
                }
                _ => 0,
            }
        };
        let budgets: Vec<AtomicUsize> =
            jobs.iter().map(|(key, ..)| AtomicUsize::new(injection_budget(key))).collect();
        let checkpoint = opts.checkpoint.take().map(Mutex::new);
        let jobs_ref = &jobs;
        let budgets_ref = &budgets;
        let opts_ref = &opts;
        let checkpoint_ref = &checkpoint;
        let next = AtomicUsize::new(0);
        let next_ref = &next;
        // Each job writes its pre-assigned slot, so aggregation below runs
        // in job order no matter which worker finishes first — the merged
        // stats (notably series/histogram contents) are identical across
        // runs and across worker counts.
        let slots: Vec<Mutex<Option<JobResult>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let slots_ref = &slots;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs_ref.len() {
                        break;
                    }
                    let (key, det, bench, seed) = &jobs_ref[i];
                    let ckpt_key = job_key(bench, &key.detector, *seed);
                    if let Some(cp) = checkpoint_ref {
                        let hit = cp.lock().unwrap().get(&ckpt_key).cloned();
                        if let Some(stats) = hit {
                            *slots_ref[i].lock().unwrap() = Some(JobResult::Resumed(stats));
                            continue;
                        }
                    }
                    let result =
                        run_job(bench, *det, scale, *seed, opts_ref, &budgets_ref[i]);
                    if let (Some(cp), JobResult::Ran(stats)) = (checkpoint_ref, &result) {
                        // Failed jobs are deliberately *not* recorded: a
                        // resume retries exactly the cells that failed.
                        let mut cp = cp.lock().unwrap();
                        if let Err(e) = cp.record(ckpt_key, stats.clone()) {
                            eprintln!("warning: {e}");
                        }
                    }
                    *slots_ref[i].lock().unwrap() = Some(result);
                });
            }
        });
        let mut runs: FxHashMap<RunKey, JobOutcome> = FxHashMap::default();
        let mut jobs_run = 0;
        let mut jobs_resumed = 0;
        for ((key, ..), slot) in jobs.iter().zip(slots) {
            let result = slot.into_inner().unwrap().expect("every job ran");
            let stats = match result {
                JobResult::Ran(stats) => {
                    jobs_run += 1;
                    stats
                }
                JobResult::Resumed(stats) => {
                    jobs_resumed += 1;
                    stats
                }
                JobResult::Failed { error, attempts } => {
                    jobs_run += 1;
                    // One failed seed poisons the cell (a partial-seed
                    // aggregate would silently change the averaging).
                    runs.insert(key.clone(), JobOutcome::Failed { error, attempts });
                    continue;
                }
            };
            match runs.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if let JobOutcome::Completed(agg) = e.get_mut() {
                        agg.merge(&stats);
                    } // Failed stays failed
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(JobOutcome::Completed(Box::new(stats)));
                }
            }
        }
        Matrix {
            scale,
            seeds: seeds.to_vec(),
            jobs_run,
            jobs_resumed,
            checkpoint: checkpoint.map(|cp| cp.into_inner().unwrap()),
            runs,
        }
    }

    /// The standard grid behind Figures 1, 2, 8, 9, 10: all ten benchmarks
    /// under baseline, sb2/4/8/16 and perfect, aggregated over three seeds
    /// derived from `seed`.
    pub fn paper_grid(scale: Scale, seed: u64) -> Matrix {
        Matrix::paper_grid_opts(scale, seed, ComputeOpts::default())
    }

    /// [`Matrix::paper_grid`] with explicit [`ComputeOpts`] (retries,
    /// checkpoint resume, …) — what `asf-repro --checkpoint/--resume` uses.
    pub fn paper_grid_opts(scale: Scale, seed: u64, opts: ComputeOpts) -> Matrix {
        let seeds = [seed, seed.wrapping_add(1), seed.wrapping_add(2)];
        Matrix::compute_opts(
            &asf_workloads::names(scale),
            &DetectorKind::paper_set(),
            scale,
            &seeds,
            opts,
        )
    }

    /// Look up one run's stats; `Err` for cells that are missing from the
    /// grid or whose jobs failed.
    pub fn get(&self, bench: &str, detector: DetectorKind) -> Result<&RunStats, HarnessError> {
        match self.runs.get(&RunKey::new(bench, detector)) {
            Some(JobOutcome::Completed(stats)) => Ok(stats),
            Some(JobOutcome::Failed { error, .. }) => Err(HarnessError::FailedCell {
                bench: bench.to_string(),
                detector: detector.label(),
                error: error.clone(),
            }),
            None => Err(HarnessError::MissingCell {
                bench: bench.to_string(),
                detector: detector.label(),
            }),
        }
    }

    /// Like [`Matrix::get`] but collapsing missing/failed to `None` — the
    /// partial-rendering path the figure tables use.
    pub fn stats(&self, bench: &str, detector: DetectorKind) -> Option<&RunStats> {
        self.get(bench, detector).ok()
    }

    /// Every failed cell as `(key, error, attempts)`, sorted for stable
    /// reporting.
    pub fn failed_cells(&self) -> Vec<(RunKey, String, u32)> {
        let mut out: Vec<(RunKey, String, u32)> = self
            .runs
            .iter()
            .filter_map(|(k, v)| match v {
                JobOutcome::Failed { error, attempts } => {
                    Some((k.clone(), error.clone(), *attempts))
                }
                JobOutcome::Completed(_) => None,
            })
            .collect();
        out.sort_by(|a, b| (&a.0.bench, &a.0.detector).cmp(&(&b.0.bench, &b.0.detector)));
        out
    }

    /// Does the matrix hold this run (completed or failed)?
    pub fn contains(&self, bench: &str, detector: DetectorKind) -> bool {
        self.runs.contains_key(&RunKey::new(bench, detector))
    }

    /// Benchmarks present, in Table III order.
    pub fn benches(&self) -> Vec<String> {
        asf_workloads::names(self.scale)
            .into_iter()
            .filter(|b| self.runs.keys().any(|k| k.bench == *b))
            .map(str::to_string)
            .collect()
    }

    /// Number of runs held.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs are held.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matrix_computes_and_indexes() {
        let m = Matrix::compute(
            &["ssca2", "intruder"],
            &[DetectorKind::Baseline, DetectorKind::SubBlock(4)],
            Scale::Small,
            &[7, 8],
        );
        assert_eq!(m.len(), 4);
        assert_eq!(m.benches(), vec!["intruder", "ssca2"]);
        let s = m.get("ssca2", DetectorKind::Baseline).unwrap();
        assert!(s.tx_committed > 0);
        assert!(m.contains("intruder", DetectorKind::SubBlock(4)));
        assert!(!m.contains("intruder", DetectorKind::Perfect));
        assert!(matches!(
            m.get("intruder", DetectorKind::Perfect),
            Err(HarnessError::MissingCell { .. })
        ));
        assert_eq!(m.jobs_run, 8);
        assert_eq!(m.jobs_resumed, 0);
        assert!(m.failed_cells().is_empty());
    }

    #[test]
    fn matrix_is_deterministic() {
        let a = Matrix::compute(&["ssca2"], &[DetectorKind::Baseline], Scale::Small, &[3]);
        let b = Matrix::compute(&["ssca2"], &[DetectorKind::Baseline], Scale::Small, &[3]);
        let (sa, sb) = (
            a.get("ssca2", DetectorKind::Baseline).unwrap(),
            b.get("ssca2", DetectorKind::Baseline).unwrap(),
        );
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.conflicts, sb.conflicts);
    }

    #[test]
    fn one_worker_and_n_worker_grids_are_identical() {
        // The worker pool is pure wall-clock parallelism: a serial grid and
        // a maximally-parallel grid must agree on every cell's full stats.
        let grid = |workers: usize| {
            Matrix::compute_with_workers(
                &["ssca2", "intruder", "kmeans"],
                &[DetectorKind::Baseline, DetectorKind::SubBlock(8)],
                Scale::Small,
                &[11, 12],
                Some(workers),
            )
        };
        let (serial, parallel) = (grid(1), grid(8));
        for bench in ["ssca2", "intruder", "kmeans"] {
            for det in [DetectorKind::Baseline, DetectorKind::SubBlock(8)] {
                assert_eq!(
                    serial.get(bench, det).unwrap(),
                    parallel.get(bench, det).unwrap(),
                    "{bench}/{det:?}: worker count changed the results"
                );
            }
        }
    }

    #[test]
    fn multi_seed_merge_is_worker_order_independent() {
        // Three seeds race through the worker pool in arbitrary completion
        // order; pre-assigned result slots must make the aggregate — down
        // to merged time-series content — identical across computes.
        let grid = |seeds: &[u64]| {
            Matrix::compute(
                &["ssca2", "intruder"],
                &[DetectorKind::Baseline, DetectorKind::SubBlock(4)],
                Scale::Small,
                seeds,
            )
        };
        let (a, b) = (grid(&[3, 4, 5]), grid(&[3, 4, 5]));
        for bench in ["ssca2", "intruder"] {
            for det in [DetectorKind::Baseline, DetectorKind::SubBlock(4)] {
                let (sa, sb) =
                    (a.get(bench, det).unwrap(), b.get(bench, det).unwrap());
                assert_eq!(sa.cycles, sb.cycles);
                assert_eq!(sa.conflicts, sb.conflicts);
                assert_eq!(
                    sa.started_series.cumulative(sa.cycles, 32),
                    sb.started_series.cumulative(sb.cycles, 32),
                    "{bench}/{det:?}: merged series drifted between computes"
                );
                assert_eq!(sa.false_by_line.sorted(), sb.false_by_line.sorted());
            }
        }
    }

    #[test]
    fn unknown_benchmark_is_an_error_not_a_panic() {
        let err = run_one("no-such-bench", DetectorKind::Baseline, Scale::Small, 1).unwrap_err();
        assert!(matches!(err, HarnessError::UnknownBenchmark(_)), "{err}");
        assert!(err.to_string().contains("no-such-bench"));
    }
}
