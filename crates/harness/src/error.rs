//! Harness-level error taxonomy.
//!
//! Every way an experiment run can go wrong, as a value instead of a
//! `panic!`: unknown benchmark names, cells missing from a matrix, cells
//! whose worker job failed (panic or watchdog), unreadable checkpoints, and
//! forward-progress violations found by the `faults` experiment. The
//! `asf-repro` binary renders these as one-line messages and a non-zero
//! exit code; tests match on the variants.

use std::fmt;

/// Why a harness operation could not produce its result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// A benchmark name not in the Table III suite.
    UnknownBenchmark(String),
    /// A (benchmark, detector) cell the matrix never computed.
    MissingCell {
        /// Benchmark name.
        bench: String,
        /// Detector label.
        detector: String,
    },
    /// A cell whose job failed even after retries; the matrix holds the
    /// failure instead of stats so sibling cells still render.
    FailedCell {
        /// Benchmark name.
        bench: String,
        /// Detector label.
        detector: String,
        /// Rendered cause (panic payload or simulation error).
        error: String,
    },
    /// A checkpoint file could not be read, parsed, or written.
    Checkpoint(String),
    /// A shard-parallel run diverged from its sequential reference — the
    /// worker-thread count leaked into simulated state, which the engine
    /// guarantees never happens.
    Determinism(String),
    /// The `faults` experiment found a workload that lost transactions
    /// under injected pressure — the forward-progress guarantee is broken.
    ProgressViolation(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::UnknownBenchmark(name) => {
                write!(f, "unknown benchmark '{name}' (see `asf-repro table3` for the suite)")
            }
            HarnessError::MissingCell { bench, detector } => {
                write!(f, "run ({bench}, {detector}) not in matrix")
            }
            HarnessError::FailedCell { bench, detector, error } => {
                write!(f, "run ({bench}, {detector}) failed: {error}")
            }
            HarnessError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
            HarnessError::Determinism(msg) => write!(f, "determinism violation: {msg}"),
            HarnessError::ProgressViolation(msg) => {
                write!(f, "forward-progress violation: {msg}")
            }
        }
    }
}

impl std::error::Error for HarnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_cell() {
        let e = HarnessError::FailedCell {
            bench: "vacation".into(),
            detector: "sb4".into(),
            error: "worker panicked".into(),
        };
        let s = e.to_string();
        assert!(s.contains("vacation") && s.contains("sb4") && s.contains("panicked"));
        assert!(HarnessError::UnknownBenchmark("nope".into())
            .to_string()
            .contains("'nope'"));
    }
}
