//! Crash-safe harness behaviour: worker panics become failed cells instead
//! of dead runs, retries recover transient failures, tables render partial
//! results, and checkpoint + resume re-runs only the missing jobs.

use asf_core::detector::DetectorKind;
use asf_harness::checkpoint::Checkpoint;
use asf_harness::error::HarnessError;
use asf_harness::experiments;
use asf_harness::matrix::{ComputeOpts, InjectPanic, Matrix};
use asf_workloads::Scale;
use std::path::PathBuf;

const BENCHES: [&str; 2] = ["ssca2", "intruder"];
const DETECTORS: [DetectorKind; 2] = [DetectorKind::Baseline, DetectorKind::SubBlock(4)];
const SEEDS: [u64; 2] = [7, 8];

fn grid(opts: ComputeOpts) -> Matrix {
    Matrix::compute_opts(&BENCHES, &DETECTORS, Scale::Small, &SEEDS, opts)
}

fn inject(bench: &str, detector: DetectorKind, times: u32) -> Option<InjectPanic> {
    Some(InjectPanic {
        bench: bench.to_string(),
        detector: detector.label(),
        times,
    })
}

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("asf_crash_safety_{name}_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn worker_panic_becomes_a_failed_cell_and_the_grid_survives() {
    let m = grid(ComputeOpts {
        inject_panic: inject("ssca2", DetectorKind::Baseline, 1),
        ..ComputeOpts::default()
    });
    // Every cell is present; only the injected one failed.
    assert_eq!(m.len(), 4);
    let failed = m.failed_cells();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].0.bench, "ssca2");
    assert_eq!(failed[0].0.detector, "baseline");
    assert!(failed[0].1.contains("injected worker panic"), "{}", failed[0].1);
    assert!(matches!(
        m.get("ssca2", DetectorKind::Baseline),
        Err(HarnessError::FailedCell { .. })
    ));
    // Sibling cells are intact.
    assert!(m.get("ssca2", DetectorKind::SubBlock(4)).unwrap().tx_committed > 0);
    assert!(m.get("intruder", DetectorKind::Baseline).unwrap().tx_committed > 0);
    // Tables render partial results around the hole.
    let t = experiments::fig1(&m);
    let text = t.render();
    assert!(text.contains("failed"), "{text}");
    assert!(text.contains("intruder"), "{text}");
}

#[test]
fn per_job_retry_recovers_a_transient_panic() {
    let m = grid(ComputeOpts {
        retries: 1,
        inject_panic: inject("intruder", DetectorKind::SubBlock(4), 1),
        ..ComputeOpts::default()
    });
    assert!(m.failed_cells().is_empty(), "{:?}", m.failed_cells());
    let clean = grid(ComputeOpts::default());
    assert_eq!(
        m.get("intruder", DetectorKind::SubBlock(4)).unwrap(),
        clean.get("intruder", DetectorKind::SubBlock(4)).unwrap(),
        "a retried job must produce the same deterministic stats"
    );
}

#[test]
fn checkpoint_then_resume_reruns_only_the_failed_cell() {
    let path = tmp_path("resume");

    // First run: one cell's jobs panic; everything else completes and is
    // checkpointed as it finishes.
    let first = grid(ComputeOpts {
        checkpoint: Some(Checkpoint::new(&path)),
        inject_panic: inject("intruder", DetectorKind::Baseline, 1),
        ..ComputeOpts::default()
    });
    assert_eq!(first.failed_cells().len(), 1);
    assert_eq!(first.jobs_run, 8);
    assert_eq!(first.jobs_resumed, 0);
    // Failed jobs are not recorded: 8 jobs - 2 failing seeds of the cell.
    let on_disk = Checkpoint::load_or_new(&path).unwrap();
    assert_eq!(on_disk.len(), 6);

    // Resume: only the two missing jobs run, and the grid now matches a
    // clean compute cell for cell.
    let resumed = grid(ComputeOpts {
        checkpoint: Some(Checkpoint::load_or_new(&path).unwrap()),
        ..ComputeOpts::default()
    });
    assert!(resumed.failed_cells().is_empty());
    assert_eq!(resumed.jobs_resumed, 6);
    assert_eq!(resumed.jobs_run, 2);
    let clean = grid(ComputeOpts::default());
    for bench in BENCHES {
        for det in DETECTORS {
            assert_eq!(
                resumed.get(bench, det).unwrap(),
                clean.get(bench, det).unwrap(),
                "{bench}/{det:?}: resumed grid diverged from a clean one"
            );
        }
    }
    // The completed checkpoint now holds every job.
    assert_eq!(Checkpoint::load_or_new(&path).unwrap().len(), 8);
    let _ = std::fs::remove_file(&path);
}
