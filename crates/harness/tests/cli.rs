//! End-to-end CLI tests: drive the `asf-repro` binary as a user would.
//! Only matrix-free experiments are exercised to keep the suite fast.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_asf-repro"))
        .args(args)
        .output()
        .expect("spawn asf-repro");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn table1_prints_the_state_encoding() {
    let (stdout, _, ok) = run(&["table1"]);
    assert!(ok);
    assert!(stdout.contains("Non-speculative"));
    assert!(stdout.contains("S-WR"));
    assert!(stdout.contains("Dirty"));
}

#[test]
fn fig6_and_fig7_run_without_a_matrix() {
    let (stdout, stderr, ok) = run(&["fig6", "fig7"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("dirty-state hazard"));
    assert!(stdout.contains("piggy-back"));
    // These commands must not trigger the expensive matrix build.
    assert!(!stderr.contains("computing run matrix"));
}

#[test]
fn overhead_reports_the_paper_numbers() {
    let (stdout, _, ok) = run(&["overhead"]);
    assert!(ok);
    assert!(stdout.contains("1.17%"));
    assert!(stdout.contains("768"));
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let (_, stderr, ok) = run(&["nonesuch"]);
    assert!(!ok);
    assert!(stderr.contains("unknown experiment"));
    assert!(stderr.contains("usage:"));
}

#[test]
fn help_flag_prints_usage_and_succeeds() {
    let (stdout, _, ok) = run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
}

#[test]
fn csv_and_json_outputs_are_written() {
    let dir = std::env::temp_dir().join(format!("asf_repro_cli_test_{}", std::process::id()));
    let dir_s = dir.to_str().unwrap();
    let (_, _, ok) = run(&["table3", "--csv", dir_s, "--json", dir_s]);
    assert!(ok);
    let csv = std::fs::read_to_string(dir.join("table3.csv")).expect("csv written");
    assert!(csv.lines().count() == 11, "header + 10 benchmarks");
    let json = std::fs::read_to_string(dir.join("table3.json")).expect("json written");
    assert!(json.contains("\"benchmark\": \"kmeans\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_scale_is_rejected() {
    let (_, stderr, ok) = run(&["table1", "--scale", "galactic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scale"));
}
