//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for the
//! serve API and its in-process load-test clients: request-line plus
//! headers plus `Content-Length` bodies, keep-alive connections, and
//! fixed-size responses. Deliberately tokio-free (the vendored offline
//! build carries no async runtime); concurrency comes from one thread per
//! connection and the bounded worker pool behind the API.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (job specs are tiny; anything big is
/// hostile or broken).
pub const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// Request path (no scheme/host; query strings are kept verbatim).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read one request off a keep-alive connection. `Ok(None)` = clean EOF
/// (client closed between requests); `Err` = malformed traffic or I/O
/// failure, after which the connection should be dropped.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed request line {line:?}"),
            ))
        }
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None); // EOF mid-headers: treat as a closed client
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad content-length {value:?}"),
                    )
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("body of {content_length} bytes exceeds the {MAX_BODY}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

/// Write one response. `extra_headers` are appended verbatim (the queue
/// depth and cache-status headers); the body is always JSON here.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    // One write for head + body: two small writes on a Nagle-enabled
    // socket cost a delayed-ACK round trip (~40ms) per response, which
    // would bury the cache's microsecond hot path.
    head.push_str(body);
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// One parsed response (client side).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Header lookup (names stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — diagnostics only go through this).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive client connection (the load-test clients and the smoke
/// check both drive the server through this).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4157`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Issue one request and read the full response.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: asf-serve\r\n");
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        head.push_str(body); // one write — see write_response on Nagle
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Convenience: `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, "")
    }

    /// Convenience: `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, body)
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line {line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().unwrap_or(0);
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, headers, body })
    }
}
