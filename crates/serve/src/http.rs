//! Minimal HTTP/1.1 framing over `std::net` — just enough protocol for the
//! serve API and its in-process load-test clients: request-line plus
//! headers plus `Content-Length` bodies, keep-alive connections, and
//! fixed-size responses. Deliberately tokio-free (the vendored offline
//! build carries no async runtime); concurrency comes from one thread per
//! connection and the bounded worker pool behind the API.
//!
//! ## Hardening
//!
//! Every dimension of a request is bounded ([`HttpLimits`]) and every
//! failure is typed ([`HttpError`]) so the server can *answer* before it
//! hangs up instead of silently dropping the connection:
//!
//! - header lines are read through a byte-bounded reader, so a client
//!   streaming an endless request line cannot grow memory ([`HttpError::Malformed`] → 400);
//! - the header count is capped (400);
//! - `Content-Length` is checked against the body cap *before* any body
//!   byte is read, so an oversized upload costs nothing ([`HttpError::TooLarge`] → 413);
//! - socket read timeouts surface as [`HttpError::Timeout`] with a flag
//!   saying whether the request had started — a slow-loris mid-request
//!   gets 408, an idle keep-alive connection is closed silently.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Bounds on one parsed request. All fields are configurable on
/// `ServeOpts` (satellite: limits must not be hard-coded).
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Largest accepted request body (job specs are tiny; anything big is
    /// hostile or broken). Checked against `Content-Length` before the
    /// body is read; violations answer 413.
    pub max_body: usize,
    /// Longest accepted request/header line in bytes (including CRLF).
    /// Violations answer 400.
    pub max_line: usize,
    /// Most headers accepted on one request. Violations answer 400.
    pub max_headers: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_body: 1 << 20, max_line: 8 << 10, max_headers: 64 }
    }
}

/// Compatibility alias: the historical body cap (now the
/// [`HttpLimits::max_body`] default).
pub const MAX_BODY: usize = 1 << 20;

/// Why reading a request failed, typed so the connection handler can map
/// each cause to the right status line before closing.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically broken traffic (bad request line, oversized header
    /// line, too many headers, unparsable `Content-Length`) → 400.
    Malformed(String),
    /// `Content-Length` exceeded [`HttpLimits::max_body`]; carries the
    /// declared length → 413.
    TooLarge(usize),
    /// The socket read timeout expired. `started` is true when at least
    /// one byte of the request had arrived (slow-loris → 408); false for
    /// an idle keep-alive connection (close silently).
    Timeout {
        /// Whether any byte of the request had been received.
        started: bool,
    },
    /// Transport failure (reset, broken pipe, …); nothing to answer.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(len) => write!(f, "request body of {len} bytes over limit"),
            HttpError::Timeout { started } => {
                write!(f, "read timeout (request started: {started})")
            }
            HttpError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

/// True when an I/O error is a socket read-timeout expiry (unix surfaces
/// these as `WouldBlock`, windows as `TimedOut`).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb (`GET`, `POST`, `DELETE`, …), uppercased by the client.
    pub method: String,
    /// Request path (no scheme/host; query strings are kept verbatim).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read one line, bounded at `max` bytes. `Ok(None)` = clean EOF before
/// any byte. Longer lines fail as [`HttpError::Malformed`] without reading
/// the remainder, so a client streaming an endless line is cut off at the
/// cap. `started` reports whether any byte was consumed before a timeout.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    max: usize,
    started: bool,
) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    // `take` bounds how much one line may consume; reading through it
    // leaves the underlying reader exactly past what was consumed.
    let mut limited = reader.take(max as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => Ok(None),
        Ok(n) if n > max => Err(HttpError::Malformed(format!(
            "line exceeds the {max}-byte limit"
        ))),
        Ok(_) if !buf.ends_with(b"\n") => {
            // EOF mid-line: the client hung up while sending.
            Err(HttpError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-line",
            )))
        }
        Ok(_) => String::from_utf8(buf)
            .map(Some)
            .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".to_string())),
        Err(e) if is_timeout(&e) => Err(HttpError::Timeout {
            started: started || !buf.is_empty(),
        }),
        Err(e) => Err(HttpError::Io(e)),
    }
}

/// Read one request off a keep-alive connection. `Ok(None)` = clean EOF
/// (client closed between requests); `Err` = malformed / oversized / timed
/// out / failed traffic, each typed so the caller can answer before
/// dropping the connection.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line_bounded(reader, limits.max_line, false)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(HttpError::Malformed(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    let mut content_length = 0usize;
    let mut headers = 0usize;
    loop {
        let Some(header) = read_line_bounded(reader, limits.max_line, true)? else {
            // EOF mid-headers: treat as a closed client.
            return Ok(None);
        };
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        headers += 1;
        if headers > limits.max_headers {
            return Err(HttpError::Malformed(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::Malformed(format!("bad content-length {value:?}"))
                })?;
            }
        }
    }
    // Reject before reading a single body byte: an oversized upload costs
    // the server nothing but this comparison.
    if content_length > limits.max_body {
        return Err(HttpError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if is_timeout(&e) {
            HttpError::Timeout { started: true }
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(Some(Request { method, path, body }))
}

/// Write one response with a JSON content type. `extra_headers` are
/// appended verbatim (the queue depth, cache-status and request-id
/// headers).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    write_response_typed(stream, status, "application/json", extra_headers, body)
}

/// Write one response with an explicit content type (the OpenMetrics
/// endpoint serves `text/plain`).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    // One write for head + body: two small writes on a Nagle-enabled
    // socket cost a delayed-ACK round trip (~40ms) per response, which
    // would bury the cache's microsecond hot path.
    head.push_str(body);
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// One parsed response (client side).
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Response headers, lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Header lookup (names stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy — diagnostics only go through this).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive client connection (the load-test clients and the smoke
/// check both drive the server through this).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4157`).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Issue one request and read the full response.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: asf-serve\r\n");
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        head.push_str(body); // one write — see write_response on Nagle
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Convenience: `GET path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, "")
    }

    /// Convenience: `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, body)
    }

    /// Convenience: `DELETE path` (the job-cancel endpoint).
    pub fn delete(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("DELETE", path, "")
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed status line {line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().unwrap_or(0);
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response { status, headers, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/jobs HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn oversized_content_length_is_too_large_before_body_read() {
        // Only the headers are present — rejection must not wait for body
        // bytes that will never arrive.
        let got = parse(b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n");
        assert!(matches!(got, Err(HttpError::TooLarge(99_999_999))), "{got:?}");
    }

    #[test]
    fn long_line_and_header_flood_are_malformed() {
        let limits = HttpLimits { max_body: 1024, max_line: 64, max_headers: 4 };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(256));
        assert!(matches!(
            read_request(&mut Cursor::new(long.into_bytes()), &limits),
            Err(HttpError::Malformed(_))
        ));
        let flood = format!("GET / HTTP/1.1\r\n{}\r\n", "x: y\r\n".repeat(10));
        assert!(matches!(
            read_request(&mut Cursor::new(flood.into_bytes()), &limits),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn bad_content_length_is_malformed() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }
}
