//! `asf-serve` — a content-addressed simulation service.
//!
//! The simulator is deterministic: a job spec (benchmark, detector, scale,
//! seed, fault profile, observe flag) *uniquely determines* its result.
//! That makes every completed run a memoizable artifact, and this crate
//! turns the repository into a long-running HTTP/JSON service built on
//! that observation:
//!
//! - [`spec`] — canonical job specs and their content digests,
//! - [`cache`] — an O(1) LRU over digests with a crash-safe disk store and
//!   single-flight coalescing of concurrent identical computations,
//! - [`pool`] — a bounded worker pool with immediate-reject admission
//!   control (HTTP 429),
//! - [`runner`] — spec → `Machine::run` → byte-deterministic result body,
//! - [`http`] — tokio-free HTTP/1.1 framing over `std::net`,
//! - [`server`] — the endpoint surface gluing the above together,
//! - [`loadtest`] — an in-process many-client hammer measuring hit rate
//!   and latency percentiles, plus the CI smoke check,
//! - [`chaos`] — seeded, deterministic fault injection against the
//!   service itself (worker panics, stalls, torn disk writes), driven by
//!   the `asf-repro chaos` soak,
//! - [`metrics`] — request counters by endpoint/status plus log2 latency
//!   histograms behind `GET /v1/metrics/prometheus`,
//! - [`flightrec`] — a bounded ring of recent structured events, dumped
//!   crash-safely when a worker panics or a deadline kills a job.
//!
//! The serving layer is *self-healing*: panicking jobs are caught and the
//! worker respawned ([`pool`]), every job runs under a deadline enforced
//! by a watchdog firing cooperative cancel tokens ([`server`]), persisted
//! cache cells are checksummed and quarantined on corruption ([`cache`]),
//! and request framing is bounded in every dimension ([`http`]).
//!
//! Everything here is std-only: the offline build vendors no async
//! runtime, so concurrency is threads + condvars end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod flightrec;
pub mod http;
pub mod loadtest;
pub mod metrics;
pub mod pool;
pub mod runner;
pub mod server;
pub mod spec;
