//! The content-addressed result cache: in-memory LRU over completed job
//! artifacts, backed by a crash-safe on-disk store, with single-flight
//! coalescing of concurrent identical computations.
//!
//! * **Keying** — entries are addressed by the [`crate::spec::JobSpec`]
//!   digest; the simulator is deterministic, so one digest has exactly one
//!   valid artifact and a repeat submission is an O(1) lookup.
//! * **LRU** — a slab-backed doubly-linked list plus an `FxHashMap` index:
//!   `lookup`/`insert` are O(1), the entry count never exceeds the
//!   configured capacity, and the evicted entry is always the
//!   least-recently-used one (pinned by the proptest suite).
//! * **Disk** — when a store directory is configured, every insert also
//!   persists the artifact as `cell_<digest>.json` via a temp file with a
//!   per-process unique suffix and an atomic rename (the
//!   `harness::checkpoint` discipline), and a memory miss falls back to
//!   disk, repopulating the LRU. A crash mid-write leaves either the old
//!   file or nothing — never a torn artifact.
//! * **Checksums & quarantine** — every persisted cell
//!   (`asf-serve-cell-v2`) carries an FNV-1a checksum over its delimited
//!   fields, verified on load. A cell that fails parsing *or* the
//!   checksum is never served: it is renamed aside
//!   (`*.quarantine.<pid>.<seq>`) so the evidence survives for inspection,
//!   counted in [`CacheCounters::corrupt_quarantined`], and the next
//!   computation rewrites it. Rename-aside (not delete) is deliberate: a
//!   corrupt cell means either torn hardware or a code bug, and both are
//!   worth a post-mortem.
//! * **Single-flight** — [`ResultCache::get_or_compute`] guarantees at
//!   most one in-flight computation per digest: followers block on the
//!   leader's condvar and are served the very entry the leader produced,
//!   counted in [`CacheCounters::flight_joins`]. A *panicking* leader
//!   publishes a failure to its followers and deregisters the flight
//!   before the panic resumes — waiters can never be wedged on a dead
//!   leader's condvar.

use asf_mem::fxhash::FxHashMap;
use asf_stats::json::{escape, parse};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One completed, servable artifact.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// The job-spec digest this artifact answers.
    pub spec_digest: u64,
    /// [`asf_stats::digest::run_stats_digest`] of the stats inside `body`
    /// — what the serve-vs-direct golden fence compares.
    pub stats_digest: u64,
    /// The full result document (`asf-serve-v1` JSON), served byte-for-byte.
    pub body: Arc<String>,
    /// `asf-obs-v1` metrics snapshot, when the spec asked to observe.
    pub metrics: Option<Arc<String>>,
    /// Chrome `trace_event` timeline, when the spec asked to observe.
    pub trace: Option<Arc<String>>,
}

/// Monotonic cache counters (`GET /v1/cache/stats`).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Lookups answered from the in-memory LRU.
    pub hits: AtomicU64,
    /// Lookups answered from the on-disk store (and promoted to memory).
    pub disk_hits: AtomicU64,
    /// Lookups that found nothing anywhere.
    pub misses: AtomicU64,
    /// Artifacts inserted (one per completed computation).
    pub inserts: AtomicU64,
    /// LRU entries evicted to respect the capacity bound.
    pub evictions: AtomicU64,
    /// Computations that coalesced onto an in-flight identical one.
    pub flight_joins: AtomicU64,
    /// Computations that actually ran (single-flight leaders).
    pub flight_leads: AtomicU64,
    /// Disk cells that failed parse/checksum verification and were
    /// renamed aside. Nonzero after restarts is fine (old-schema cells);
    /// *growing* under steady state means something is tearing writes.
    pub corrupt_quarantined: AtomicU64,
    /// Disk writes that failed (filesystem error or injected fault). The
    /// artifact is still served from memory; only persistence was lost.
    pub disk_write_failures: AtomicU64,
}

impl CacheCounters {
    /// Render the counters as a JSON object fragment.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"disk_hits\": {}, \"misses\": {}, \"inserts\": {}, \
             \"evictions\": {}, \"single_flight_joins\": {}, \"single_flight_leads\": {}, \
             \"corrupt_quarantined\": {}, \"disk_write_failures\": {}}}",
            self.hits.load(Ordering::Relaxed),
            self.disk_hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.inserts.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.flight_joins.load(Ordering::Relaxed),
            self.flight_leads.load(Ordering::Relaxed),
            self.corrupt_quarantined.load(Ordering::Relaxed),
            self.disk_write_failures.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

const NIL: usize = usize::MAX;

struct Node {
    key: u64,
    value: CachedResult,
    prev: usize,
    next: usize,
}

/// Slab-backed O(1) LRU list: `head` is most recently used, `tail` least.
pub(crate) struct Lru {
    map: FxHashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Lru {
    fn new(capacity: usize) -> Lru {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        Lru {
            map: FxHashMap::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up and promote to most-recently-used.
    fn get(&mut self, key: u64) -> Option<CachedResult> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.nodes[i].value.clone())
    }

    /// Insert (or refresh) an entry; returns the evicted LRU victim's key
    /// when the capacity bound forced one out.
    fn insert(&mut self, key: u64, value: CachedResult) -> Option<u64> {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old_key = self.nodes[victim].key;
            self.map.remove(&old_key);
            self.free.push(victim);
            evicted = Some(old_key);
        }
        let node = Node { key, value, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Keys from most to least recently used (test/debug helper).
    #[cfg(test)]
    fn keys_mru_order(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut i = self.head;
        while i != NIL {
            out.push(self.nodes[i].key);
            i = self.nodes[i].next;
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------------

enum FlightState {
    Running,
    Done(Result<CachedResult, String>),
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

// ---------------------------------------------------------------------------
// The cache proper
// ---------------------------------------------------------------------------

/// Deterministic disk-write fault decision, produced per digest by a
/// chaos hook (see [`ResultCache::set_disk_chaos`]). Outside the chaos
/// soak no hook is installed and every write takes the `None` path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DiskChaos {
    /// Write normally.
    #[default]
    None,
    /// Pretend the filesystem refused the write (counted in
    /// [`CacheCounters::disk_write_failures`]; serving is unaffected).
    FailWrite,
    /// Persist a deliberately torn cell — checksum cannot verify, so a
    /// later disk load must quarantine it instead of serving it.
    Corrupt,
}

/// Chaos decision function: digest → what to do to this disk write.
pub type DiskChaosHook = Box<dyn Fn(u64) -> DiskChaos + Send + Sync>;

/// Configuration of a [`ResultCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum in-memory entries (the LRU bound).
    pub capacity: usize,
    /// Directory of the persistent store; `None` = memory only.
    pub disk_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 1024, disk_dir: None }
    }
}

/// The memoizing store: LRU + disk + single-flight + counters.
pub struct ResultCache {
    lru: Mutex<Lru>,
    flights: Mutex<FxHashMap<u64, Arc<Flight>>>,
    /// Monotonic hit/miss/eviction/coalescing counters.
    pub counters: CacheCounters,
    disk_dir: Option<PathBuf>,
    capacity: usize,
    disk_chaos: Mutex<Option<DiskChaosHook>>,
}

/// Per-process temp-file sequence (see [`unique_tmp_suffix`]).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A temp-file suffix unique across processes (pid) *and* across threads
/// of this process (sequence counter) — two writers sharing a store
/// directory can never interleave bytes into one temp file. The same
/// discipline as `harness::checkpoint` post-collision-fix.
pub fn unique_tmp_suffix() -> String {
    format!("tmp.{}.{}", std::process::id(), TMP_SEQ.fetch_add(1, Ordering::Relaxed))
}

impl ResultCache {
    /// Build a cache from its configuration. The disk directory is created
    /// eagerly so the first insert cannot race a missing parent.
    pub fn new(cfg: CacheConfig) -> std::io::Result<ResultCache> {
        if let Some(dir) = &cfg.disk_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ResultCache {
            lru: Mutex::new(Lru::new(cfg.capacity)),
            flights: Mutex::new(FxHashMap::default()),
            counters: CacheCounters::default(),
            disk_dir: cfg.disk_dir,
            capacity: cfg.capacity,
            disk_chaos: Mutex::new(None),
        })
    }

    /// Install a deterministic disk-write fault hook (chaos soak only).
    /// The hook sees the digest about to be persisted and decides whether
    /// the write proceeds, fails, or tears.
    pub fn set_disk_chaos(&self, hook: DiskChaosHook) {
        *self.disk_chaos.lock().unwrap() = Some(hook);
    }

    /// In-memory entry count.
    pub fn len(&self) -> usize {
        self.lru.lock().unwrap().len()
    }

    /// True when no entry is held in memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The LRU capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up an artifact: memory first, then the disk store (promoting a
    /// disk hit back into the LRU). Counts exactly one of
    /// hits/disk_hits/misses.
    pub fn lookup(&self, digest: u64) -> Option<CachedResult> {
        if let Some(hit) = self.lru.lock().unwrap().get(digest) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit);
        }
        if let Some(found) = self.disk_load(digest) {
            self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
            self.insert_memory(digest, found.clone());
            return Some(found);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert a completed artifact (memory + disk). Public so a warm-up
    /// loader can prime the cache; the normal path is
    /// [`ResultCache::get_or_compute`].
    pub fn insert(&self, digest: u64, result: CachedResult) {
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.disk_store(digest, &result) {
            self.counters.disk_write_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!("warning: cache disk store for {digest:016x}: {e}");
        }
        self.insert_memory(digest, result);
    }

    fn insert_memory(&self, digest: u64, result: CachedResult) {
        if self.lru.lock().unwrap().insert(digest, result).is_some() {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The memoizing entry point: a cached artifact is returned instantly;
    /// otherwise at most one caller per digest runs `compute` (the
    /// *leader*) while concurrent identical callers block and are served
    /// the leader's entry. A failed computation is delivered to every
    /// waiter but **not** cached — the next submission retries.
    pub fn get_or_compute(
        &self,
        digest: u64,
        compute: impl FnOnce() -> Result<CachedResult, String>,
    ) -> Result<CachedResult, String> {
        if let Some(hit) = self.lookup(digest) {
            return Ok(hit);
        }
        // Join an in-flight computation, or become the leader.
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get(&digest) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        cv: Condvar::new(),
                    });
                    flights.insert(digest, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            self.counters.flight_joins.fetch_add(1, Ordering::Relaxed);
            let mut state = flight.state.lock().unwrap();
            while matches!(*state, FlightState::Running) {
                state = flight.cv.wait(state).unwrap();
            }
            let FlightState::Done(result) = &*state else { unreachable!() };
            return result.clone();
        }
        self.counters.flight_leads.fetch_add(1, Ordering::Relaxed);
        // Double-check under flight leadership: another leader may have
        // finished and vacated between our lookup and our registration.
        let result = match self.lookup(digest) {
            Some(hit) => Ok(hit),
            None => {
                // A panicking compute must not strand followers on the
                // condvar: publish a failure and deregister the flight
                // *before* the panic resumes towards the pool supervisor.
                let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute));
                match computed {
                    Ok(computed) => {
                        if let Ok(entry) = &computed {
                            self.insert(digest, entry.clone());
                        }
                        computed
                    }
                    Err(payload) => {
                        let failure = Err("computation panicked".to_string());
                        *flight.state.lock().unwrap() = FlightState::Done(failure);
                        flight.cv.notify_all();
                        self.flights.lock().unwrap().remove(&digest);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        };
        // Publish to waiters, then deregister the flight so later misses
        // start fresh computations (the cache now answers them anyway).
        *flight.state.lock().unwrap() = FlightState::Done(result.clone());
        flight.cv.notify_all();
        self.flights.lock().unwrap().remove(&digest);
        result
    }

    // -- disk store ---------------------------------------------------------

    fn disk_path(&self, digest: u64) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("cell_{digest:016x}.json")))
    }

    fn disk_store(&self, digest: u64, result: &CachedResult) -> std::io::Result<()> {
        let Some(path) = self.disk_path(digest) else {
            return Ok(());
        };
        let chaos = match &*self.disk_chaos.lock().unwrap() {
            Some(hook) => hook(digest),
            None => DiskChaos::None,
        };
        if chaos == DiskChaos::FailWrite {
            return Err(std::io::Error::other("injected disk-write fault"));
        }
        let mut out = String::from("{\n  \"schema\": \"asf-serve-cell-v2\",\n");
        let mut checksum = cell_checksum(result);
        if chaos == DiskChaos::Corrupt {
            // A torn write modelled precisely: the cell parses, but its
            // recorded checksum disagrees with its contents.
            checksum = !checksum;
        }
        out.push_str(&format!("  \"checksum\": \"{checksum:016x}\",\n"));
        out.push_str(&format!("  \"spec_digest\": \"{:016x}\",\n", result.spec_digest));
        out.push_str(&format!("  \"stats_digest\": \"{:016x}\",\n", result.stats_digest));
        out.push_str(&format!("  \"body\": {}", escape(&result.body)));
        for (name, field) in [("metrics", &result.metrics), ("trace", &result.trace)] {
            match field {
                Some(text) => out.push_str(&format!(",\n  \"{name}\": {}", escape(text))),
                None => out.push_str(&format!(",\n  \"{name}\": null")),
            }
        }
        out.push_str("\n}\n");
        let tmp = path.with_file_name(format!(
            "{}.{}",
            path.file_name().unwrap_or_default().to_string_lossy(),
            unique_tmp_suffix()
        ));
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, &path)
    }

    fn disk_load(&self, digest: u64) -> Option<CachedResult> {
        let path = self.disk_path(digest)?;
        let src = std::fs::read_to_string(&path).ok()?;
        match parse_cell(digest, &src) {
            Ok(cell) => Some(cell),
            Err(e) => {
                // A corrupt cell never poisons serving: rename it aside so
                // the evidence survives, count it, and let the next
                // computation repopulate the slot.
                let quarantined = path.with_file_name(format!(
                    "{}.quarantine.{}.{}",
                    path.file_name().unwrap_or_default().to_string_lossy(),
                    std::process::id(),
                    TMP_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                match std::fs::rename(&path, &quarantined) {
                    Ok(()) => eprintln!(
                        "warning: quarantined corrupt cache cell {} -> {}: {e}",
                        path.display(),
                        quarantined.display()
                    ),
                    // Lost a rename race with a concurrent quarantine or a
                    // rewrite — either way the bad bytes are gone.
                    Err(_) => eprintln!(
                        "warning: ignoring corrupt cache cell {}: {e}",
                        path.display()
                    ),
                }
                self.counters.corrupt_quarantined.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }
}

/// FNV-1a over every servable field of a cell, with explicit length/
/// presence delimiters so `("ab","c")` and `("a","bc")` — or a missing
/// versus empty artifact — can never collide.
fn cell_checksum(result: &CachedResult) -> u64 {
    let mut h = asf_stats::digest::Fnv::new();
    h.u64(result.spec_digest).u64(result.stats_digest);
    h.u64(result.body.len() as u64).str(&result.body);
    for field in [&result.metrics, &result.trace] {
        match field {
            Some(text) => {
                h.u64(1).u64(text.len() as u64).str(text);
            }
            None => {
                h.u64(0);
            }
        }
    }
    h.finish()
}

/// Parse one persisted `asf-serve-cell-v2` document and verify its
/// checksum. Anything that fails here is quarantined by the caller —
/// including leftover v1 cells from before checksums existed, which is
/// the intended migration (recompute once, persist verified).
fn parse_cell(digest: u64, src: &str) -> Result<CachedResult, String> {
    let root = parse(src)?;
    let schema = root.field("schema")?.as_str()?;
    if schema != "asf-serve-cell-v2" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let hex_field = |key: &str| -> Result<u64, String> {
        u64::from_str_radix(root.field(key)?.as_str()?, 16)
            .map_err(|e| format!("bad {key}: {e}"))
    };
    let spec_digest = hex_field("spec_digest")?;
    if spec_digest != digest {
        return Err(format!(
            "cell addressed {digest:016x} but records spec_digest {spec_digest:016x}"
        ));
    }
    let stats_digest = hex_field("stats_digest")?;
    let body = Arc::new(root.field("body")?.as_str()?.to_string());
    let opt = |key: &str| -> Result<Option<Arc<String>>, String> {
        match root.get(key) {
            None | Some(asf_stats::json::JsonValue::Null) => Ok(None),
            Some(v) => Ok(Some(Arc::new(v.as_str()?.to_string()))),
        }
    };
    let cell = CachedResult {
        spec_digest,
        stats_digest,
        body,
        metrics: opt("metrics")?,
        trace: opt("trace")?,
    };
    let recorded = hex_field("checksum")?;
    let computed = cell_checksum(&cell);
    if recorded != computed {
        return Err(format!(
            "checksum mismatch: recorded {recorded:016x}, computed {computed:016x}"
        ));
    }
    Ok(cell)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(digest: u64) -> CachedResult {
        CachedResult {
            spec_digest: digest,
            stats_digest: digest.wrapping_mul(31),
            body: Arc::new(format!("{{\"n\": {digest}}}")),
            metrics: None,
            trace: None,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(3);
        for k in [1, 2, 3] {
            assert_eq!(lru.insert(k, entry(k)), None);
        }
        // Touch 1 so 2 becomes the LRU victim.
        assert!(lru.get(1).is_some());
        assert_eq!(lru.insert(4, entry(4)), Some(2));
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.keys_mru_order(), vec![4, 1, 3]);
        assert!(lru.get(2).is_none());
        // Re-inserting an existing key refreshes, never evicts.
        assert_eq!(lru.insert(3, entry(3)), None);
        assert_eq!(lru.keys_mru_order(), vec![3, 4, 1]);
    }

    #[test]
    fn memory_roundtrip_counts_hits_and_misses() {
        let cache = ResultCache::new(CacheConfig { capacity: 4, disk_dir: None }).unwrap();
        assert!(cache.lookup(9).is_none());
        cache.insert(9, entry(9));
        let hit = cache.lookup(9).expect("cached");
        assert_eq!(*hit.body, "{\"n\": 9}");
        assert_eq!(cache.counters.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters.hits.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters.inserts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disk_store_survives_memory_eviction() {
        let dir = std::env::temp_dir().join(format!(
            "asf_serve_cache_test_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let cache = ResultCache::new(CacheConfig {
            capacity: 1,
            disk_dir: Some(dir.clone()),
        })
        .unwrap();
        let mut with_artifacts = entry(1);
        with_artifacts.metrics = Some(Arc::new("{\"m\": 1}".to_string()));
        cache.insert(1, with_artifacts);
        cache.insert(2, entry(2)); // evicts 1 from memory, not from disk
        assert_eq!(cache.counters.evictions.load(Ordering::Relaxed), 1);
        let back = cache.lookup(1).expect("reloaded from disk");
        assert_eq!(*back.body, "{\"n\": 1}");
        assert_eq!(back.metrics.as_deref().map(String::as_str), Some("{\"m\": 1}"));
        assert_eq!(back.trace, None);
        assert_eq!(cache.counters.disk_hits.load(Ordering::Relaxed), 1);
        // No temp files left behind.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp."))
            .collect();
        assert!(stray.is_empty(), "stray temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_cell_is_quarantined_not_served() {
        let dir = std::env::temp_dir().join(format!(
            "asf_serve_corrupt_test_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cell_path = dir.join(format!("cell_{:016x}.json", 5u64));
        std::fs::write(&cell_path, "{ torn").unwrap();
        let cache = ResultCache::new(CacheConfig {
            capacity: 4,
            disk_dir: Some(dir.clone()),
        })
        .unwrap();
        assert!(cache.lookup(5).is_none());
        assert_eq!(cache.counters.corrupt_quarantined.load(Ordering::Relaxed), 1);
        // The bad bytes were renamed aside, not deleted, and the original
        // path is free for the recompute.
        assert!(!cell_path.exists());
        let quarantined: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".quarantine."))
            .collect();
        assert_eq!(quarantined.len(), 1, "{quarantined:?}");
        // The slot heals: a fresh insert persists a verified cell which
        // loads cleanly after memory eviction.
        cache.insert(5, entry(5));
        cache.insert(6, entry(6));
        cache.insert(7, entry(7));
        cache.insert(8, entry(8));
        cache.insert(9, entry(9)); // capacity 4: 5 is evicted from memory
        assert!(cache.lookup(5).is_some());
        assert_eq!(cache.counters.corrupt_quarantined.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_mismatch_is_caught_and_quarantined() {
        let dir = std::env::temp_dir().join(format!(
            "asf_serve_checksum_test_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let cache = ResultCache::new(CacheConfig {
            capacity: 1,
            disk_dir: Some(dir.clone()),
        })
        .unwrap();
        // Inject a torn write for digest 1 only: the cell parses as JSON
        // but its checksum disagrees with its contents.
        cache.set_disk_chaos(Box::new(|digest| {
            if digest == 1 { DiskChaos::Corrupt } else { DiskChaos::None }
        }));
        cache.insert(1, entry(1));
        cache.insert(2, entry(2)); // evicts 1 from memory
        assert!(cache.lookup(1).is_none(), "torn cell must not be served");
        assert_eq!(cache.counters.corrupt_quarantined.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_failure_is_counted_and_memory_still_serves() {
        let dir = std::env::temp_dir().join(format!(
            "asf_serve_failwrite_test_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let cache = ResultCache::new(CacheConfig {
            capacity: 4,
            disk_dir: Some(dir.clone()),
        })
        .unwrap();
        cache.set_disk_chaos(Box::new(|_| DiskChaos::FailWrite));
        cache.insert(3, entry(3));
        assert_eq!(cache.counters.disk_write_failures.load(Ordering::Relaxed), 1);
        assert!(cache.lookup(3).is_some(), "memory path unaffected");
        assert!(!dir.join(format!("cell_{:016x}.json", 3u64)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_computation_is_not_cached() {
        let cache = ResultCache::new(CacheConfig::default()).unwrap();
        let err = cache.get_or_compute(7, || Err("boom".to_string())).unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.lookup(7).is_none());
        // A later attempt retries and can succeed.
        let ok = cache.get_or_compute(7, || Ok(entry(7))).unwrap();
        assert_eq!(ok.spec_digest, 7);
        assert!(cache.lookup(7).is_some());
    }

    #[test]
    fn panicking_leader_releases_followers_and_flight() {
        let cache = Arc::new(ResultCache::new(CacheConfig::default()).unwrap());
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(11, || panic!("leader died"))
        }));
        assert!(panicked.is_err(), "the panic must propagate to the supervisor");
        // The flight was deregistered: a later caller becomes a fresh
        // leader instead of wedging on a dead one's condvar.
        let ok = cache.get_or_compute(11, || Ok(entry(11))).unwrap();
        assert_eq!(ok.spec_digest, 11);
        assert_eq!(cache.counters.flight_leads.load(Ordering::Relaxed), 2);
    }
}
