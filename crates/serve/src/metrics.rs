//! Service-side metrics: request counters by endpoint/status, latency
//! histograms, and correlation-id minting (DESIGN.md §18).
//!
//! The hot path records into [`AtomicHistogram`]s (three relaxed RMWs per
//! sample, no allocation); the endpoint/status counter map takes a mutex,
//! which is fine because it is touched once per HTTP response, not per
//! simulated access. Everything here is read-only at scrape time: the
//! `/v1/metrics/prometheus` endpoint renders a snapshot and cannot
//! perturb in-flight jobs.

use asf_stats::openmetrics::AtomicHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Accumulators behind `GET /v1/metrics/prometheus`.
pub struct ServeMetrics {
    started: Instant,
    /// `(endpoint, status)` → responses sent. BTreeMap so exposition
    /// order is deterministic.
    requests: Mutex<BTreeMap<(&'static str, u16), u64>>,
    /// Wall time from request parse to response write, nanoseconds.
    pub http_request_ns: AtomicHistogram,
    /// Submission → terminal phase, nanoseconds.
    pub job_e2e_ns: AtomicHistogram,
    /// Submission → worker pickup, nanoseconds.
    pub queue_wait_ns: AtomicHistogram,
    /// Worker compute time (cache `get_or_compute`), nanoseconds.
    pub execute_ns: AtomicHistogram,
    request_seq: AtomicU64,
}

impl Default for ServeMetrics {
    fn default() -> ServeMetrics {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Fresh accumulators; `started` anchors `uptime_ms`.
    pub fn new() -> ServeMetrics {
        ServeMetrics {
            started: Instant::now(),
            requests: Mutex::new(BTreeMap::new()),
            http_request_ns: AtomicHistogram::new(),
            job_e2e_ns: AtomicHistogram::new(),
            queue_wait_ns: AtomicHistogram::new(),
            execute_ns: AtomicHistogram::new(),
            request_seq: AtomicU64::new(0),
        }
    }

    /// Monotonic milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Mint the next request correlation id: `pid` and a process-unique
    /// sequence number, hex. Returned to clients as `x-asf-request-id`
    /// and stamped on every log line for the request.
    pub fn next_request_id(&self) -> String {
        let seq = self.request_seq.fetch_add(1, Ordering::Relaxed);
        format!("{:x}-{:x}", std::process::id(), seq)
    }

    /// Count one HTTP response and record its duration.
    pub fn observe_request(&self, endpoint: &'static str, status: u16, elapsed_ns: u64) {
        self.http_request_ns.record(elapsed_ns);
        let mut map = self.requests.lock().expect("metrics lock");
        *map.entry((endpoint, status)).or_insert(0) += 1;
    }

    /// Snapshot of `(endpoint, status, count)` rows in deterministic
    /// order.
    pub fn request_counts(&self) -> Vec<(&'static str, u16, u64)> {
        self.requests
            .lock()
            .expect("metrics lock")
            .iter()
            .map(|(&(e, s), &c)| (e, s, c))
            .collect()
    }

    /// Total HTTP responses counted across all endpoints/statuses.
    pub fn total_requests(&self) -> u64 {
        self.requests.lock().expect("metrics lock").values().sum()
    }
}

/// Normalise a request path into the bounded endpoint label set used by
/// `asf_http_requests_total` (raw paths would explode label cardinality
/// and leak job digests into the exposition).
pub fn endpoint_label(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["v1", "healthz"]) => "healthz",
        ("POST", ["v1", "jobs"]) => "submit",
        ("GET", ["v1", "jobs", _]) => "status",
        ("DELETE", ["v1", "jobs", _]) => "cancel",
        ("GET", ["v1", "jobs", _, "result"]) => "result",
        ("GET", ["v1", "jobs", _, "metrics"]) => "job_metrics",
        ("GET", ["v1", "jobs", _, "trace"]) => "job_trace",
        ("GET", ["v1", "cache", "stats"]) => "cache_stats",
        ("GET", ["v1", "metrics", "prometheus"]) => "metrics_prometheus",
        ("GET", ["v1", "flightrec"]) => "flightrec",
        ("POST", ["v1", "shutdown"]) => "shutdown",
        _ => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_counts_accumulate_per_endpoint_status() {
        let m = ServeMetrics::new();
        m.observe_request("submit", 200, 1_000);
        m.observe_request("submit", 200, 2_000);
        m.observe_request("submit", 429, 500);
        m.observe_request("healthz", 200, 100);
        let rows = m.request_counts();
        assert_eq!(rows.len(), 3);
        assert!(rows.contains(&("submit", 200, 2)));
        assert!(rows.contains(&("submit", 429, 1)));
        assert_eq!(m.total_requests(), 4);
        assert_eq!(m.http_request_ns.snapshot().count(), 4);
    }

    #[test]
    fn request_ids_are_unique_and_pid_prefixed() {
        let m = ServeMetrics::new();
        let a = m.next_request_id();
        let b = m.next_request_id();
        assert_ne!(a, b);
        let prefix = format!("{:x}-", std::process::id());
        assert!(a.starts_with(&prefix), "{a}");
    }

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_label("POST", &["v1", "jobs"]), "submit");
        assert_eq!(endpoint_label("GET", &["v1", "jobs", "abc", "result"]), "result");
        assert_eq!(endpoint_label("GET", &["v1", "metrics", "prometheus"]), "metrics_prometheus");
        assert_eq!(endpoint_label("PUT", &["v1", "jobs"]), "other");
        assert_eq!(endpoint_label("GET", &["favicon.ico"]), "other");
    }
}
