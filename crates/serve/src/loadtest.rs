//! In-process load test and CI smoke check for the serve layer.
//!
//! The load test starts a server on an ephemeral port and hammers it with
//! many concurrent keep-alive clients drawing jobs from a **Zipf-skewed**
//! mix of distinct specs — the access pattern a shared result service
//! actually sees (a handful of hot parameter points dominating a long tail
//! of one-offs). It reports the submit-path hit rate, latency percentiles,
//! and the hot-path speedup of a memoized repeat over a cold simulation of
//! the same standard-scale cell — the number the `serve_rounds` section of
//! `BENCH_perf.json` tracks across rounds.

//! Clients treat transient adversity the way a real caller should:
//! connect failures, mid-request transport errors, and 429 admission
//! rejections are retried a bounded number of times under seeded
//! exponential backoff (the paper's §V-A manager, reused with
//! microsecond units) instead of failing the whole run. Retry counts are
//! part of the report, so a round that only passed by retrying heavily is
//! visible, not hidden.

use crate::http::Client;
use crate::server::{ServeOpts, Server};
use crate::spec::JobSpec;
use asf_core::backoff::ExponentialBackoff;
use asf_core::detector::DetectorKind;
use asf_mem::rng::SimRng;
use asf_workloads::Scale;
use std::time::{Duration, Instant};

/// Most retries one logical request will attempt before giving up.
const RETRY_LIMIT: u32 = 8;
/// Base backoff window, microseconds (doubles per retry, seeded jitter).
const BACKOFF_BASE_US: u64 = 200;
/// Window cap exponent: ≤ 200µs · 2^7 ≈ 25.6ms per sleep.
const BACKOFF_CAP_EXP: u32 = 7;

/// Sleep one seeded-jitter backoff step.
fn backoff_sleep(backoff: &mut ExponentialBackoff, rng: &mut SimRng) {
    let us = backoff.on_abort(rng);
    std::thread::sleep(Duration::from_micros(us));
}

/// Load-test shape.
#[derive(Clone, Debug)]
pub struct LoadTestOpts {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Size of the distinct-spec universe the Zipf mix draws from.
    pub distinct_specs: usize,
    /// RNG seed for the mix (and the base of the spec seeds).
    pub seed: u64,
    /// Scale of the mixed jobs (small keeps thousands of requests cheap;
    /// the speedup probe always uses a standard-scale cell regardless).
    pub scale: Scale,
    /// Worker threads in the server under test.
    pub workers: usize,
    /// Queue bound in the server under test.
    pub queue_capacity: usize,
}

impl Default for LoadTestOpts {
    fn default() -> Self {
        LoadTestOpts {
            clients: 64,
            requests_per_client: 32,
            distinct_specs: 24,
            seed: 7,
            scale: Scale::Small,
            workers: 4,
            queue_capacity: 4096,
        }
    }
}

/// What the load test measured.
#[derive(Clone, Debug)]
pub struct LoadTestReport {
    /// Total submit requests issued.
    pub requests: u64,
    /// Answered `cached` straight from the store.
    pub cached: u64,
    /// Coalesced onto an in-flight identical job.
    pub coalesced: u64,
    /// Accepted as fresh work.
    pub queued: u64,
    /// Requests whose *final* answer (after bounded retries) was 429.
    pub rejected: u64,
    /// Backoff retries spent on transient failures (connect errors,
    /// transport drops, 429s that later succeeded).
    pub retries: u64,
    /// `cached / requests` — the submit-path hit rate.
    pub hit_rate: f64,
    /// Median submit round-trip, microseconds.
    pub p50_us: f64,
    /// 99th-percentile submit round-trip, microseconds.
    pub p99_us: f64,
    /// Median from the log2 latency histogram (bucket upper bound), µs.
    pub hist_p50_us: f64,
    /// 90th percentile from the log2 latency histogram, µs.
    pub hist_p90_us: f64,
    /// 99th percentile from the log2 latency histogram, µs.
    pub hist_p99_us: f64,
    /// Cold wall time of the standard-scale probe cell, nanoseconds.
    pub cold_ns: u64,
    /// Memoized round-trip (submit answered `cached` + result fetch) for
    /// the same cell, nanoseconds.
    pub hot_ns: u64,
    /// `cold_ns / hot_ns` — the hot-path speedup (target: ≥ 100x).
    pub speedup: f64,
}

impl LoadTestReport {
    /// Render the report as the `serve_rounds` entry payload.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"cached\": {}, \"coalesced\": {}, \
             \"queued\": {}, \"rejected\": {}, \"retries\": {}, \"hit_rate\": {:.4}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"hist_p50_us\": {:.1}, \"hist_p90_us\": {:.1}, \"hist_p99_us\": {:.1}, \
             \"cold_ns\": {}, \"hot_ns\": {}, \"speedup\": {:.1}}}",
            self.requests,
            self.cached,
            self.coalesced,
            self.queued,
            self.rejected,
            self.retries,
            self.hit_rate,
            self.p50_us,
            self.p99_us,
            self.hist_p50_us,
            self.hist_p90_us,
            self.hist_p99_us,
            self.cold_ns,
            self.hot_ns,
            self.speedup
        )
    }
}

/// The standard-scale cell the speedup probe measures (a fixed point so
/// rounds are comparable across sessions).
fn probe_spec(seed: u64) -> JobSpec {
    JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Standard, seed)
}

/// Build the Zipf(1.0) cumulative weight table over `n` ranks.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for i in 0..n {
        acc += 1.0 / (i as f64 + 1.0);
        cdf.push(acc);
    }
    let total = acc;
    for w in &mut cdf {
        *w /= total;
    }
    cdf
}

/// Sample a rank from the table.
fn zipf_pick(cdf: &[f64], rng: &mut SimRng) -> usize {
    let x = rng.f64();
    cdf.iter().position(|&c| x < c).unwrap_or(cdf.len() - 1)
}

/// The spec universe: benchmarks round-robined, seeds offset by rank, all
/// at the test scale with the sb4 detector (the paper's headline config).
fn spec_universe(opts: &LoadTestOpts) -> Vec<JobSpec> {
    let benches = asf_workloads::names(opts.scale);
    (0..opts.distinct_specs)
        .map(|i| {
            JobSpec::new(
                benches[i % benches.len()],
                DetectorKind::SubBlock(4),
                opts.scale,
                opts.seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

/// Run the load test against a private server instance.
pub fn run(opts: &LoadTestOpts) -> Result<LoadTestReport, String> {
    let server = Server::start(ServeOpts {
        workers: opts.workers,
        queue_capacity: opts.queue_capacity,
        cache_capacity: opts.distinct_specs.max(16) * 2,
        ..ServeOpts::default()
    })
    .map_err(|e| format!("start server: {e}"))?;
    let addr = server.addr();
    let universe = spec_universe(opts);
    let bodies: Vec<String> = universe.iter().map(JobSpec::canonical).collect();
    let cdf = zipf_cdf(universe.len());

    // Fan the clients out; each keeps one connection alive for its whole
    // request budget and records per-request submit latencies.
    let mut handles = Vec::with_capacity(opts.clients);
    for c in 0..opts.clients {
        let addr = addr.clone();
        let bodies = bodies.clone();
        let cdf = cdf.clone();
        let mut rng = SimRng::derive(opts.seed, 0x10ad + c as u64);
        let n = opts.requests_per_client;
        handles.push(
            std::thread::Builder::new()
                .name(format!("asf-loadtest-client-{c}"))
                .spawn(move || client_loop(&addr, &bodies, &cdf, &mut rng, n))
                .map_err(|e| format!("spawn client: {e}"))?,
        );
    }
    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut cached = 0u64;
    let mut coalesced = 0u64;
    let mut queued = 0u64;
    let mut rejected = 0u64;
    let mut retries = 0u64;
    for h in handles {
        let outcome = h.join().map_err(|_| "client thread panicked".to_string())??;
        latencies_ns.extend(outcome.latencies_ns);
        cached += outcome.cached;
        coalesced += outcome.coalesced;
        queued += outcome.queued;
        rejected += outcome.rejected;
        retries += outcome.retries;
    }

    // Let the backlog finish so the speedup probe measures a quiet server.
    let state = server.state();
    let deadline = Instant::now() + Duration::from_secs(120);
    while state.queue_depth() > 0 {
        if Instant::now() > deadline {
            return Err("load-test backlog did not drain within 120s".to_string());
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Hot-path speedup: cold wall time of a fresh standard-scale cell vs
    // the memoized round-trip for the same cell.
    let probe = probe_spec(opts.seed ^ 0x5eed);
    let mut client =
        Client::connect(&addr).map_err(|e| format!("connect probe client: {e}"))?;
    let cold_start = Instant::now();
    submit_and_wait(&mut client, &probe)?;
    let cold_ns = cold_start.elapsed().as_nanos() as u64;
    // Warm once (populates nothing new — asserts the hit), then time it.
    let hot_ns = {
        let path = format!("/v1/jobs/{}/result", probe.digest_hex());
        let start = Instant::now();
        let resp = client
            .post("/v1/jobs", &probe.canonical())
            .map_err(|e| format!("hot submit: {e}"))?;
        if resp.header("x-asf-cache") != Some("hit") {
            return Err(format!("probe repeat was not a cache hit: {}", resp.text()));
        }
        let body = client.get(&path).map_err(|e| format!("hot fetch: {e}"))?;
        if body.status != 200 {
            return Err(format!("hot fetch status {}", body.status));
        }
        start.elapsed().as_nanos() as u64
    };

    server.shutdown();

    latencies_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        if latencies_ns.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_ns.len() - 1) as f64 * p).round() as usize;
        latencies_ns[idx] as f64 / 1_000.0
    };
    // Same samples through the allocation-free log2 histogram the server
    // uses on its hot path: the `hist_*` percentiles are what a scrape of
    // `/v1/metrics/prometheus` can derive, reported next to the exact
    // sampled ones so the bucket-resolution error stays visible.
    let mut hist = asf_stats::Histogram::new();
    for &ns in &latencies_ns {
        hist.record(ns);
    }
    let hist_us = |q: f64| hist.quantile(q) as f64 / 1_000.0;
    let requests = cached + coalesced + queued + rejected;
    Ok(LoadTestReport {
        requests,
        cached,
        coalesced,
        queued,
        rejected,
        retries,
        hit_rate: if requests == 0 { 0.0 } else { cached as f64 / requests as f64 },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        hist_p50_us: hist_us(0.50),
        hist_p90_us: hist_us(0.90),
        hist_p99_us: hist_us(0.99),
        cold_ns,
        hot_ns: hot_ns.max(1),
        speedup: cold_ns as f64 / hot_ns.max(1) as f64,
    })
}

struct ClientOutcome {
    latencies_ns: Vec<u64>,
    cached: u64,
    coalesced: u64,
    queued: u64,
    rejected: u64,
    retries: u64,
}

/// Connect with bounded seeded-backoff retries — a burst of simultaneous
/// clients racing a server that is still binding (or a chaos-restarted
/// one) is transient, not fatal.
fn connect_with_retry(
    addr: &str,
    rng: &mut SimRng,
    retries: &mut u64,
) -> Result<Client, String> {
    let mut backoff = ExponentialBackoff::new(BACKOFF_BASE_US, BACKOFF_CAP_EXP);
    loop {
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(e) if backoff.retries() >= RETRY_LIMIT => {
                return Err(format!("connect after {RETRY_LIMIT} retries: {e}"))
            }
            Err(_) => {
                *retries += 1;
                backoff_sleep(&mut backoff, rng);
            }
        }
    }
}

fn client_loop(
    addr: &str,
    bodies: &[String],
    cdf: &[f64],
    rng: &mut SimRng,
    requests: usize,
) -> Result<ClientOutcome, String> {
    let mut out = ClientOutcome {
        latencies_ns: Vec::with_capacity(requests),
        cached: 0,
        coalesced: 0,
        queued: 0,
        rejected: 0,
        retries: 0,
    };
    let mut client = connect_with_retry(addr, rng, &mut out.retries)?;
    for _ in 0..requests {
        let body = &bodies[zipf_pick(cdf, rng)];
        let start = Instant::now();
        // One logical request: retry transient failures (transport drops,
        // 429 admission pushback) under backoff, bounded so a genuinely
        // unhealthy server still fails the run instead of hanging it.
        let mut backoff = ExponentialBackoff::new(BACKOFF_BASE_US, BACKOFF_CAP_EXP);
        let resp = loop {
            match client.post("/v1/jobs", body) {
                Ok(resp) if resp.status == 429 && backoff.retries() < RETRY_LIMIT => {
                    out.retries += 1;
                    backoff_sleep(&mut backoff, rng);
                }
                Ok(resp) => break resp,
                Err(e) if backoff.retries() >= RETRY_LIMIT => {
                    return Err(format!("submit after {RETRY_LIMIT} retries: {e}"))
                }
                Err(_) => {
                    // The connection died (server closed it on a timeout,
                    // reset, …): back off and reconnect.
                    out.retries += 1;
                    backoff_sleep(&mut backoff, rng);
                    client = connect_with_retry(addr, rng, &mut out.retries)?;
                }
            }
        };
        out.latencies_ns.push(start.elapsed().as_nanos() as u64);
        match (resp.status, resp.header("x-asf-cache")) {
            (200, Some("hit")) => out.cached += 1,
            (200, Some("join")) => out.coalesced += 1,
            (200, _) => out.queued += 1,
            (429, _) => out.rejected += 1,
            (status, _) => return Err(format!("submit status {status}: {}", resp.text())),
        }
    }
    Ok(out)
}

/// Submit `spec` and poll until its result is servable; returns the body.
fn submit_and_wait(client: &mut Client, spec: &JobSpec) -> Result<String, String> {
    let resp = client
        .post("/v1/jobs", &spec.canonical())
        .map_err(|e| format!("submit: {e}"))?;
    if resp.status != 200 {
        return Err(format!("submit status {}: {}", resp.status, resp.text()));
    }
    let path = format!("/v1/jobs/{}/result", spec.digest_hex());
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let resp = client.get(&path).map_err(|e| format!("poll: {e}"))?;
        match resp.status {
            200 => return Ok(resp.text()),
            202 => {
                if Instant::now() > deadline {
                    return Err("job did not finish within 300s".to_string());
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            status => return Err(format!("result status {status}: {}", resp.text())),
        }
    }
}

/// Scrape `/v1/metrics/prometheus`, require it to parse as valid
/// OpenMetrics text, and return the recorded `asf_http_requests_total`
/// sum (which the smoke gate requires to be non-zero).
fn scrape_prometheus(client: &mut Client) -> Result<f64, String> {
    let resp = client
        .get("/v1/metrics/prometheus")
        .map_err(|e| format!("prometheus scrape: {e}"))?;
    if resp.status != 200 {
        return Err(format!("prometheus scrape status {}", resp.status));
    }
    if resp.header("content-type").is_none_or(|ct| !ct.starts_with("text/plain")) {
        return Err(format!("prometheus content-type {:?}", resp.header("content-type")));
    }
    let text = resp.text();
    let exposition = asf_stats::openmetrics::parse_exposition(&text)
        .map_err(|e| format!("prometheus output does not parse: {e}\n{text}"))?;
    let requests: f64 = exposition
        .samples
        .iter()
        .filter(|s| s.name == "asf_http_requests_total")
        .map(|s| s.value)
        .sum();
    Ok(requests)
}

/// The CI smoke gate: ephemeral server, one fixed-seed job submitted
/// twice — the repeat must answer `cached` with a byte-identical result
/// body, the prometheus exposition must parse and show the traffic — then
/// a clean HTTP-initiated shutdown. Returns the one-line summary the CLI
/// prints (listening port, job digest, scrape count).
pub fn smoke(seed: u64) -> Result<String, String> {
    let server =
        Server::start(ServeOpts::default()).map_err(|e| format!("start server: {e}"))?;
    let addr = server.addr();
    let mut client = Client::connect(&addr).map_err(|e| format!("connect: {e}"))?;
    let health = client.get("/v1/healthz").map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 || !health.text().contains("\"ok\": true") {
        return Err(format!("healthz not ready ({}): {}", health.status, health.text()));
    }
    if health.header("x-asf-request-id").is_none() {
        return Err("healthz reply missing x-asf-request-id".to_string());
    }
    let spec = JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Small, seed);
    let first_body = submit_and_wait(&mut client, &spec)?;

    let repeat = client
        .post("/v1/jobs", &spec.canonical())
        .map_err(|e| format!("repeat submit: {e}"))?;
    if repeat.header("x-asf-cache") != Some("hit") {
        return Err(format!("repeat submission was not a cache hit: {}", repeat.text()));
    }
    let path = format!("/v1/jobs/{}/result", spec.digest_hex());
    let second = client.get(&path).map_err(|e| format!("repeat fetch: {e}"))?;
    if second.status != 200 {
        return Err(format!("repeat fetch status {}", second.status));
    }
    if second.text() != first_body {
        return Err("cached result body is not byte-identical to the first".to_string());
    }
    let stats = client.get("/v1/cache/stats").map_err(|e| format!("stats: {e}"))?;
    if stats.status != 200 || !stats.text().contains("\"hits\"") {
        return Err(format!("cache stats malformed: {}", stats.text()));
    }
    let scraped_requests = scrape_prometheus(&mut client)?;
    if scraped_requests <= 0.0 {
        return Err("prometheus exposition recorded zero HTTP requests".to_string());
    }
    let bye = client.post("/v1/shutdown", "").map_err(|e| format!("shutdown: {e}"))?;
    if bye.status != 200 {
        return Err(format!("shutdown status {}", bye.status));
    }
    server.shutdown();
    Ok(format!(
        "serve smoke ok: addr={addr} job={} prometheus_requests={scraped_requests} \
         artifacts=none (in-memory cache, no flight dumps)",
        spec.digest_hex()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_table_is_monotone_and_normalised() {
        let cdf = zipf_cdf(16);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[15] - 1.0).abs() < 1e-12);
        // Rank 0 carries the largest share (the "hot spec").
        assert!(cdf[0] > 1.0 / 16.0);
    }

    #[test]
    fn smoke_round_trip() {
        let summary = smoke(0x51).expect("smoke must pass");
        assert!(summary.contains("serve smoke ok"), "{summary}");
        assert!(summary.contains("addr="), "{summary}");
    }

    #[test]
    fn tiny_loadtest_reports_hits() {
        let report = run(&LoadTestOpts {
            clients: 8,
            requests_per_client: 8,
            distinct_specs: 4,
            seed: 11,
            scale: Scale::Small,
            workers: 2,
            queue_capacity: 256,
        })
        .expect("load test runs");
        assert_eq!(report.requests, 64);
        assert!(report.cached + report.coalesced + report.queued + report.rejected == 64);
        // In a debug-build burst every repeat may coalesce onto a job
        // still in flight instead of hitting a completed cache entry;
        // either way no repeat recomputed.
        assert!(
            report.cached + report.coalesced > 0,
            "repeats must dedup: {report:?}"
        );
        assert!(report.speedup > 1.0, "{report:?}");
        // Histogram-derived percentiles bracket from above (bucket upper
        // bound) and must be ordered like any quantile family.
        assert!(report.hist_p50_us >= report.p50_us, "{report:?}");
        assert!(report.hist_p50_us <= report.hist_p90_us, "{report:?}");
        assert!(report.hist_p90_us <= report.hist_p99_us, "{report:?}");
    }
}
