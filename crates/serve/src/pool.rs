//! Bounded, self-healing worker pool with FIFO admission control.
//!
//! "On the Cost of Concurrency in Transactional Memory"'s lesson applies
//! to the serving layer itself: admitting unbounded concurrent simulations
//! degrades everyone. The pool therefore runs a fixed number of worker
//! threads over one FIFO queue with a hard depth bound — a submission
//! against a full queue is *rejected immediately* ([`PoolFull`], surfaced
//! as HTTP 429 with the current depth in a header) instead of piling up
//! latency for every queued client.
//!
//! ## Supervision
//!
//! Every job runs under `catch_unwind`. A panicking job must not take a
//! worker with it — before supervision, one poisoned job spec could
//! silently halve the pool until nothing drained the queue. A caught
//! panic is counted, the worker *retires* (a panicked stack is not worth
//! trusting for the next job), and a sentinel [`Drop`] guard spawns a
//! fresh replacement thread, so capacity converges back to the configured
//! worker count no matter how many jobs panic. [`WorkerPool::health`]
//! snapshots live workers, lifetime panics, and respawns for the
//! `/v1/healthz` readiness endpoint.
//!
//! The sentinel pushes the replacement's `JoinHandle` while still holding
//! the state lock so a concurrent shutdown either observes `open ==
//! false` before the respawn decision, or finds the new handle already in
//! the join list — a replacement can never be leaked past `shutdown`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Rejection: the queue was at capacity. Carries the depth observed at
/// rejection time (== capacity) for the `x-asf-queue-depth` header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolFull(pub usize);

/// Point-in-time supervision snapshot, serialised into `/v1/healthz`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolHealth {
    /// Configured worker count (the target the pool heals towards).
    pub workers: usize,
    /// Workers currently alive (between a retirement and its respawn this
    /// can briefly dip below `workers`).
    pub live: usize,
    /// Lifetime count of jobs that panicked.
    pub panics: u64,
    /// Lifetime count of replacement workers spawned after a panic.
    pub respawns: u64,
    /// Pending (not yet started) jobs.
    pub queue_depth: usize,
}

struct State {
    queue: VecDeque<Job>,
    open: bool,
    live: usize,
    panics: u64,
    respawns: u64,
    next_worker: usize,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
    // Lock order: `state` before `handles`, never the reverse.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// Fixed-size worker pool over a bounded FIFO queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
}

impl WorkerPool {
    /// Start `workers` threads serving a queue bounded at `capacity`
    /// pending jobs (jobs being executed do not count against the bound).
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        assert!(workers >= 1, "need at least one worker");
        assert!(capacity >= 1, "queue capacity must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
                live: workers,
                panics: 0,
                respawns: 0,
                next_worker: workers,
            }),
            cv: Condvar::new(),
            capacity,
            handles: Mutex::new(Vec::with_capacity(workers)),
        });
        let handles: Vec<JoinHandle<()>> =
            (0..workers).map(|i| spawn_worker(&shared, i)).collect();
        shared.handles.lock().unwrap().extend(handles);
        WorkerPool { shared, workers }
    }

    /// Enqueue a job. `Ok(depth)` is the queue depth right after the
    /// enqueue; `Err(PoolFull)` rejects without blocking when the queue is
    /// at capacity or the pool is shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<usize, PoolFull> {
        let mut state = self.shared.state.lock().unwrap();
        if !state.open || state.queue.len() >= self.shared.capacity {
            return Err(PoolFull(state.queue.len()));
        }
        state.queue.push_back(Box::new(job));
        let depth = state.queue.len();
        drop(state);
        self.shared.cv.notify_one();
        Ok(depth)
    }

    /// Pending (not yet started) jobs.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// The queue's depth bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Supervision snapshot for the readiness endpoint.
    pub fn health(&self) -> PoolHealth {
        let state = self.shared.state.lock().unwrap();
        PoolHealth {
            workers: self.workers,
            live: state.live,
            panics: state.panics,
            respawns: state.respawns,
            queue_depth: state.queue.len(),
        }
    }

    /// Stop accepting work, drain the queue, and join every worker
    /// (including any replacements spawned during the drain).
    pub fn shutdown(self) {
        // Drop does the work; this name exists for call-site clarity.
    }

    fn close(&self) {
        self.shared.state.lock().unwrap().open = false;
        self.shared.cv.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still stops the workers;
        // queued-but-unstarted jobs are executed first (drain semantics).
        self.close();
        // Join until the list is empty — sentinels may append replacement
        // handles while earlier ones are being joined.
        loop {
            let handle = self.shared.handles.lock().unwrap().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>, id: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("asf-serve-worker-{id}"))
        .spawn(move || worker_loop(&shared))
        .expect("spawn worker")
}

/// Decrements `live` on worker exit and — when the exit was a
/// panic-retirement while the pool is still open — spawns the
/// replacement. Running this from `Drop` (not straight-line code) means
/// even an unexpected unwind out of the worker loop heals the pool.
struct Sentinel {
    shared: Arc<Shared>,
    clean: bool,
}

impl Drop for Sentinel {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.live -= 1;
        if !self.clean && state.open {
            state.respawns += 1;
            state.live += 1;
            let id = state.next_worker;
            state.next_worker += 1;
            let handle = spawn_worker(&self.shared, id);
            // Push while still holding the state lock: shutdown's close()
            // serialises on that lock, so it cannot observe `open` flipped
            // without also seeing this handle in the join list.
            self.shared.handles.lock().unwrap().push(handle);
        }
        drop(state);
        self.shared.cv.notify_all();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut sentinel = Sentinel { shared: Arc::clone(shared), clean: false };
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if !state.open {
                    sentinel.clean = true;
                    return;
                }
                state = shared.cv.wait(state).unwrap();
            }
        };
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            shared.state.lock().unwrap().panics += 1;
            // Retire: a stack that just unwound is not worth reusing.
            // `sentinel.clean` stays false, so Drop spawns a replacement.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn runs_submitted_jobs_and_drains_on_shutdown() {
        let pool = WorkerPool::new(2, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the single worker so the queue actually fills.
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait until the worker has dequeued the blocker.
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.submit(|| {}), Ok(1));
        assert_eq!(pool.submit(|| {}), Ok(2));
        assert_eq!(pool.submit(|| {}), Err(PoolFull(2)));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }

    #[test]
    fn a_panicking_job_retires_and_respawns_the_worker() {
        let pool = WorkerPool::new(1, 16);
        pool.submit(|| panic!("poisoned job")).unwrap();
        // The single worker must heal; a job submitted after the panic
        // still completes.
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if pool
                .submit({
                    let d = Arc::clone(&d);
                    move || {
                        d.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .is_ok()
            {
                break;
            }
            assert!(Instant::now() < deadline, "pool never healed");
            std::thread::sleep(Duration::from_millis(1));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while done.load(Ordering::Relaxed) == 0 {
            assert!(Instant::now() < deadline, "healed worker never ran the job");
            std::thread::sleep(Duration::from_millis(1));
        }
        let health = pool.health();
        assert_eq!(health.panics, 1);
        assert_eq!(health.respawns, 1);
        assert_eq!(health.live, 1);
        pool.shutdown();
    }
}
