//! Bounded worker pool with FIFO admission control.
//!
//! "On the Cost of Concurrency in Transactional Memory"'s lesson applies
//! to the serving layer itself: admitting unbounded concurrent simulations
//! degrades everyone. The pool therefore runs a fixed number of worker
//! threads over one FIFO queue with a hard depth bound — a submission
//! against a full queue is *rejected immediately* ([`PoolFull`], surfaced
//! as HTTP 429 with the current depth in a header) instead of piling up
//! latency for every queued client.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Rejection: the queue was at capacity. Carries the depth observed at
/// rejection time (== capacity) for the `x-asf-queue-depth` header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolFull(pub usize);

struct State {
    queue: VecDeque<Job>,
    open: bool,
}

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
}

/// Fixed-size worker pool over a bounded FIFO queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Start `workers` threads serving a queue bounded at `capacity`
    /// pending jobs (jobs being executed do not count against the bound).
    pub fn new(workers: usize, capacity: usize) -> WorkerPool {
        assert!(workers >= 1, "need at least one worker");
        assert!(capacity >= 1, "queue capacity must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), open: true }),
            cv: Condvar::new(),
            capacity,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("asf-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Enqueue a job. `Ok(depth)` is the queue depth right after the
    /// enqueue; `Err(PoolFull)` rejects without blocking when the queue is
    /// at capacity or the pool is shutting down.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<usize, PoolFull> {
        let mut state = self.shared.state.lock().unwrap();
        if !state.open || state.queue.len() >= self.shared.capacity {
            return Err(PoolFull(state.queue.len()));
        }
        state.queue.push_back(Box::new(job));
        let depth = state.queue.len();
        drop(state);
        self.shared.cv.notify_one();
        Ok(depth)
    }

    /// Pending (not yet started) jobs.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// The queue's depth bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Stop accepting work, drain the queue, and join every worker.
    pub fn shutdown(mut self) {
        self.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    fn close(&self) {
        self.shared.state.lock().unwrap().open = false;
        self.shared.cv.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still stops the workers;
        // queued-but-unstarted jobs are executed first (drain semantics).
        self.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if !state.open {
                    return;
                }
                state = shared.cv.wait(state).unwrap();
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_submitted_jobs_and_drains_on_shutdown() {
        let pool = WorkerPool::new(2, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the single worker so the queue actually fills.
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .unwrap();
        // Wait until the worker has dequeued the blocker.
        while pool.depth() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.submit(|| {}), Ok(1));
        assert_eq!(pool.submit(|| {}), Ok(2));
        assert_eq!(pool.submit(|| {}), Err(PoolFull(2)));
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        pool.shutdown();
    }
}
