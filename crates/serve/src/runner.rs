//! Execute one [`JobSpec`] and package the servable artifact.
//!
//! The runner is the only place a serve-layer result is ever produced, so
//! its output format *is* the cache-value format: a deterministic
//! `asf-serve-v1` JSON document whose bytes depend only on the spec (the
//! simulator is deterministic and `RunStats::to_json` is canonical), plus
//! the optional PR-5 observability artifacts when the spec asked for them.
//! Byte-determinism of the body is what makes "the second response is a
//! byte-identical cache hit" a checkable contract rather than an
//! implementation accident.

use crate::cache::CachedResult;
use crate::spec::JobSpec;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::obs::ObsConfig;
use asf_machine::snapshot::{CancelToken, ProgressProbe};
use asf_machine::trace::ChromeTraceSink;
use asf_stats::digest::run_stats_digest;
use asf_stats::run::RunStats;
use std::sync::Arc;

/// Interval width of the metrics gauges when a job observes (matches the
/// harness `observe` experiment).
const OBS_INTERVAL_CYCLES: u64 = 100_000;

/// Render the servable result document for `spec`'s finished `stats`.
pub fn result_body(spec: &JobSpec, stats: &RunStats) -> String {
    format!(
        "{{\n  \"schema\": \"asf-serve-v1\",\n  \"spec\": {},\n  \
         \"spec_digest\": \"{:016x}\",\n  \"stats_digest\": \"{:016x}\",\n  \
         \"stats\": {}\n}}\n",
        spec.canonical(),
        spec.digest(),
        run_stats_digest(stats),
        stats.to_json()
    )
}

/// Run the simulation a spec names, publishing progress through `probe`
/// when one is attached. Errors (watchdog, …) come back as strings — the
/// serve layer reports them to every coalesced waiter and caches nothing.
pub fn run_spec(
    spec: &JobSpec,
    probe: Option<Arc<ProgressProbe>>,
) -> Result<CachedResult, String> {
    run_spec_cancellable(spec, probe, None)
}

/// [`run_spec`] with a cooperative [`CancelToken`]: the machine checks it
/// at the progress-publish cadence and unwinds with a cancellation error
/// when a supervisor (client cancel or the server's deadline watchdog)
/// has fired it. A cancelled run produces no result and is never cached.
pub fn run_spec_cancellable(
    spec: &JobSpec,
    probe: Option<Arc<ProgressProbe>>,
    cancel: Option<Arc<CancelToken>>,
) -> Result<CachedResult, String> {
    let workload = asf_workloads::by_name(&spec.bench, spec.scale)
        .ok_or_else(|| format!("unknown benchmark {:?}", spec.bench))?;
    let mut cfg = SimConfig::paper_seeded(spec.detector, spec.seed);
    cfg.faults = spec.fault_plan();
    let mut machine = Machine::new(workload.as_ref(), cfg);
    if let Some(probe) = probe {
        machine.attach_progress_probe(probe);
    }
    if let Some(cancel) = cancel {
        machine.attach_cancel_token(cancel);
    }
    if spec.observe {
        machine.enable_observability(ObsConfig {
            interval_cycles: OBS_INTERVAL_CYCLES,
            profile: true,
        });
        machine.set_trace_sink(Box::new(ChromeTraceSink::new()));
    }
    let out = machine.try_run_to_completion().map_err(|e| e.to_string())?;
    let trace = if spec.observe {
        let mut sink = machine.take_trace_sink().expect("sink installed above");
        let sink = sink
            .as_any()
            .downcast_mut::<ChromeTraceSink>()
            .expect("the installed sink is a ChromeTraceSink");
        let sink = std::mem::replace(sink, ChromeTraceSink::new());
        Some(Arc::new(sink.finish()))
    } else {
        None
    };
    let metrics = out.obs.map(|report| Arc::new(report.to_json()));
    Ok(CachedResult {
        spec_digest: spec.digest(),
        stats_digest: run_stats_digest(&out.stats),
        body: Arc::new(result_body(spec, &out.stats)),
        metrics,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_core::detector::DetectorKind;
    use asf_workloads::Scale;

    #[test]
    fn run_is_deterministic_and_body_parses() {
        let spec = JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Small, 0xA5);
        let a = run_spec(&spec, None).unwrap();
        let b = run_spec(&spec, None).unwrap();
        assert_eq!(*a.body, *b.body, "result body must be byte-deterministic");
        assert_eq!(a.stats_digest, b.stats_digest);
        let root = asf_stats::json::parse(&a.body).unwrap();
        assert_eq!(root.field("schema").unwrap().as_str().unwrap(), "asf-serve-v1");
        let stats =
            RunStats::from_value(root.field("stats").unwrap()).expect("stats parse back");
        assert_eq!(run_stats_digest(&stats), a.stats_digest);
        assert!(a.metrics.is_none() && a.trace.is_none());
    }

    #[test]
    fn observing_attaches_artifacts_without_touching_stats() {
        let plain = JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Small, 0xA5);
        let mut observed = plain.clone();
        observed.observe = true;
        let a = run_spec(&plain, None).unwrap();
        let b = run_spec(&observed, None).unwrap();
        // Different content address (observe is part of the spec), same
        // simulated outcome (observability is bit-transparent).
        assert_ne!(plain.digest(), observed.digest());
        assert_eq!(a.stats_digest, b.stats_digest);
        assert!(b.metrics.is_some() && b.trace.is_some());
        assert!(b.metrics.unwrap().contains("asf-obs-v1"));
    }

    #[test]
    fn a_prefired_cancel_token_stops_the_run_with_a_typed_message() {
        let spec = JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Small, 0xA5);
        let token = Arc::new(CancelToken::new());
        token.cancel(asf_machine::snapshot::CancelKind::Deadline);
        let err = run_spec_cancellable(&spec, None, Some(token)).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        // An attached-but-unfired token is bit-transparent.
        let live = Arc::new(CancelToken::new());
        let a = run_spec_cancellable(&spec, None, Some(live)).unwrap();
        let b = run_spec(&spec, None).unwrap();
        assert_eq!(*a.body, *b.body);
    }

    #[test]
    fn probe_sees_progress_and_completion() {
        let spec = JobSpec::new("intruder", DetectorKind::Baseline, Scale::Small, 3);
        let probe = Arc::new(ProgressProbe::new());
        run_spec(&spec, Some(Arc::clone(&probe))).unwrap();
        let snap = probe.snapshot();
        assert!(snap.done, "final publish marks the run done");
        assert!(snap.tx_committed > 0 && snap.cycles > 0, "{snap:?}");
    }
}
