//! Job specifications and their canonical, digestable form.
//!
//! A [`JobSpec`] names one deterministic simulation — benchmark, detector,
//! scale, seed, fault profile, observability — which makes its result
//! *content-addressable*: [`JobSpec::canonical`] renders the spec with a
//! fixed field order and formatting, [`JobSpec::digest`] is the FNV-1a of
//! those bytes, and two submissions whose JSON bodies differ only in field
//! order (or in omitted-but-defaulted fields) land on the same digest and
//! therefore the same cache entry. The proptest suite in
//! `crates/serve/tests/cache.rs` pins this reordering invariance.

use asf_core::detector::DetectorKind;
use asf_machine::fault::FaultPlan;
use asf_stats::digest::bytes_digest;
use asf_stats::json::{parse, JsonValue};
use asf_workloads::Scale;

/// One simulation job, fully determining its result.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// Benchmark name (one of the paper's ten kernels).
    pub bench: String,
    /// Conflict detector under test.
    pub detector: DetectorKind,
    /// Input scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Named fault-injection profile: `none`, `light`, `heavy` or
    /// `max_spurious` (the presets of [`FaultPlan`]).
    pub faults: String,
    /// Also produce the PR-5 observability artifacts (metrics snapshot +
    /// Chrome trace) alongside the result.
    pub observe: bool,
}

/// Parse a detector label (`baseline`, `perfect`, `sb<N>`).
pub fn detector_from_label(label: &str) -> Result<DetectorKind, String> {
    match label {
        "baseline" => Ok(DetectorKind::Baseline),
        "perfect" => Ok(DetectorKind::Perfect),
        _ => {
            let n: usize = label
                .strip_prefix("sb")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("unknown detector {label:?}"))?;
            DetectorKind::SubBlock(n).validate()
        }
    }
}

/// Parse a scale label (`small`, `standard`, `large`, `huge`).
pub fn scale_from_label(label: &str) -> Result<Scale, String> {
    match label {
        "small" => Ok(Scale::Small),
        "standard" => Ok(Scale::Standard),
        "large" => Ok(Scale::Large),
        "huge" => Ok(Scale::Huge),
        other => Err(format!("unknown scale {other:?}")),
    }
}

/// Render a scale as its label.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Standard => "standard",
        Scale::Large => "large",
        Scale::Huge => "huge",
    }
}

/// The named fault profiles a spec may select.
pub const FAULT_PROFILES: &[&str] = &["none", "light", "heavy", "max_spurious"];

impl JobSpec {
    /// A standard-profile spec: no faults, no observability artifacts.
    pub fn new(bench: &str, detector: DetectorKind, scale: Scale, seed: u64) -> JobSpec {
        JobSpec {
            bench: bench.to_string(),
            detector,
            scale,
            seed,
            faults: "none".to_string(),
            observe: false,
        }
    }

    /// Parse a submission body. Field order is free; `bench`, `detector`
    /// and `seed` are required; `scale` defaults to `standard`, `faults`
    /// to `none`, `observe` to `false`. Unknown fields are an error — a
    /// field the canonicalizer does not render must not be able to smuggle
    /// meaning past the content address.
    pub fn from_json(src: &str) -> Result<JobSpec, String> {
        let root = parse(src)?;
        let JsonValue::Obj(pairs) = &root else {
            return Err("job spec must be a JSON object".to_string());
        };
        for (key, _) in pairs {
            if !matches!(
                key.as_str(),
                "bench" | "detector" | "scale" | "seed" | "faults" | "observe"
            ) {
                return Err(format!("unknown job-spec field {key:?}"));
            }
        }
        let bench = root.field("bench")?.as_str()?.to_string();
        let detector = detector_from_label(root.field("detector")?.as_str()?)?;
        let seed = root.field("seed")?.as_u64()?;
        let scale = match root.get("scale") {
            Some(v) => scale_from_label(v.as_str()?)?,
            None => Scale::Standard,
        };
        let faults = match root.get("faults") {
            Some(v) => v.as_str()?.to_string(),
            None => "none".to_string(),
        };
        if !FAULT_PROFILES.contains(&faults.as_str()) {
            return Err(format!(
                "unknown fault profile {faults:?} (expected one of {FAULT_PROFILES:?})"
            ));
        }
        let observe = match root.get("observe") {
            Some(JsonValue::Bool(b)) => *b,
            Some(other) => return Err(format!("observe must be a boolean, got {other:?}")),
            None => false,
        };
        let spec = JobSpec { bench, detector, scale, seed, faults, observe };
        spec.validate()?;
        Ok(spec)
    }

    /// Reject specs naming benchmarks outside the suite.
    pub fn validate(&self) -> Result<(), String> {
        if asf_workloads::by_name(&self.bench, self.scale).is_none() {
            return Err(format!("unknown benchmark {:?}", self.bench));
        }
        Ok(())
    }

    /// Canonical serialisation: fixed field order (alphabetical), fixed
    /// formatting, every field rendered including defaults. Equal specs —
    /// however their submission bodies were spelled — produce equal bytes.
    pub fn canonical(&self) -> String {
        format!(
            "{{\"bench\": \"{}\", \"detector\": \"{}\", \"faults\": \"{}\", \
             \"observe\": {}, \"scale\": \"{}\", \"seed\": {}}}",
            self.bench,
            self.detector.label(),
            self.faults,
            self.observe,
            scale_label(self.scale),
            self.seed
        )
    }

    /// The spec's content address: FNV-1a of [`JobSpec::canonical`].
    pub fn digest(&self) -> u64 {
        bytes_digest(self.canonical().as_bytes())
    }

    /// The digest in the form the HTTP API uses as a job id.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// The fault plan the named profile stands for.
    pub fn fault_plan(&self) -> FaultPlan {
        match self.faults.as_str() {
            "light" => FaultPlan::light(),
            "heavy" => FaultPlan::heavy(),
            "max_spurious" => FaultPlan::max_spurious(),
            _ => FaultPlan::none(),
        }
    }
}

/// Parse a 16-hex-digit job id back into a digest.
pub fn parse_digest_hex(id: &str) -> Result<u64, String> {
    if id.len() != 16 {
        return Err(format!("job id must be 16 hex digits, got {id:?}"));
    }
    u64::from_str_radix(id, 16).map_err(|e| format!("bad job id {id:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_canonicalize() {
        let spec = JobSpec::from_json(
            r#"{"seed": 7, "bench": "ssca2", "detector": "sb4"}"#,
        )
        .unwrap();
        assert_eq!(spec.detector, DetectorKind::SubBlock(4));
        assert_eq!(spec.scale, Scale::Standard);
        assert_eq!(
            spec.canonical(),
            "{\"bench\": \"ssca2\", \"detector\": \"sb4\", \"faults\": \"none\", \
             \"observe\": false, \"scale\": \"standard\", \"seed\": 7}"
        );
        // The canonical form re-parses to the same spec and digest.
        let reparsed = JobSpec::from_json(&spec.canonical()).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.digest(), spec.digest());
    }

    #[test]
    fn field_order_and_defaults_do_not_change_the_digest() {
        let a = JobSpec::from_json(
            r#"{"bench": "vacation", "detector": "baseline", "seed": 3}"#,
        )
        .unwrap();
        let b = JobSpec::from_json(
            r#"{"seed": 3, "scale": "standard", "observe": false,
                "detector": "baseline", "faults": "none", "bench": "vacation"}"#,
        )
        .unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn distinct_specs_have_distinct_digests() {
        let base = JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Small, 1);
        let mut seed = base.clone();
        seed.seed = 2;
        let mut det = base.clone();
        det.detector = DetectorKind::SubBlock(8);
        let mut obs = base.clone();
        obs.observe = true;
        let digests = [base.digest(), seed.digest(), det.digest(), obs.digest()];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for (body, what) in [
            (r#"{"bench": "nope", "detector": "sb4", "seed": 1}"#, "unknown benchmark"),
            (r#"{"bench": "ssca2", "detector": "sb3", "seed": 1}"#, "bad sub-block count"),
            (r#"{"bench": "ssca2", "detector": "sb4"}"#, "missing seed"),
            (r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "extra": 1}"#, "unknown field"),
            (r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "faults": "odd"}"#, "bad profile"),
            (r#"[1]"#, "not an object"),
        ] {
            assert!(JobSpec::from_json(body).is_err(), "{what} accepted: {body}");
        }
    }

    #[test]
    fn digest_hex_roundtrips() {
        let spec = JobSpec::new("kmeans", DetectorKind::Perfect, Scale::Small, 9);
        assert_eq!(parse_digest_hex(&spec.digest_hex()).unwrap(), spec.digest());
        assert!(parse_digest_hex("xyz").is_err());
    }
}
