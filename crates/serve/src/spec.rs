//! Job specifications and their canonical, digestable form.
//!
//! A [`JobSpec`] names one deterministic simulation — benchmark, detector,
//! scale, seed, fault profile, observability — which makes its result
//! *content-addressable*: [`JobSpec::canonical`] renders the spec with a
//! fixed field order and formatting, [`JobSpec::digest`] is the FNV-1a of
//! those bytes, and two submissions whose JSON bodies differ only in field
//! order (or in omitted-but-defaulted fields) land on the same digest and
//! therefore the same cache entry. The proptest suite in
//! `crates/serve/tests/cache.rs` pins this reordering invariance.

use asf_core::detector::DetectorKind;
use asf_machine::fault::FaultPlan;
use asf_stats::digest::bytes_digest;
use asf_stats::json::{parse, JsonValue};
use asf_workloads::Scale;

/// One simulation job, fully determining its result.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    /// Benchmark name (one of the paper's ten kernels).
    pub bench: String,
    /// Conflict detector under test.
    pub detector: DetectorKind,
    /// Input scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Named fault-injection profile: `none`, `light`, `heavy` or
    /// `max_spurious` (the presets of [`FaultPlan`]).
    pub faults: String,
    /// Also produce the PR-5 observability artifacts (metrics snapshot +
    /// Chrome trace) alongside the result.
    pub observe: bool,
}

/// Parse a detector label (`baseline`, `perfect`, `sb<N>`).
pub fn detector_from_label(label: &str) -> Result<DetectorKind, String> {
    match label {
        "baseline" => Ok(DetectorKind::Baseline),
        "perfect" => Ok(DetectorKind::Perfect),
        _ => {
            let n: usize = label
                .strip_prefix("sb")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| format!("unknown detector {label:?}"))?;
            DetectorKind::SubBlock(n).validate()
        }
    }
}

/// Parse a scale label (`small`, `standard`, `large`, `huge`).
pub fn scale_from_label(label: &str) -> Result<Scale, String> {
    match label {
        "small" => Ok(Scale::Small),
        "standard" => Ok(Scale::Standard),
        "large" => Ok(Scale::Large),
        "huge" => Ok(Scale::Huge),
        other => Err(format!("unknown scale {other:?}")),
    }
}

/// Render a scale as its label.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Standard => "standard",
        Scale::Large => "large",
        Scale::Huge => "huge",
    }
}

/// The named fault profiles a spec may select.
pub const FAULT_PROFILES: &[&str] = &["none", "light", "heavy", "max_spurious"];

impl JobSpec {
    /// A standard-profile spec: no faults, no observability artifacts.
    pub fn new(bench: &str, detector: DetectorKind, scale: Scale, seed: u64) -> JobSpec {
        JobSpec {
            bench: bench.to_string(),
            detector,
            scale,
            seed,
            faults: "none".to_string(),
            observe: false,
        }
    }

    /// Parse a submission body. Field order is free; `bench`, `detector`
    /// and `seed` are required; `scale` defaults to `standard`, `faults`
    /// to `none`, `observe` to `false`. Unknown fields are an error — a
    /// field the canonicalizer does not render must not be able to smuggle
    /// meaning past the content address. Note `deadline_ms` is *not* a
    /// spec field (it is submission metadata, see [`Submission`]) and is
    /// rejected here like any other unknown key.
    pub fn from_json(src: &str) -> Result<JobSpec, String> {
        let root = parse(src)?;
        JobSpec::from_value(&root)
    }

    /// Parse a spec from an already-parsed JSON object (the spec fields
    /// only — the caller has removed any submission metadata).
    fn from_value(root: &JsonValue) -> Result<JobSpec, String> {
        let JsonValue::Obj(pairs) = root else {
            return Err("job spec must be a JSON object".to_string());
        };
        for (key, _) in pairs {
            if !matches!(
                key.as_str(),
                "bench" | "detector" | "scale" | "seed" | "faults" | "observe"
            ) {
                return Err(format!("unknown job-spec field {key:?}"));
            }
        }
        let bench = root.field("bench")?.as_str()?.to_string();
        let detector = detector_from_label(root.field("detector")?.as_str()?)?;
        let seed = root.field("seed")?.as_u64()?;
        let scale = match root.get("scale") {
            Some(v) => scale_from_label(v.as_str()?)?,
            None => Scale::Standard,
        };
        let faults = match root.get("faults") {
            Some(v) => v.as_str()?.to_string(),
            None => "none".to_string(),
        };
        if !FAULT_PROFILES.contains(&faults.as_str()) {
            return Err(format!(
                "unknown fault profile {faults:?} (expected one of {FAULT_PROFILES:?})"
            ));
        }
        let observe = match root.get("observe") {
            Some(JsonValue::Bool(b)) => *b,
            Some(other) => return Err(format!("observe must be a boolean, got {other:?}")),
            None => false,
        };
        let spec = JobSpec { bench, detector, scale, seed, faults, observe };
        spec.validate()?;
        Ok(spec)
    }

    /// Reject specs naming benchmarks outside the suite.
    pub fn validate(&self) -> Result<(), String> {
        if asf_workloads::by_name(&self.bench, self.scale).is_none() {
            return Err(format!("unknown benchmark {:?}", self.bench));
        }
        Ok(())
    }

    /// Canonical serialisation: fixed field order (alphabetical), fixed
    /// formatting, every field rendered including defaults. Equal specs —
    /// however their submission bodies were spelled — produce equal bytes.
    pub fn canonical(&self) -> String {
        format!(
            "{{\"bench\": \"{}\", \"detector\": \"{}\", \"faults\": \"{}\", \
             \"observe\": {}, \"scale\": \"{}\", \"seed\": {}}}",
            self.bench,
            self.detector.label(),
            self.faults,
            self.observe,
            scale_label(self.scale),
            self.seed
        )
    }

    /// The spec's content address: FNV-1a of [`JobSpec::canonical`].
    pub fn digest(&self) -> u64 {
        bytes_digest(self.canonical().as_bytes())
    }

    /// The digest in the form the HTTP API uses as a job id.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }

    /// The fault plan the named profile stands for.
    pub fn fault_plan(&self) -> FaultPlan {
        match self.faults.as_str() {
            "light" => FaultPlan::light(),
            "heavy" => FaultPlan::heavy(),
            "max_spurious" => FaultPlan::max_spurious(),
            _ => FaultPlan::none(),
        }
    }
}

/// One `POST /v1/jobs` body: the content-addressed [`JobSpec`] plus
/// submission-level metadata that must **not** enter the content address.
///
/// `deadline_ms` bounds how long the server may spend on this submission;
/// the *result* of a deterministic simulation does not depend on how long
/// a client was willing to wait for it, so two submissions differing only
/// in deadline land on the same digest and share one cache entry. Keeping
/// the field out of [`JobSpec`] (whose parser rejects it as unknown) makes
/// that structural rather than a convention.
#[derive(Clone, Debug, PartialEq)]
pub struct Submission {
    /// The job to run (or answer from cache).
    pub spec: JobSpec,
    /// Client deadline in milliseconds, if given. `None` means "use the
    /// server default"; the server also clamps to its hard cap. Zero is
    /// rejected at parse time — a submission that is already expired is a
    /// client bug, not a job.
    pub deadline_ms: Option<u64>,
}

impl Submission {
    /// Parse a submission body: every [`JobSpec`] field plus optional
    /// `deadline_ms`.
    pub fn from_json(src: &str) -> Result<Submission, String> {
        let root = parse(src)?;
        let JsonValue::Obj(pairs) = &root else {
            return Err("job spec must be a JSON object".to_string());
        };
        let deadline_ms = match root.get("deadline_ms") {
            None => None,
            Some(v) => {
                let ms = v.as_u64().map_err(|e| format!("bad deadline_ms: {e}"))?;
                if ms == 0 {
                    return Err("deadline_ms must be positive".to_string());
                }
                Some(ms)
            }
        };
        let spec_pairs: Vec<(String, JsonValue)> = pairs
            .iter()
            .filter(|(k, _)| k != "deadline_ms")
            .cloned()
            .collect();
        let spec = JobSpec::from_value(&JsonValue::Obj(spec_pairs))?;
        Ok(Submission { spec, deadline_ms })
    }
}

/// Parse a 16-hex-digit job id back into a digest.
pub fn parse_digest_hex(id: &str) -> Result<u64, String> {
    if id.len() != 16 {
        return Err(format!("job id must be 16 hex digits, got {id:?}"));
    }
    u64::from_str_radix(id, 16).map_err(|e| format!("bad job id {id:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_canonicalize() {
        let spec = JobSpec::from_json(
            r#"{"seed": 7, "bench": "ssca2", "detector": "sb4"}"#,
        )
        .unwrap();
        assert_eq!(spec.detector, DetectorKind::SubBlock(4));
        assert_eq!(spec.scale, Scale::Standard);
        assert_eq!(
            spec.canonical(),
            "{\"bench\": \"ssca2\", \"detector\": \"sb4\", \"faults\": \"none\", \
             \"observe\": false, \"scale\": \"standard\", \"seed\": 7}"
        );
        // The canonical form re-parses to the same spec and digest.
        let reparsed = JobSpec::from_json(&spec.canonical()).unwrap();
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.digest(), spec.digest());
    }

    #[test]
    fn field_order_and_defaults_do_not_change_the_digest() {
        let a = JobSpec::from_json(
            r#"{"bench": "vacation", "detector": "baseline", "seed": 3}"#,
        )
        .unwrap();
        let b = JobSpec::from_json(
            r#"{"seed": 3, "scale": "standard", "observe": false,
                "detector": "baseline", "faults": "none", "bench": "vacation"}"#,
        )
        .unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn distinct_specs_have_distinct_digests() {
        let base = JobSpec::new("ssca2", DetectorKind::SubBlock(4), Scale::Small, 1);
        let mut seed = base.clone();
        seed.seed = 2;
        let mut det = base.clone();
        det.detector = DetectorKind::SubBlock(8);
        let mut obs = base.clone();
        obs.observe = true;
        let digests = [base.digest(), seed.digest(), det.digest(), obs.digest()];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        for (body, what) in [
            (r#"{"bench": "nope", "detector": "sb4", "seed": 1}"#, "unknown benchmark"),
            (r#"{"bench": "ssca2", "detector": "sb3", "seed": 1}"#, "bad sub-block count"),
            (r#"{"bench": "ssca2", "detector": "sb4"}"#, "missing seed"),
            (r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "extra": 1}"#, "unknown field"),
            (r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "faults": "odd"}"#, "bad profile"),
            (r#"[1]"#, "not an object"),
        ] {
            assert!(JobSpec::from_json(body).is_err(), "{what} accepted: {body}");
        }
    }

    #[test]
    fn deadline_is_submission_metadata_not_spec() {
        // The spec parser must reject deadline_ms (it is not part of the
        // content address)…
        assert!(JobSpec::from_json(
            r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "deadline_ms": 500}"#
        )
        .is_err());
        // …while the submission parser accepts it and two submissions
        // differing only in deadline share one digest.
        let fast = Submission::from_json(
            r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "deadline_ms": 500}"#,
        )
        .unwrap();
        let slow = Submission::from_json(
            r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "deadline_ms": 60000}"#,
        )
        .unwrap();
        let bare = Submission::from_json(r#"{"bench": "ssca2", "detector": "sb4", "seed": 1}"#)
            .unwrap();
        assert_eq!(fast.deadline_ms, Some(500));
        assert_eq!(bare.deadline_ms, None);
        assert_eq!(fast.spec.digest(), slow.spec.digest());
        assert_eq!(fast.spec.digest(), bare.spec.digest());
        // Zero and non-numeric deadlines are submission errors.
        for body in [
            r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "deadline_ms": 0}"#,
            r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "deadline_ms": "soon"}"#,
        ] {
            assert!(Submission::from_json(body).is_err(), "{body}");
        }
        // Unknown fields still fail through the submission path.
        assert!(Submission::from_json(
            r#"{"bench": "ssca2", "detector": "sb4", "seed": 1, "priority": 9}"#
        )
        .is_err());
    }

    #[test]
    fn digest_hex_roundtrips() {
        let spec = JobSpec::new("kmeans", DetectorKind::Perfect, Scale::Small, 9);
        assert_eq!(parse_digest_hex(&spec.digest_hex()).unwrap(), spec.digest());
        assert!(parse_digest_hex("xyz").is_err());
    }
}
