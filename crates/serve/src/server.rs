//! The `asf-serve` service: HTTP/JSON API over the bounded pool and the
//! content-addressed cache.
//!
//! ## Endpoints
//!
//! | Method | Path                  | Purpose                                   |
//! |--------|-----------------------|-------------------------------------------|
//! | GET    | `/v1/healthz`         | liveness                                  |
//! | POST   | `/v1/jobs`            | submit a job spec (429 + depth when full) |
//! | GET    | `/v1/jobs/:id`        | status + progress snapshot                |
//! | GET    | `/v1/jobs/:id/result` | the `asf-serve-v1` artifact (202 pending) |
//! | GET    | `/v1/jobs/:id/metrics`| `asf-obs-v1` snapshot (observed jobs)     |
//! | GET    | `/v1/jobs/:id/trace`  | Chrome trace JSON (observed jobs)         |
//! | GET    | `/v1/cache/stats`     | cache + admission counters                |
//! | POST   | `/v1/shutdown`        | stop accepting, drain, exit               |
//!
//! A job's id **is** its spec digest (16 hex digits): submitting is
//! idempotent, a repeat submission of a completed spec answers `cached`
//! in O(1), and concurrent identical submissions — whether they race
//! through the queue or arrive while one is running — coalesce onto a
//! single computation (`ResultCache::get_or_compute`'s single-flight).

use crate::cache::{CacheConfig, ResultCache};
use crate::http::{read_request, write_response, Request};
use crate::pool::WorkerPool;
use crate::runner::run_spec;
use crate::spec::{parse_digest_hex, JobSpec};
use asf_machine::snapshot::ProgressProbe;
use asf_mem::fxhash::FxHashMap;
use asf_stats::json::escape;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Bind address; port 0 picks an ephemeral port (the smoke/loadtest
    /// default).
    pub addr: String,
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Pending-job bound; submissions beyond it get 429.
    pub queue_capacity: usize,
    /// In-memory result-cache entries.
    pub cache_capacity: usize,
    /// Persistent store directory (`None` = memory only).
    pub disk_dir: Option<PathBuf>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(4),
            queue_capacity: 256,
            cache_capacity: 1024,
            disk_dir: None,
        }
    }
}

/// Lifecycle of one registered job.
#[derive(Clone, Debug)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Failed(String),
}

impl JobPhase {
    fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed(_) => "failed",
        }
    }
}

struct JobEntry {
    spec: JobSpec,
    phase: Mutex<JobPhase>,
    probe: Arc<ProgressProbe>,
}

/// Shared service state (cache, registry, pool, counters). Exposed so the
/// in-process load test can read counters without a round-trip.
pub struct ServeState {
    /// The content-addressed result cache.
    pub cache: ResultCache,
    jobs: Mutex<FxHashMap<u64, Arc<JobEntry>>>,
    pool: WorkerPool,
    /// Total submissions accepted (cached answers included).
    pub jobs_submitted: AtomicU64,
    /// Submissions answered `cached` straight from the store.
    pub submit_cache_hits: AtomicU64,
    /// Submissions coalesced onto an already queued/running identical job.
    pub submit_coalesced: AtomicU64,
    /// Submissions rejected with 429 (queue at capacity).
    pub jobs_rejected: AtomicU64,
    /// Jobs that completed successfully.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed (watchdog etc.).
    pub jobs_failed: AtomicU64,
    shutting_down: AtomicBool,
}

impl ServeState {
    /// Current pending-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.pool.depth()
    }

    /// The `GET /v1/cache/stats` document.
    pub fn stats_json(&self) -> String {
        format!(
            "{{\n  \"cache\": {},\n  \"entries\": {},\n  \"capacity\": {},\n  \
             \"queue_depth\": {},\n  \"queue_capacity\": {},\n  \
             \"jobs_submitted\": {},\n  \"submit_cache_hits\": {},\n  \
             \"submit_coalesced\": {},\n  \"jobs_rejected\": {},\n  \
             \"jobs_completed\": {},\n  \"jobs_failed\": {}\n}}\n",
            self.cache.counters.to_json(),
            self.cache.len(),
            self.cache.capacity(),
            self.queue_depth(),
            self.pool.capacity(),
            self.jobs_submitted.load(Ordering::Relaxed),
            self.submit_cache_hits.load(Ordering::Relaxed),
            self.submit_coalesced.load(Ordering::Relaxed),
            self.jobs_rejected.load(Ordering::Relaxed),
            self.jobs_completed.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
        )
    }
}

/// A running server. Dropping (or [`Server::shutdown`]) stops the accept
/// loop and drains the worker pool.
pub struct Server {
    state: Arc<ServeState>,
    port: u16,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, start the accept loop and the worker pool.
    pub fn start(opts: ServeOpts) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let port = listener.local_addr()?.port();
        let state = Arc::new(ServeState {
            cache: ResultCache::new(CacheConfig {
                capacity: opts.cache_capacity,
                disk_dir: opts.disk_dir.clone(),
            })?,
            jobs: Mutex::new(FxHashMap::default()),
            pool: WorkerPool::new(opts.workers, opts.queue_capacity),
            jobs_submitted: AtomicU64::new(0),
            submit_cache_hits: AtomicU64::new(0),
            submit_coalesced: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("asf-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutting_down.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    let conn_state = Arc::clone(&accept_state);
                    let _ = std::thread::Builder::new()
                        .name("asf-serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &conn_state));
                }
            })
            .expect("spawn accept loop");
        Ok(Server { state, port, accept: Some(accept) })
    }

    /// The bound port (useful with an ephemeral bind).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// `host:port` of the listener.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// The shared service state (counters, cache) for in-process callers.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Block until the accept loop exits on its own — i.e. until some
    /// client issues `POST /v1/shutdown`. The foreground `asf-repro serve`
    /// command parks here.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting connections and join the accept loop. Worker threads
    /// drain their queue when the last state reference drops.
    pub fn shutdown(mut self) {
        self.signal_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    fn signal_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::Relaxed);
        // Unblock the accept loop with one throwaway connection. Always
        // attempted (not just on the first signal): the HTTP shutdown
        // endpoint may have set the flag without waking the listener, and
        // a connect against an already-dead listener is harmless.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.signal_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServeState>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    while let Ok(Some(req)) = read_request(&mut reader) {
        let keep_going = respond(&mut write_half, &req, state);
        if !keep_going || state.shutting_down.load(Ordering::Relaxed) {
            break;
        }
    }
}

/// Route one request; returns `false` when the connection should close.
fn respond(stream: &mut TcpStream, req: &Request, state: &Arc<ServeState>) -> bool {
    let segments: Vec<&str> = req.path.trim_matches('/').split('/').collect();
    let outcome = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => {
            write_response(stream, 200, &[], "{\"ok\": true}\n")
        }
        ("POST", ["v1", "jobs"]) => handle_submit(stream, req, state),
        ("GET", ["v1", "jobs", id]) => handle_status(stream, id, state),
        ("GET", ["v1", "jobs", id, "result"]) => handle_result(stream, id, state),
        ("GET", ["v1", "jobs", id, artifact @ ("metrics" | "trace")]) => {
            handle_artifact(stream, id, artifact, state)
        }
        ("GET", ["v1", "cache", "stats"]) => {
            write_response(stream, 200, &[], &state.stats_json())
        }
        ("POST", ["v1", "shutdown"]) => {
            let r = write_response(stream, 200, &[], "{\"shutting_down\": true}\n");
            state.shutting_down.store(true, Ordering::Relaxed);
            // Wake the accept loop so it observes the flag even when no
            // further client ever connects.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            let _ = r;
            return false;
        }
        (_, ["v1", ..]) => write_response(
            stream,
            405,
            &[],
            "{\"error\": \"method not allowed\"}\n",
        ),
        _ => write_response(stream, 404, &[], "{\"error\": \"no such endpoint\"}\n"),
    };
    outcome.is_ok()
}

fn depth_header(state: &ServeState) -> (&'static str, String) {
    ("x-asf-queue-depth", state.queue_depth().to_string())
}

fn submit_reply(id: &str, status: &str, depth: usize) -> String {
    format!("{{\"job\": \"{id}\", \"status\": \"{status}\", \"queue_depth\": {depth}}}\n")
}

fn handle_submit(
    stream: &mut TcpStream,
    req: &Request,
    state: &Arc<ServeState>,
) -> std::io::Result<()> {
    let body = String::from_utf8_lossy(&req.body);
    let spec = match JobSpec::from_json(&body) {
        Ok(spec) => spec,
        Err(e) => {
            return write_response(
                stream,
                400,
                &[depth_header(state)],
                &format!("{{\"error\": {}}}\n", escape(&e)),
            )
        }
    };
    let digest = spec.digest();
    let id = spec.digest_hex();
    state.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    // O(1) memoized repeat: answer straight from the store.
    if state.cache.lookup(digest).is_some() {
        state.submit_cache_hits.fetch_add(1, Ordering::Relaxed);
        mark_done_entry(state, digest, &spec);
        return write_response(
            stream,
            200,
            &[depth_header(state), ("x-asf-cache", "hit".to_string())],
            &submit_reply(&id, "cached", state.queue_depth()),
        );
    }
    // Coalesce onto an identical queued/running job.
    {
        let jobs = state.jobs.lock().unwrap();
        if let Some(entry) = jobs.get(&digest) {
            let phase = entry.phase.lock().unwrap().clone();
            if matches!(phase, JobPhase::Queued | JobPhase::Running) {
                state.submit_coalesced.fetch_add(1, Ordering::Relaxed);
                state.cache.counters.flight_joins.fetch_add(1, Ordering::Relaxed);
                return write_response(
                    stream,
                    200,
                    &[depth_header(state), ("x-asf-cache", "join".to_string())],
                    &submit_reply(&id, phase.label(), state.queue_depth()),
                );
            }
        }
    }
    // Admission control: reject instead of queueing unboundedly.
    let entry = Arc::new(JobEntry {
        spec: spec.clone(),
        phase: Mutex::new(JobPhase::Queued),
        probe: Arc::new(ProgressProbe::new()),
    });
    let job_state = Arc::clone(state);
    let job_entry = Arc::clone(&entry);
    let submit = state.pool.submit(move || execute_job(&job_state, &job_entry));
    match submit {
        Ok(depth) => {
            state.jobs.lock().unwrap().insert(digest, entry);
            write_response(
                stream,
                200,
                &[depth_header(state), ("x-asf-cache", "miss".to_string())],
                &submit_reply(&id, "queued", depth),
            )
        }
        Err(full) => {
            state.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            write_response(
                stream,
                429,
                &[("x-asf-queue-depth", full.0.to_string())],
                &format!(
                    "{{\"error\": \"queue full\", \"queue_depth\": {}, \
                     \"queue_capacity\": {}}}\n",
                    full.0,
                    state.pool.capacity()
                ),
            )
        }
    }
}

/// Register (or update) a registry entry for a spec already answered from
/// the cache, so the status endpoint reports `done` for it.
fn mark_done_entry(state: &ServeState, digest: u64, spec: &JobSpec) {
    let mut jobs = state.jobs.lock().unwrap();
    let entry = jobs.entry(digest).or_insert_with(|| {
        Arc::new(JobEntry {
            spec: spec.clone(),
            phase: Mutex::new(JobPhase::Done),
            probe: Arc::new(ProgressProbe::new()),
        })
    });
    *entry.phase.lock().unwrap() = JobPhase::Done;
}

/// Worker-side execution: run (or join) the computation, then publish the
/// phase transition.
fn execute_job(state: &Arc<ServeState>, entry: &Arc<JobEntry>) {
    *entry.phase.lock().unwrap() = JobPhase::Running;
    let probe = Arc::clone(&entry.probe);
    let spec = entry.spec.clone();
    let result = state
        .cache
        .get_or_compute(entry.spec.digest(), move || run_spec(&spec, Some(probe)));
    match result {
        Ok(_) => {
            state.jobs_completed.fetch_add(1, Ordering::Relaxed);
            *entry.phase.lock().unwrap() = JobPhase::Done;
        }
        Err(e) => {
            state.jobs_failed.fetch_add(1, Ordering::Relaxed);
            *entry.phase.lock().unwrap() = JobPhase::Failed(e);
        }
    }
}

fn lookup_entry(state: &ServeState, id: &str) -> Result<(u64, Option<Arc<JobEntry>>), String> {
    let digest = parse_digest_hex(id)?;
    let entry = state.jobs.lock().unwrap().get(&digest).cloned();
    Ok((digest, entry))
}

fn handle_status(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServeState>,
) -> std::io::Result<()> {
    let (digest, entry) = match lookup_entry(state, id) {
        Ok(pair) => pair,
        Err(e) => {
            return write_response(stream, 400, &[], &format!("{{\"error\": {}}}\n", escape(&e)))
        }
    };
    if let Some(entry) = entry {
        let phase = entry.phase.lock().unwrap().clone();
        let error = match &phase {
            JobPhase::Failed(e) => format!(", \"error\": {}", escape(e)),
            _ => String::new(),
        };
        let body = format!(
            "{{\"job\": \"{id}\", \"status\": \"{}\", \"spec\": {}, \
             \"progress\": {}{error}, \"queue_depth\": {}}}\n",
            phase.label(),
            entry.spec.canonical(),
            entry.probe.snapshot().to_json(),
            state.queue_depth(),
        );
        return write_response(stream, 200, &[depth_header(state)], &body);
    }
    // Not registered this lifetime — the disk store may still answer.
    if state.cache.lookup(digest).is_some() {
        return write_response(
            stream,
            200,
            &[depth_header(state)],
            &format!("{{\"job\": \"{id}\", \"status\": \"cached\"}}\n"),
        );
    }
    write_response(stream, 404, &[], "{\"error\": \"unknown job\"}\n")
}

fn handle_result(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServeState>,
) -> std::io::Result<()> {
    let (digest, entry) = match lookup_entry(state, id) {
        Ok(pair) => pair,
        Err(e) => {
            return write_response(stream, 400, &[], &format!("{{\"error\": {}}}\n", escape(&e)))
        }
    };
    // Pending phases answer 202 without charging the cache a miss.
    if let Some(entry) = &entry {
        let phase = entry.phase.lock().unwrap().clone();
        match phase {
            JobPhase::Queued | JobPhase::Running => {
                return write_response(
                    stream,
                    202,
                    &[depth_header(state)],
                    &format!("{{\"job\": \"{id}\", \"status\": \"{}\"}}\n", phase.label()),
                );
            }
            JobPhase::Failed(e) => {
                return write_response(
                    stream,
                    500,
                    &[],
                    &format!(
                        "{{\"job\": \"{id}\", \"status\": \"failed\", \"error\": {}}}\n",
                        escape(&e)
                    ),
                );
            }
            JobPhase::Done => {}
        }
    }
    match state.cache.lookup(digest) {
        Some(hit) => write_response(
            stream,
            200,
            &[("x-asf-cache", "hit".to_string())],
            &hit.body,
        ),
        None if entry.is_some() => {
            // Done in the registry but evicted from memory *and* disk
            // (memory-only deployments): recompute on resubmission.
            write_response(stream, 404, &[], "{\"error\": \"result evicted; resubmit\"}\n")
        }
        None => write_response(stream, 404, &[], "{\"error\": \"unknown job\"}\n"),
    }
}

fn handle_artifact(
    stream: &mut TcpStream,
    id: &str,
    artifact: &str,
    state: &Arc<ServeState>,
) -> std::io::Result<()> {
    let (digest, _) = match lookup_entry(state, id) {
        Ok(pair) => pair,
        Err(e) => {
            return write_response(stream, 400, &[], &format!("{{\"error\": {}}}\n", escape(&e)))
        }
    };
    let Some(hit) = state.cache.lookup(digest) else {
        return write_response(stream, 404, &[], "{\"error\": \"unknown or pending job\"}\n");
    };
    let payload = if artifact == "metrics" { &hit.metrics } else { &hit.trace };
    match payload {
        Some(text) => write_response(stream, 200, &[], text),
        None => write_response(
            stream,
            404,
            &[],
            "{\"error\": \"job was not submitted with observe: true\"}\n",
        ),
    }
}
