//! The `asf-serve` service: HTTP/JSON API over the bounded pool and the
//! content-addressed cache.
//!
//! ## Endpoints
//!
//! | Method | Path                  | Purpose                                   |
//! |--------|-----------------------|-------------------------------------------|
//! | GET    | `/v1/healthz`         | readiness: pool supervision, queue, cache integrity |
//! | POST   | `/v1/jobs`            | submit a job spec (429 + depth when full) |
//! | GET    | `/v1/jobs/:id`        | status + progress snapshot                |
//! | DELETE | `/v1/jobs/:id`        | cooperative cancel (409 once terminal)    |
//! | GET    | `/v1/jobs/:id/result` | the `asf-serve-v1` artifact (202 pending, 410 cancelled) |
//! | GET    | `/v1/jobs/:id/metrics`| `asf-obs-v1` snapshot (observed jobs)     |
//! | GET    | `/v1/jobs/:id/trace`  | Chrome trace JSON (observed jobs)         |
//! | GET    | `/v1/cache/stats`     | cache + admission counters                |
//! | POST   | `/v1/shutdown`        | stop accepting, drain, exit               |
//!
//! A job's id **is** its spec digest (16 hex digits): submitting is
//! idempotent, a repeat submission of a completed spec answers `cached`
//! in O(1), and concurrent identical submissions — whether they race
//! through the queue or arrive while one is running — coalesce onto a
//! single computation (`ResultCache::get_or_compute`'s single-flight).
//!
//! ## Deadlines & cancellation
//!
//! Every submission carries a deadline (client `deadline_ms`, clamped to
//! the server cap; server default otherwise). A watchdog thread scans the
//! registry every [`ServeOpts::deadline_tick_ms`] and fires the job's
//! [`CancelToken`] once the deadline passes; the simulator checks the
//! token cooperatively at its progress-publish cadence and unwinds
//! cleanly. `DELETE /v1/jobs/:id` fires the same token with client
//! provenance. Both produce *typed terminal states* (`cancelled`,
//! `deadline_exceeded`) that are never cached — a resubmission computes
//! fresh. Cancellation is cooperative and therefore best-effort: a job
//! that completes in the race window stays `done` and its (valid) result
//! is kept.

use crate::cache::{CacheConfig, ResultCache};
use crate::chaos::ServeChaosPlan;
use crate::flightrec::FlightRecorder;
use crate::http::{read_request, write_response, write_response_typed, HttpError, HttpLimits, Request};
use crate::metrics::{endpoint_label, ServeMetrics};
use crate::pool::{PoolHealth, WorkerPool};
use crate::runner::run_spec_cancellable;
use crate::spec::{parse_digest_hex, JobSpec, Submission};
use asf_machine::snapshot::{CancelKind, CancelToken, ProgressProbe};
use asf_mem::fxhash::FxHashMap;
use asf_stats::json::escape;
use asf_stats::openmetrics::Renderer;
use asf_stats::slog::Logger;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Bind address; port 0 picks an ephemeral port (the smoke/loadtest
    /// default).
    pub addr: String,
    /// Worker threads executing simulations.
    pub workers: usize,
    /// Pending-job bound; submissions beyond it get 429.
    pub queue_capacity: usize,
    /// In-memory result-cache entries.
    pub cache_capacity: usize,
    /// Persistent store directory (`None` = memory only).
    pub disk_dir: Option<PathBuf>,
    /// Request framing bounds (body size, header line length/count).
    pub limits: HttpLimits,
    /// Socket read timeout per connection, ms. A connection idle past it
    /// is closed; one that stalls *mid-request* is answered 408 first.
    pub read_timeout_ms: u64,
    /// Socket write timeout per connection, ms.
    pub write_timeout_ms: u64,
    /// Deadline applied to submissions that do not name one, ms.
    pub default_deadline_ms: u64,
    /// Hard cap on client-requested deadlines, ms.
    pub max_deadline_ms: u64,
    /// Deadline-watchdog scan interval, ms. Bounds how far past its
    /// deadline a job can run before its cancel token fires.
    pub deadline_tick_ms: u64,
    /// Fault-injection plan; [`ServeChaosPlan::none`] (the default) is
    /// structurally inert.
    pub chaos: ServeChaosPlan,
    /// Flight-recorder ring capacity (most recent events kept).
    pub flightrec_capacity: usize,
    /// Directory flight-recorder dumps land in. `None` (the default)
    /// records and counts but writes nothing — unit-test servers stay
    /// clean; the chaos soak and foreground serve point this at
    /// `results/`.
    pub flightrec_dir: Option<PathBuf>,
    /// Structured logger threaded through the request lifecycle.
    pub log: Logger,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).min(4),
            queue_capacity: 256,
            cache_capacity: 1024,
            disk_dir: None,
            limits: HttpLimits::default(),
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            default_deadline_ms: 300_000,
            max_deadline_ms: 600_000,
            deadline_tick_ms: 25,
            chaos: ServeChaosPlan::none(),
            flightrec_capacity: 256,
            flightrec_dir: None,
            log: Logger::from_env(),
        }
    }
}

/// Lifecycle of one registered job.
#[derive(Clone, Debug)]
enum JobPhase {
    Queued,
    Running,
    Done,
    Failed(String),
    Cancelled,
    DeadlineExceeded,
}

impl JobPhase {
    fn label(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed(_) => "failed",
            JobPhase::Cancelled => "cancelled",
            JobPhase::DeadlineExceeded => "deadline_exceeded",
        }
    }

    fn is_terminal(&self) -> bool {
        !matches!(self, JobPhase::Queued | JobPhase::Running)
    }
}

struct JobEntry {
    spec: JobSpec,
    phase: Mutex<JobPhase>,
    probe: Arc<ProgressProbe>,
    cancel: Arc<CancelToken>,
    deadline: Instant,
    submitted_at: Instant,
}

/// Shared service state (cache, registry, pool, counters). Exposed so the
/// in-process load test can read counters without a round-trip.
pub struct ServeState {
    /// The content-addressed result cache.
    pub cache: ResultCache,
    jobs: Mutex<FxHashMap<u64, Arc<JobEntry>>>,
    pool: WorkerPool,
    limits: HttpLimits,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    default_deadline_ms: u64,
    max_deadline_ms: u64,
    deadline_tick_ms: u64,
    chaos: ServeChaosPlan,
    /// Execution-attempt ordinals per digest, so chaos decisions are a
    /// pure function of `(seed, digest, attempt)` regardless of thread
    /// interleaving. Only touched when chaos is enabled.
    chaos_attempts: Mutex<FxHashMap<u64, u32>>,
    /// Total submissions accepted (cached answers included).
    pub jobs_submitted: AtomicU64,
    /// Submissions answered `cached` straight from the store.
    pub submit_cache_hits: AtomicU64,
    /// Submissions coalesced onto an already queued/running identical job.
    pub submit_coalesced: AtomicU64,
    /// Submissions rejected with 429 (queue at capacity).
    pub jobs_rejected: AtomicU64,
    /// Jobs that completed successfully.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed (watchdog etc.).
    pub jobs_failed: AtomicU64,
    /// Jobs terminated by client cancel.
    pub jobs_cancelled: AtomicU64,
    /// Jobs terminated by the deadline watchdog.
    pub jobs_deadline_exceeded: AtomicU64,
    /// Worker panics injected by the chaos plan.
    pub chaos_panics_injected: AtomicU64,
    /// Artificial stalls injected by the chaos plan.
    pub chaos_stalls_injected: AtomicU64,
    /// Request counters, latency histograms, correlation-id mint.
    pub metrics: ServeMetrics,
    /// Bounded event ring + crash-dump bookkeeping.
    pub flightrec: FlightRecorder,
    /// Structured logger shared by every thread of the service.
    pub log: Logger,
    shutting_down: AtomicBool,
}

impl ServeState {
    /// Current pending-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.pool.depth()
    }

    /// Worker-supervision snapshot.
    pub fn pool_health(&self) -> PoolHealth {
        self.pool.health()
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// The `GET /v1/healthz` readiness document: pool supervision, queue
    /// pressure, cache integrity, uptime, build info and flight-dump
    /// count in one probe-friendly object.
    pub fn healthz_json(&self) -> String {
        let health = self.pool.health();
        let shutting_down = self.is_shutting_down();
        let ok = !shutting_down && health.live > 0;
        format!(
            "{{\"ok\": {ok}, \"shutting_down\": {shutting_down}, \
             \"workers\": {}, \"live_workers\": {}, \"worker_panics\": {}, \
             \"worker_respawns\": {}, \"queue_depth\": {}, \"queue_capacity\": {}, \
             \"corrupt_quarantined\": {}, \"disk_write_failures\": {}, \
             \"uptime_ms\": {}, \"version\": \"{}\", \
             \"detectors\": [\"baseline\", \"sb2\", \"sb4\", \"sb8\", \"sb16\", \"perfect\"], \
             \"flight_dumps\": {}}}\n",
            health.workers,
            health.live,
            health.panics,
            health.respawns,
            health.queue_depth,
            self.pool.capacity(),
            self.cache.counters.corrupt_quarantined.load(Ordering::Relaxed),
            self.cache.counters.disk_write_failures.load(Ordering::Relaxed),
            self.metrics.uptime_ms(),
            env!("CARGO_PKG_VERSION"),
            self.flightrec.dumps(),
        )
    }

    /// Count of jobs currently in the `running` phase (the worker-
    /// utilization numerator).
    fn running_jobs(&self) -> usize {
        self.jobs
            .lock()
            .unwrap()
            .values()
            .filter(|e| matches!(*e.phase.lock().unwrap(), JobPhase::Running))
            .count()
    }

    /// The `GET /v1/metrics/prometheus` exposition: request counters by
    /// endpoint/status, queue and worker gauges, cache and single-flight
    /// counters, cancel/deadline/chaos counters, flight dumps, and the
    /// four latency histograms. Rendered by
    /// [`asf_stats::openmetrics::Renderer`], so its output parses with
    /// the same parser the tests and CI scrape use.
    pub fn prometheus_text(&self) -> String {
        let mut r = Renderer::new();
        for (endpoint, status, count) in self.metrics.request_counts() {
            let status = status.to_string();
            r.counter(
                "asf_http_requests",
                "HTTP responses by endpoint and status",
                &[("endpoint", endpoint), ("status", &status)],
                count,
            );
        }
        let health = self.pool.health();
        r.gauge("asf_queue_depth", "pending jobs", &[], self.queue_depth() as f64);
        r.gauge("asf_queue_capacity", "queue bound", &[], self.pool.capacity() as f64);
        r.gauge("asf_workers_live", "live worker threads", &[], health.live as f64);
        let running = self.running_jobs();
        r.gauge("asf_workers_busy", "jobs in the running phase", &[], running as f64);
        let utilization = if health.workers == 0 {
            0.0
        } else {
            running as f64 / health.workers as f64
        };
        r.gauge("asf_worker_utilization", "busy fraction of the pool", &[], utilization);
        r.counter("asf_worker_panics", "jobs that panicked", &[], health.panics);
        r.counter("asf_worker_respawns", "workers respawned after a panic", &[], health.respawns);
        let c = &self.cache.counters;
        for (name, value) in [
            ("hits", c.hits.load(Ordering::Relaxed)),
            ("disk_hits", c.disk_hits.load(Ordering::Relaxed)),
            ("misses", c.misses.load(Ordering::Relaxed)),
            ("inserts", c.inserts.load(Ordering::Relaxed)),
            ("evictions", c.evictions.load(Ordering::Relaxed)),
            ("flight_joins", c.flight_joins.load(Ordering::Relaxed)),
            ("flight_leads", c.flight_leads.load(Ordering::Relaxed)),
            ("corrupt_quarantined", c.corrupt_quarantined.load(Ordering::Relaxed)),
            ("disk_write_failures", c.disk_write_failures.load(Ordering::Relaxed)),
        ] {
            r.counter("asf_cache_events", "result-cache events by kind", &[("kind", name)], value);
        }
        r.gauge("asf_cache_entries", "in-memory cache entries", &[], self.cache.len() as f64);
        for (name, value) in [
            ("submitted", self.jobs_submitted.load(Ordering::Relaxed)),
            ("cache_hit", self.submit_cache_hits.load(Ordering::Relaxed)),
            ("coalesced", self.submit_coalesced.load(Ordering::Relaxed)),
            ("rejected", self.jobs_rejected.load(Ordering::Relaxed)),
            ("completed", self.jobs_completed.load(Ordering::Relaxed)),
            ("failed", self.jobs_failed.load(Ordering::Relaxed)),
            ("cancelled", self.jobs_cancelled.load(Ordering::Relaxed)),
            ("deadline_exceeded", self.jobs_deadline_exceeded.load(Ordering::Relaxed)),
        ] {
            r.counter("asf_jobs", "job lifecycle events by kind", &[("kind", name)], value);
        }
        r.counter(
            "asf_chaos_panics_injected",
            "worker panics injected by the chaos plan",
            &[],
            self.chaos_panics_injected.load(Ordering::Relaxed),
        );
        r.counter(
            "asf_chaos_stalls_injected",
            "stalls injected by the chaos plan",
            &[],
            self.chaos_stalls_injected.load(Ordering::Relaxed),
        );
        r.counter("asf_flight_dumps", "flight-recorder dump triggers", &[], self.flightrec.dumps());
        r.gauge("asf_uptime_ms", "milliseconds since server start", &[], self.metrics.uptime_ms() as f64);
        r.histogram(
            "asf_http_request_duration_ns",
            "request parse to response write",
            &[],
            &self.metrics.http_request_ns.snapshot(),
        );
        r.histogram(
            "asf_job_e2e_ns",
            "submission to terminal phase",
            &[],
            &self.metrics.job_e2e_ns.snapshot(),
        );
        r.histogram(
            "asf_job_queue_wait_ns",
            "submission to worker pickup",
            &[],
            &self.metrics.queue_wait_ns.snapshot(),
        );
        r.histogram(
            "asf_job_execute_ns",
            "worker compute time",
            &[],
            &self.metrics.execute_ns.snapshot(),
        );
        r.finish()
    }

    /// The `GET /v1/cache/stats` document.
    pub fn stats_json(&self) -> String {
        format!(
            "{{\n  \"cache\": {},\n  \"entries\": {},\n  \"capacity\": {},\n  \
             \"queue_depth\": {},\n  \"queue_capacity\": {},\n  \
             \"jobs_submitted\": {},\n  \"submit_cache_hits\": {},\n  \
             \"submit_coalesced\": {},\n  \"jobs_rejected\": {},\n  \
             \"jobs_completed\": {},\n  \"jobs_failed\": {},\n  \
             \"jobs_cancelled\": {},\n  \"jobs_deadline_exceeded\": {},\n  \
             \"chaos_panics_injected\": {},\n  \"chaos_stalls_injected\": {}\n}}\n",
            self.cache.counters.to_json(),
            self.cache.len(),
            self.cache.capacity(),
            self.queue_depth(),
            self.pool.capacity(),
            self.jobs_submitted.load(Ordering::Relaxed),
            self.submit_cache_hits.load(Ordering::Relaxed),
            self.submit_coalesced.load(Ordering::Relaxed),
            self.jobs_rejected.load(Ordering::Relaxed),
            self.jobs_completed.load(Ordering::Relaxed),
            self.jobs_failed.load(Ordering::Relaxed),
            self.jobs_cancelled.load(Ordering::Relaxed),
            self.jobs_deadline_exceeded.load(Ordering::Relaxed),
            self.chaos_panics_injected.load(Ordering::Relaxed),
            self.chaos_stalls_injected.load(Ordering::Relaxed),
        )
    }
}

/// A running server. Dropping (or [`Server::shutdown`]) stops the accept
/// loop and drains the worker pool.
pub struct Server {
    state: Arc<ServeState>,
    port: u16,
    accept: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, start the accept loop, the worker pool, and the deadline
    /// watchdog.
    pub fn start(opts: ServeOpts) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let port = listener.local_addr()?.port();
        let state = Arc::new(ServeState {
            cache: ResultCache::new(CacheConfig {
                capacity: opts.cache_capacity,
                disk_dir: opts.disk_dir.clone(),
            })?,
            jobs: Mutex::new(FxHashMap::default()),
            pool: WorkerPool::new(opts.workers, opts.queue_capacity),
            limits: opts.limits,
            read_timeout_ms: opts.read_timeout_ms,
            write_timeout_ms: opts.write_timeout_ms,
            default_deadline_ms: opts.default_deadline_ms,
            max_deadline_ms: opts.max_deadline_ms,
            deadline_tick_ms: opts.deadline_tick_ms,
            chaos: opts.chaos,
            chaos_attempts: Mutex::new(FxHashMap::default()),
            jobs_submitted: AtomicU64::new(0),
            submit_cache_hits: AtomicU64::new(0),
            submit_coalesced: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_deadline_exceeded: AtomicU64::new(0),
            chaos_panics_injected: AtomicU64::new(0),
            chaos_stalls_injected: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
            flightrec: FlightRecorder::new(opts.flightrec_capacity, opts.flightrec_dir.clone()),
            log: opts.log.clone(),
            shutting_down: AtomicBool::new(false),
        });
        state
            .log
            .info("serve.start")
            .u64("port", u64::from(port))
            .u64("workers", opts.workers as u64)
            .u64("queue_capacity", opts.queue_capacity as u64)
            .bool("chaos", opts.chaos.enabled())
            .emit();
        if state.chaos.enabled() {
            let plan = state.chaos;
            state.cache.set_disk_chaos(Box::new(move |digest| plan.disk_decision(digest)));
        }
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("asf-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutting_down.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    let conn_state = Arc::clone(&accept_state);
                    let _ = std::thread::Builder::new()
                        .name("asf-serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &conn_state));
                }
            })
            .expect("spawn accept loop");
        let watchdog_state = Arc::clone(&state);
        let watchdog = std::thread::Builder::new()
            .name("asf-serve-deadline".to_string())
            .spawn(move || deadline_watchdog(&watchdog_state))
            .expect("spawn deadline watchdog");
        Ok(Server { state, port, accept: Some(accept), watchdog: Some(watchdog) })
    }

    /// The bound port (useful with an ephemeral bind).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// `host:port` of the listener.
    pub fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// The shared service state (counters, cache) for in-process callers.
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Block until the accept loop exits on its own — i.e. until some
    /// client issues `POST /v1/shutdown`. The foreground `asf-repro serve`
    /// command parks here.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stop accepting connections and join the accept loop. Worker threads
    /// drain their queue when the last state reference drops.
    pub fn shutdown(mut self) {
        self.signal_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    fn signal_shutdown(&self) {
        self.state.shutting_down.store(true, Ordering::Relaxed);
        // Unblock the accept loop with one throwaway connection. Always
        // attempted (not just on the first signal): the HTTP shutdown
        // endpoint may have set the flag without waking the listener, and
        // a connect against an already-dead listener is harmless.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.signal_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
    }
}

/// The deadline watchdog: every tick, fire the cancel token of any
/// non-terminal job past its deadline. Queued victims are transitioned
/// immediately (there is no simulation to unwind); running victims are
/// unwound cooperatively by the machine at its next publish cadence.
/// Exits on shutdown — injected stalls also watch the shutdown flag, so
/// the drain never waits out a stall the watchdog can no longer cancel.
fn deadline_watchdog(state: &Arc<ServeState>) {
    while !state.shutting_down.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(state.deadline_tick_ms));
        let now = Instant::now();
        let expired: Vec<Arc<JobEntry>> = {
            let jobs = state.jobs.lock().unwrap();
            jobs.values()
                .filter(|e| now >= e.deadline && !e.phase.lock().unwrap().is_terminal())
                .cloned()
                .collect()
        };
        for entry in expired {
            let id = entry.spec.digest_hex();
            state.flightrec.record("deadline.fired", Some(&id), "watchdog tick");
            state.log.warn("serve.deadline_fired").str("digest", &id).emit();
            entry.cancel.cancel(CancelKind::Deadline);
            let queued = matches!(*entry.phase.lock().unwrap(), JobPhase::Queued);
            if queued {
                mark_cancelled(state, &entry);
            }
        }
    }
}

/// Transition a job to its cancelled terminal phase, exactly once. The
/// phase is derived from the token (first writer wins there), so racing
/// supervisors agree on the verdict.
fn mark_cancelled(state: &ServeState, entry: &JobEntry) {
    let Some(kind) = entry.cancel.kind() else { return };
    let mut phase = entry.phase.lock().unwrap();
    if phase.is_terminal() {
        return;
    }
    let id = entry.spec.digest_hex();
    *phase = match kind {
        CancelKind::Client => {
            state.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            state.flightrec.record("job.cancelled", Some(&id), "client cancel");
            JobPhase::Cancelled
        }
        CancelKind::Deadline => {
            state.jobs_deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            state.flightrec.record("job.deadline_exceeded", Some(&id), "deadline kill");
            JobPhase::DeadlineExceeded
        }
    };
    drop(phase);
    state
        .metrics
        .job_e2e_ns
        .record(entry.submitted_at.elapsed().as_nanos() as u64);
    if matches!(kind, CancelKind::Deadline) {
        // A deadline kill is a dump trigger: the ring around it is the
        // evidence for *why* the job overran.
        state.flightrec.dump("deadline_exceeded", Some(&id));
    }
    entry.probe.finish();
}

fn handle_connection(stream: TcpStream, state: &Arc<ServeState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(state.read_timeout_ms)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(state.write_timeout_ms)));
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, &state.limits) {
            Ok(Some(req)) => {
                let keep_going = respond(&mut write_half, &req, state);
                if !keep_going || state.shutting_down.load(Ordering::Relaxed) {
                    break;
                }
            }
            // Clean close between requests.
            Ok(None) => break,
            // Broken traffic is *answered*, then the connection closes:
            // a client that can read a status line learns what it did
            // wrong instead of diagnosing a silent hangup.
            Err(HttpError::Malformed(e)) => {
                let rid = state.metrics.next_request_id();
                state.log.warn("http.malformed").str("rid", &rid).str("error", &e).emit();
                state.metrics.observe_request("other", 400, 0);
                let _ = write_response(
                    &mut write_half,
                    400,
                    &[("x-asf-request-id", rid)],
                    &format!("{{\"error\": {}}}\n", escape(&e)),
                );
                break;
            }
            Err(HttpError::TooLarge(len)) => {
                let rid = state.metrics.next_request_id();
                state.log.warn("http.too_large").str("rid", &rid).u64("len", len as u64).emit();
                state.metrics.observe_request("other", 413, 0);
                let _ = write_response(
                    &mut write_half,
                    413,
                    &[("x-asf-request-id", rid)],
                    &format!(
                        "{{\"error\": \"request body of {len} bytes exceeds the \
                         {}-byte limit\"}}\n",
                        state.limits.max_body
                    ),
                );
                break;
            }
            // A request was started but never finished arriving: 408.
            Err(HttpError::Timeout { started: true }) => {
                let rid = state.metrics.next_request_id();
                state.log.warn("http.timeout").str("rid", &rid).emit();
                state.metrics.observe_request("other", 408, 0);
                let _ = write_response(
                    &mut write_half,
                    408,
                    &[("x-asf-request-id", rid)],
                    "{\"error\": \"timed out reading request\"}\n",
                );
                break;
            }
            // Idle keep-alive expiry or transport failure: just close.
            Err(HttpError::Timeout { started: false }) | Err(HttpError::Io(_)) => break,
        }
    }
}

/// Per-request instrumentation context: the correlation id (returned as
/// `x-asf-request-id` and stamped on every log line), the endpoint label
/// for the request counters, and the parse-time anchor for the duration
/// histogram. Every response goes through [`reply`], so no path can skip
/// the id or the metrics.
struct ReqCtx {
    rid: String,
    endpoint: &'static str,
    t0: Instant,
}

/// The single response choke point: append the correlation id, write,
/// count, time, log.
fn reply(
    stream: &mut TcpStream,
    state: &ServeState,
    ctx: &ReqCtx,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    reply_typed(stream, state, ctx, status, "application/json", extra_headers, body)
}

/// [`reply`] with an explicit content type (the OpenMetrics endpoint).
fn reply_typed(
    stream: &mut TcpStream,
    state: &ServeState,
    ctx: &ReqCtx,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut headers: Vec<(&str, String)> = Vec::with_capacity(extra_headers.len() + 1);
    headers.extend(extra_headers.iter().map(|(n, v)| (*n, v.clone())));
    headers.push(("x-asf-request-id", ctx.rid.clone()));
    let outcome = write_response_typed(stream, status, content_type, &headers, body);
    let elapsed_ns = ctx.t0.elapsed().as_nanos() as u64;
    state.metrics.observe_request(ctx.endpoint, status, elapsed_ns);
    state
        .log
        .debug("http.respond")
        .str("rid", &ctx.rid)
        .str("endpoint", ctx.endpoint)
        .u64("status", u64::from(status))
        .u64("dur_ns", elapsed_ns)
        .emit();
    outcome
}

/// Route one request; returns `false` when the connection should close.
fn respond(stream: &mut TcpStream, req: &Request, state: &Arc<ServeState>) -> bool {
    let segments: Vec<&str> = req.path.trim_matches('/').split('/').collect();
    let ctx = ReqCtx {
        rid: state.metrics.next_request_id(),
        endpoint: endpoint_label(req.method.as_str(), segments.as_slice()),
        t0: Instant::now(),
    };
    let outcome = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["v1", "healthz"]) => {
            reply(stream, state, &ctx, 200, &[], &state.healthz_json())
        }
        ("POST", ["v1", "jobs"]) => handle_submit(stream, req, state, &ctx),
        ("GET", ["v1", "jobs", id]) => handle_status(stream, id, state, &ctx),
        ("DELETE", ["v1", "jobs", id]) => handle_cancel(stream, id, state, &ctx),
        ("GET", ["v1", "jobs", id, "result"]) => handle_result(stream, id, state, &ctx),
        ("GET", ["v1", "jobs", id, artifact @ ("metrics" | "trace")]) => {
            handle_artifact(stream, id, artifact, state, &ctx)
        }
        ("GET", ["v1", "cache", "stats"]) => {
            reply(stream, state, &ctx, 200, &[], &state.stats_json())
        }
        ("GET", ["v1", "metrics", "prometheus"]) => reply_typed(
            stream,
            state,
            &ctx,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &[],
            &state.prometheus_text(),
        ),
        ("GET", ["v1", "flightrec"]) => {
            reply(stream, state, &ctx, 200, &[], &state.flightrec.to_json("snapshot", None))
        }
        ("POST", ["v1", "shutdown"]) => {
            state.log.info("serve.shutdown").str("rid", &ctx.rid).emit();
            let r = reply(stream, state, &ctx, 200, &[], "{\"shutting_down\": true}\n");
            state.shutting_down.store(true, Ordering::Relaxed);
            // Wake the accept loop so it observes the flag even when no
            // further client ever connects.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            let _ = r;
            return false;
        }
        (_, ["v1", ..]) => reply(
            stream,
            state,
            &ctx,
            405,
            &[],
            "{\"error\": \"method not allowed\"}\n",
        ),
        _ => reply(stream, state, &ctx, 404, &[], "{\"error\": \"no such endpoint\"}\n"),
    };
    outcome.is_ok()
}

fn depth_header(state: &ServeState) -> (&'static str, String) {
    ("x-asf-queue-depth", state.queue_depth().to_string())
}

fn submit_reply(id: &str, status: &str, depth: usize) -> String {
    format!("{{\"job\": \"{id}\", \"status\": \"{status}\", \"queue_depth\": {depth}}}\n")
}

fn handle_submit(
    stream: &mut TcpStream,
    req: &Request,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) -> std::io::Result<()> {
    let body = String::from_utf8_lossy(&req.body);
    let submission = match Submission::from_json(&body) {
        Ok(sub) => sub,
        Err(e) => {
            state.log.warn("serve.submit_rejected").str("rid", &ctx.rid).str("error", &e).emit();
            return reply(
                stream,
                state,
                ctx,
                400,
                &[depth_header(state)],
                &format!("{{\"error\": {}}}\n", escape(&e)),
            );
        }
    };
    let spec = submission.spec;
    let digest = spec.digest();
    let id = spec.digest_hex();
    state.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    // O(1) memoized repeat: answer straight from the store.
    if state.cache.lookup(digest).is_some() {
        state.submit_cache_hits.fetch_add(1, Ordering::Relaxed);
        mark_done_entry(state, digest, &spec);
        state.log.debug("serve.submit").str("rid", &ctx.rid).str("digest", &id).str("outcome", "cached").emit();
        return reply(
            stream,
            state,
            ctx,
            200,
            &[depth_header(state), ("x-asf-cache", "hit".to_string())],
            &submit_reply(&id, "cached", state.queue_depth()),
        );
    }
    // Coalesce onto an identical queued/running job.
    {
        let jobs = state.jobs.lock().unwrap();
        if let Some(entry) = jobs.get(&digest) {
            let phase = entry.phase.lock().unwrap().clone();
            if matches!(phase, JobPhase::Queued | JobPhase::Running) {
                state.submit_coalesced.fetch_add(1, Ordering::Relaxed);
                state.cache.counters.flight_joins.fetch_add(1, Ordering::Relaxed);
                state.log.debug("serve.submit").str("rid", &ctx.rid).str("digest", &id).str("outcome", "join").emit();
                return reply(
                    stream,
                    state,
                    ctx,
                    200,
                    &[depth_header(state), ("x-asf-cache", "join".to_string())],
                    &submit_reply(&id, phase.label(), state.queue_depth()),
                );
            }
        }
    }
    // The effective deadline: client ask clamped to the cap, server
    // default otherwise. Submission-level only — it never touches the
    // content address.
    let deadline_ms = submission
        .deadline_ms
        .unwrap_or(state.default_deadline_ms)
        .min(state.max_deadline_ms);
    // Admission control: reject instead of queueing unboundedly.
    let entry = Arc::new(JobEntry {
        spec: spec.clone(),
        phase: Mutex::new(JobPhase::Queued),
        probe: Arc::new(ProgressProbe::new()),
        cancel: Arc::new(CancelToken::new()),
        deadline: Instant::now() + Duration::from_millis(deadline_ms),
        submitted_at: Instant::now(),
    });
    let job_state = Arc::clone(state);
    let job_entry = Arc::clone(&entry);
    let submit = state.pool.submit(move || execute_job(&job_state, &job_entry));
    match submit {
        Ok(depth) => {
            state.jobs.lock().unwrap().insert(digest, entry);
            state.flightrec.record("job.queued", Some(&id), "");
            state
                .log
                .info("serve.submit")
                .str("rid", &ctx.rid)
                .str("digest", &id)
                .str("outcome", "queued")
                .u64("depth", depth as u64)
                .u64("deadline_ms", deadline_ms)
                .emit();
            reply(
                stream,
                state,
                ctx,
                200,
                &[depth_header(state), ("x-asf-cache", "miss".to_string())],
                &format!(
                    "{{\"job\": \"{id}\", \"status\": \"queued\", \
                     \"queue_depth\": {depth}, \"deadline_ms\": {deadline_ms}}}\n"
                ),
            )
        }
        Err(full) => {
            state.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            state
                .log
                .warn("serve.submit_rejected")
                .str("rid", &ctx.rid)
                .str("digest", &id)
                .u64("depth", full.0 as u64)
                .emit();
            reply(
                stream,
                state,
                ctx,
                429,
                &[("x-asf-queue-depth", full.0.to_string())],
                &format!(
                    "{{\"error\": \"queue full\", \"queue_depth\": {}, \
                     \"queue_capacity\": {}}}\n",
                    full.0,
                    state.pool.capacity()
                ),
            )
        }
    }
}

/// Register (or update) a registry entry for a spec already answered from
/// the cache, so the status endpoint reports `done` for it.
fn mark_done_entry(state: &ServeState, digest: u64, spec: &JobSpec) {
    let mut jobs = state.jobs.lock().unwrap();
    let entry = jobs.entry(digest).or_insert_with(|| {
        Arc::new(JobEntry {
            spec: spec.clone(),
            phase: Mutex::new(JobPhase::Done),
            probe: Arc::new(ProgressProbe::new()),
            cancel: Arc::new(CancelToken::new()),
            deadline: Instant::now(),
            submitted_at: Instant::now(),
        })
    });
    *entry.phase.lock().unwrap() = JobPhase::Done;
}

/// Marks the job `Failed` if execution unwinds without reaching a normal
/// phase transition — a panicking job (injected or genuine) must leave a
/// terminal state behind, or resubmissions would coalesce onto a
/// permanently `running` ghost.
struct PhaseGuard<'a> {
    state: &'a ServeState,
    entry: &'a JobEntry,
    armed: bool,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.state.jobs_failed.fetch_add(1, Ordering::Relaxed);
        *self.entry.phase.lock().unwrap() =
            JobPhase::Failed("worker panicked during execution; resubmit to retry".to_string());
        // This drop only runs armed while unwinding a worker panic — the
        // flight-recorder dump turns "respawns == panics" into a
        // debuggable artifact naming the job that died.
        let id = self.entry.spec.digest_hex();
        self.state.flightrec.record("job.panic", Some(&id), "worker unwound");
        self.state.flightrec.dump("worker_panic", Some(&id));
        self.state.log.error("serve.worker_panic").str("digest", &id).emit();
        self.state
            .metrics
            .job_e2e_ns
            .record(self.entry.submitted_at.elapsed().as_nanos() as u64);
        self.entry.probe.finish();
    }
}

/// Worker-side execution: run (or join) the computation, then publish the
/// phase transition.
fn execute_job(state: &Arc<ServeState>, entry: &Arc<JobEntry>) {
    // A supervisor may have fired the token while we were queued (client
    // cancel, or the deadline passed before a worker freed up): terminal
    // state without ever starting the simulation.
    if entry.cancel.kind().is_some() {
        mark_cancelled(state, entry);
        return;
    }
    state
        .metrics
        .queue_wait_ns
        .record(entry.submitted_at.elapsed().as_nanos() as u64);
    *entry.phase.lock().unwrap() = JobPhase::Running;
    let id = entry.spec.digest_hex();
    state.flightrec.record("job.running", Some(&id), "");
    state.log.debug("serve.job_running").str("digest", &id).emit();
    let mut guard = PhaseGuard { state, entry, armed: true };
    let digest = entry.spec.digest();
    if state.chaos.enabled() {
        let attempt = {
            let mut attempts = state.chaos_attempts.lock().unwrap();
            let counter = attempts.entry(digest).or_insert(0);
            let attempt = *counter;
            *counter += 1;
            attempt
        };
        let decision = state.chaos.job_decision(digest, attempt);
        if decision.stall {
            state.chaos_stalls_injected.fetch_add(1, Ordering::Relaxed);
            state.flightrec.record("chaos.stall", Some(&id), &format!("attempt {attempt}"));
            // Stall in small slices, watching the cancel token (so the
            // deadline watchdog cuts the stall short) and the shutdown
            // flag (so a drain never waits out a full stall).
            let stall_until = Instant::now() + Duration::from_millis(state.chaos.stall_ms);
            while Instant::now() < stall_until
                && entry.cancel.kind().is_none()
                && !state.shutting_down.load(Ordering::Relaxed)
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            if entry.cancel.kind().is_some() {
                mark_cancelled(state, entry);
                guard.armed = false;
                return;
            }
        }
        if decision.panic {
            state.chaos_panics_injected.fetch_add(1, Ordering::Relaxed);
            state.flightrec.record("chaos.panic", Some(&id), &format!("attempt {attempt}"));
            // The PhaseGuard converts this into `failed`; the pool
            // supervisor counts it and respawns the worker.
            panic!("chaos: injected worker panic");
        }
    }
    let probe = Arc::clone(&entry.probe);
    let cancel = Arc::clone(&entry.cancel);
    let spec = entry.spec.clone();
    let execute_start = Instant::now();
    let result = state.cache.get_or_compute(digest, move || {
        run_spec_cancellable(&spec, Some(probe), Some(cancel))
    });
    state
        .metrics
        .execute_ns
        .record(execute_start.elapsed().as_nanos() as u64);
    guard.armed = false;
    match result {
        Ok(_) => {
            state.jobs_completed.fetch_add(1, Ordering::Relaxed);
            *entry.phase.lock().unwrap() = JobPhase::Done;
            state
                .metrics
                .job_e2e_ns
                .record(entry.submitted_at.elapsed().as_nanos() as u64);
            state.flightrec.record("job.done", Some(&id), "");
            state.log.info("serve.job_done").str("digest", &id).emit();
        }
        Err(e) => {
            // The token says whether this failure *is* a cancellation;
            // typed terminal states are never cached (`get_or_compute`
            // drops every Err on the floor).
            if entry.cancel.kind().is_some() {
                mark_cancelled(state, entry);
            } else {
                state.jobs_failed.fetch_add(1, Ordering::Relaxed);
                state.flightrec.record("job.failed", Some(&id), &e);
                state.log.error("serve.job_failed").str("digest", &id).str("error", &e).emit();
                *entry.phase.lock().unwrap() = JobPhase::Failed(e);
                state
                    .metrics
                    .job_e2e_ns
                    .record(entry.submitted_at.elapsed().as_nanos() as u64);
            }
        }
    }
}

fn lookup_entry(state: &ServeState, id: &str) -> Result<(u64, Option<Arc<JobEntry>>), String> {
    let digest = parse_digest_hex(id)?;
    let entry = state.jobs.lock().unwrap().get(&digest).cloned();
    Ok((digest, entry))
}

fn handle_status(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) -> std::io::Result<()> {
    let (digest, entry) = match lookup_entry(state, id) {
        Ok(pair) => pair,
        Err(e) => {
            return reply(stream, state, ctx, 400, &[], &format!("{{\"error\": {}}}\n", escape(&e)))
        }
    };
    if let Some(entry) = entry {
        let phase = entry.phase.lock().unwrap().clone();
        let error = match &phase {
            JobPhase::Failed(e) => format!(", \"error\": {}", escape(e)),
            _ => String::new(),
        };
        let body = format!(
            "{{\"job\": \"{id}\", \"status\": \"{}\", \"spec\": {}, \
             \"progress\": {}{error}, \"queue_depth\": {}}}\n",
            phase.label(),
            entry.spec.canonical(),
            entry.probe.snapshot().to_json(),
            state.queue_depth(),
        );
        return reply(stream, state, ctx, 200, &[depth_header(state)], &body);
    }
    // Not registered this lifetime — the disk store may still answer.
    if state.cache.lookup(digest).is_some() {
        return reply(
            stream,
            state,
            ctx,
            200,
            &[depth_header(state)],
            &format!("{{\"job\": \"{id}\", \"status\": \"cached\"}}\n"),
        );
    }
    reply(stream, state, ctx, 404, &[], "{\"error\": \"unknown job\"}\n")
}

/// `DELETE /v1/jobs/:id` — fire the job's cancel token with client
/// provenance. Queued jobs transition immediately; running jobs are
/// unwound at the machine's next cooperative check (the response says
/// `cancelling`, the status endpoint reports the landing). A job already
/// in a terminal state answers 409 — there is nothing left to cancel.
fn handle_cancel(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) -> std::io::Result<()> {
    let (digest, entry) = match lookup_entry(state, id) {
        Ok(pair) => pair,
        Err(e) => {
            return reply(stream, state, ctx, 400, &[], &format!("{{\"error\": {}}}\n", escape(&e)))
        }
    };
    let Some(entry) = entry else {
        // Completed in a previous lifetime (disk store) — terminal, so
        // cancelling is a conflict; never-seen is a 404.
        return if state.cache.lookup(digest).is_some() {
            reply(
                stream,
                state,
                ctx,
                409,
                &[],
                &format!("{{\"job\": \"{id}\", \"error\": \"job already cached\"}}\n"),
            )
        } else {
            reply(stream, state, ctx, 404, &[], "{\"error\": \"unknown job\"}\n")
        };
    };
    let phase = entry.phase.lock().unwrap().clone();
    if phase.is_terminal() {
        return reply(
            stream,
            state,
            ctx,
            409,
            &[],
            &format!(
                "{{\"job\": \"{id}\", \"status\": \"{}\", \
                 \"error\": \"job already terminal\"}}\n",
                phase.label()
            ),
        );
    }
    state.log.info("serve.cancel").str("rid", &ctx.rid).str("digest", id).emit();
    state.flightrec.record("cancel.requested", Some(id), "client");
    entry.cancel.cancel(CancelKind::Client);
    if matches!(phase, JobPhase::Queued) {
        // No simulation to unwind — terminal right now.
        mark_cancelled(state, &entry);
    }
    let landed = entry.phase.lock().unwrap().label();
    reply(
        stream,
        state,
        ctx,
        200,
        &[depth_header(state)],
        &format!(
            "{{\"job\": \"{id}\", \"status\": \"{}\"}}\n",
            if landed == "running" { "cancelling" } else { landed }
        ),
    )
}

fn handle_result(
    stream: &mut TcpStream,
    id: &str,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) -> std::io::Result<()> {
    let (digest, entry) = match lookup_entry(state, id) {
        Ok(pair) => pair,
        Err(e) => {
            return reply(stream, state, ctx, 400, &[], &format!("{{\"error\": {}}}\n", escape(&e)))
        }
    };
    // Pending phases answer 202 without charging the cache a miss.
    if let Some(entry) = &entry {
        let phase = entry.phase.lock().unwrap().clone();
        match phase {
            JobPhase::Queued | JobPhase::Running => {
                return reply(
                    stream,
                    state,
                    ctx,
                    202,
                    &[depth_header(state)],
                    &format!("{{\"job\": \"{id}\", \"status\": \"{}\"}}\n", phase.label()),
                );
            }
            JobPhase::Failed(e) => {
                return reply(
                    stream,
                    state,
                    ctx,
                    500,
                    &[],
                    &format!(
                        "{{\"job\": \"{id}\", \"status\": \"failed\", \"error\": {}}}\n",
                        escape(&e)
                    ),
                );
            }
            // Cancelled jobs have no result, by construction: nothing was
            // cached and nothing ever will be for this submission. 410
            // (not 404) tells the client the job existed and is gone.
            JobPhase::Cancelled | JobPhase::DeadlineExceeded => {
                return reply(
                    stream,
                    state,
                    ctx,
                    410,
                    &[],
                    &format!(
                        "{{\"job\": \"{id}\", \"status\": \"{}\", \
                         \"error\": \"job was cancelled; resubmit to compute\"}}\n",
                        phase.label()
                    ),
                );
            }
            JobPhase::Done => {}
        }
    }
    match state.cache.lookup(digest) {
        Some(hit) => reply(
            stream,
            state,
            ctx,
            200,
            &[("x-asf-cache", "hit".to_string())],
            &hit.body,
        ),
        None if entry.is_some() => {
            // Done in the registry but evicted from memory *and* disk
            // (memory-only deployments): recompute on resubmission.
            reply(stream, state, ctx, 404, &[], "{\"error\": \"result evicted; resubmit\"}\n")
        }
        None => reply(stream, state, ctx, 404, &[], "{\"error\": \"unknown job\"}\n"),
    }
}

fn handle_artifact(
    stream: &mut TcpStream,
    id: &str,
    artifact: &str,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) -> std::io::Result<()> {
    let (digest, _) = match lookup_entry(state, id) {
        Ok(pair) => pair,
        Err(e) => {
            return reply(stream, state, ctx, 400, &[], &format!("{{\"error\": {}}}\n", escape(&e)))
        }
    };
    let Some(hit) = state.cache.lookup(digest) else {
        return reply(stream, state, ctx, 404, &[], "{\"error\": \"unknown or pending job\"}\n");
    };
    let payload = if artifact == "metrics" { &hit.metrics } else { &hit.trace };
    match payload {
        Some(text) => reply(stream, state, ctx, 200, &[], text),
        None => reply(
            stream,
            state,
            ctx,
            404,
            &[],
            "{\"error\": \"job was not submitted with observe: true\"}\n",
        ),
    }
}
