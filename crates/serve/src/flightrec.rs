//! Crash flight recorder: a bounded in-memory ring of recent structured
//! events, dumped to disk when something dies (DESIGN.md §18).
//!
//! Workers append job transitions, cancel/deadline edges and chaos
//! injections to one shared ring (each event tagged with the recording
//! thread, so per-worker timelines fall out of a filter). The ring is
//! bounded: recording is O(1) and the memory cost is fixed no matter how
//! long the server runs.
//!
//! A **dump trigger** — worker panic (the `PhaseGuard` unwinding), the
//! deadline watchdog killing a job, or an explicit request — snapshots
//! the ring to `flightrec_<pid>_<seq>.json` in the configured directory,
//! written with the same temp-file + atomic-rename discipline as the
//! cache store, so a crash mid-dump leaves either a whole artifact or
//! nothing. Dumps are counted and surfaced in `/v1/healthz` as
//! `flight_dumps`; with no directory configured the ring still records
//! and counts, it just keeps everything in memory (unit-test servers
//! don't litter the tree).

use asf_stats::json::escape;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema tag every dump carries.
pub const FLIGHTREC_SCHEMA: &str = "asf-flightrec-v1";

/// One recorded event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Monotonic sequence number (gaps reveal ring evictions).
    pub seq: u64,
    /// Wall-clock milliseconds since the epoch.
    pub ts_ms: u64,
    /// Name of the recording thread (worker, watchdog, connection).
    pub worker: String,
    /// Event kind (`job.running`, `chaos.panic`, `deadline.fired`, …).
    pub kind: String,
    /// Job digest hex, when the event concerns a job.
    pub job: Option<String>,
    /// Free-form detail.
    pub detail: String,
}

impl FlightEvent {
    fn to_json(&self) -> String {
        let job = match &self.job {
            Some(j) => escape(j),
            None => "null".to_string(),
        };
        format!(
            "{{\"seq\": {}, \"ts_ms\": {}, \"worker\": {}, \"kind\": {}, \
             \"job\": {}, \"detail\": {}}}",
            self.seq,
            self.ts_ms,
            escape(&self.worker),
            escape(&self.kind),
            job,
            escape(&self.detail)
        )
    }
}

/// Bounded event ring plus dump bookkeeping.
pub struct FlightRecorder {
    ring: Mutex<VecDeque<FlightEvent>>,
    capacity: usize,
    seq: AtomicU64,
    dumps: AtomicU64,
    dump_seq: AtomicU64,
    dir: Option<PathBuf>,
    dump_paths: Mutex<Vec<PathBuf>>,
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl FlightRecorder {
    /// Ring holding the most recent `capacity` events; dumps land in
    /// `dir` (`None` = record and count, write nothing).
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            dump_seq: AtomicU64::new(0),
            dir,
            dump_paths: Mutex::new(Vec::new()),
        }
    }

    /// Append one event, evicting the oldest when full. The recording
    /// thread's name becomes the `worker` tag.
    pub fn record(&self, kind: &str, job: Option<&str>, detail: &str) {
        let event = FlightEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ms: now_ms(),
            worker: std::thread::current().name().unwrap_or("unnamed").to_string(),
            kind: kind.to_string(),
            job: job.map(str::to_string),
            detail: detail.to_string(),
        };
        let mut ring = self.ring.lock().expect("flightrec lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Events currently in the ring, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.ring.lock().expect("flightrec lock").iter().cloned().collect()
    }

    /// Lifetime count of dump triggers (counted even with no directory).
    pub fn dumps(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }

    /// Paths of every dump written so far.
    pub fn dump_paths(&self) -> Vec<PathBuf> {
        self.dump_paths.lock().expect("flightrec lock").clone()
    }

    /// The ring as a schema-tagged JSON document (also the dump body).
    pub fn to_json(&self, reason: &str, job: Option<&str>) -> String {
        let job_json = match job {
            Some(j) => escape(j),
            None => "null".to_string(),
        };
        let mut out = format!(
            "{{\n  \"schema\": \"{FLIGHTREC_SCHEMA}\",\n  \"reason\": {},\n  \
             \"job\": {},\n  \"pid\": {},\n  \"ts_ms\": {},\n  \"events\": [",
            escape(reason),
            job_json,
            std::process::id(),
            now_ms()
        );
        for (i, event) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", event.to_json());
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Fire a dump: record the trigger itself, count it, and — when a
    /// directory is configured — persist the ring via temp+rename.
    /// Returns the written path. Never panics: a recorder that cannot
    /// write must not take the worker down a second time.
    pub fn dump(&self, reason: &str, job: Option<&str>) -> Option<PathBuf> {
        self.record("flightrec.dump", job, reason);
        self.dumps.fetch_add(1, Ordering::Relaxed);
        let dir = self.dir.as_ref()?;
        let body = self.to_json(reason, job);
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flightrec_{}_{}.json", std::process::id(), seq));
        match write_atomic(dir, &path, &body) {
            Ok(()) => {
                self.dump_paths.lock().expect("flightrec lock").push(path.clone());
                Some(path)
            }
            Err(e) => {
                eprintln!("warning: flight-recorder dump to {} failed: {e}", path.display());
                None
            }
        }
    }
}

/// Temp-file + atomic-rename write (the cache-store discipline): a crash
/// mid-write leaves either the previous file or nothing, never torn JSON.
fn write_atomic(dir: &Path, path: &Path, body: &str) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tmp = path.with_file_name(format!(
        "{}.{}",
        path.file_name().unwrap_or_default().to_string_lossy(),
        crate::cache::unique_tmp_suffix()
    ));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_stats::json::parse;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let rec = FlightRecorder::new(3, None);
        for i in 0..5 {
            rec.record("tick", None, &format!("n{i}"));
        }
        let events = rec.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].detail, "n2", "oldest events evicted first");
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn snapshot_json_is_schema_tagged_and_parses() {
        let rec = FlightRecorder::new(8, None);
        rec.record("job.running", Some("00ab"), "");
        rec.record("chaos.panic", Some("00ab"), "attempt 0");
        let v = parse(&rec.to_json("worker_panic", Some("00ab"))).expect("dump parses");
        assert_eq!(v.field("schema").unwrap().as_str().unwrap(), FLIGHTREC_SCHEMA);
        assert_eq!(v.field("reason").unwrap().as_str().unwrap(), "worker_panic");
        assert_eq!(v.field("job").unwrap().as_str().unwrap(), "00ab");
        let events = v.field("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].field("kind").unwrap().as_str().unwrap(), "chaos.panic");
    }

    #[test]
    fn dump_writes_whole_file_and_counts() {
        let dir = std::env::temp_dir().join(format!(
            "asf_flightrec_test_{}_{}",
            std::process::id(),
            crate::cache::unique_tmp_suffix()
        ));
        let rec = FlightRecorder::new(8, Some(dir.clone()));
        rec.record("job.failed", Some("beef"), "boom");
        let path = rec.dump("worker_panic", Some("beef")).expect("dump written");
        assert_eq!(rec.dumps(), 1);
        assert_eq!(rec.dump_paths(), vec![path.clone()]);
        let body = std::fs::read_to_string(&path).unwrap();
        let v = parse(&body).expect("written dump parses");
        assert_eq!(v.field("schema").unwrap().as_str().unwrap(), FLIGHTREC_SCHEMA);
        // The trigger event itself made it into the ring before snapshot.
        let events = v.field("events").unwrap().as_arr().unwrap();
        assert_eq!(events.last().unwrap().field("kind").unwrap().as_str().unwrap(), "flightrec.dump");
        // No temp litter left behind.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_without_dir_counts_but_writes_nothing() {
        let rec = FlightRecorder::new(4, None);
        assert!(rec.dump("deadline", None).is_none());
        assert_eq!(rec.dumps(), 1);
        assert!(rec.dump_paths().is_empty());
    }
}
