//! Deterministic fault injection for the serving layer itself.
//!
//! The simulator has [`asf_machine::fault::FaultPlan`] for injecting
//! *microarchitectural* adversity; [`ServeChaosPlan`] is the same idea one
//! layer up, aimed at the service: worker panics, artificial job stalls
//! (which the deadline watchdog must cancel), and disk-write faults
//! (failed or torn cell writes, which the checksum/quarantine path must
//! contain). The chaos soak in `asf-harness` drives a live server under
//! such a plan and asserts the self-healing invariants.
//!
//! ## Determinism
//!
//! Every decision is drawn from a [`SimRng`] derived from the plan seed
//! and the *identity of the decision point* — the job digest plus, for
//! per-execution decisions, the attempt ordinal. Thread interleaving,
//! scheduling, and wall-clock therefore never change what gets injected:
//! one `(seed, digest, attempt)` triple always produces the same panic /
//! stall verdict, and one `(seed, digest)` pair always produces the same
//! disk fate. Re-running the soak with one seed replays the exact same
//! adversity.
//!
//! ## Transparency
//!
//! A disabled plan ([`ServeChaosPlan::none`], the server default) is
//! structurally inert: the server skips attempt accounting, installs no
//! disk hook, and executes jobs on the unmodified path — pinned by the
//! serve-vs-direct golden fence, which runs against default options.

use crate::cache::DiskChaos;
use asf_machine::fault::FaultRate;
use asf_mem::rng::SimRng;

/// Decision stream tags, so the panic/stall draw and the disk draw of one
/// digest are independent.
const STREAM_JOB: u64 = 0x6a6f_625f;
const STREAM_DISK: u64 = 0x6469_736b;

/// What to inject into one job execution attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobChaos {
    /// Panic the worker thread mid-job (supervision must heal the pool).
    pub panic: bool,
    /// Stall the job for [`ServeChaosPlan::stall_ms`] before computing
    /// (the deadline watchdog must cancel it if the deadline is shorter).
    pub stall: bool,
}

/// Seeded, deterministic injection plan for the serving layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeChaosPlan {
    /// Master seed; every decision derives from it.
    pub seed: u64,
    /// Rate of injected worker panics, per execution attempt.
    pub worker_panic: FaultRate,
    /// Rate of artificial stalls, per execution attempt.
    pub job_stall: FaultRate,
    /// Stall duration in milliseconds. Soaks pair this with a much
    /// shorter job deadline so every stalled attempt exercises
    /// deadline-cancellation rather than just slow completion.
    pub stall_ms: u64,
    /// Rate of injected disk-write failures, per digest.
    pub disk_fail: FaultRate,
    /// Rate of injected torn (checksum-mismatching) cell writes, per
    /// digest.
    pub disk_corrupt: FaultRate,
}

impl Default for ServeChaosPlan {
    fn default() -> Self {
        ServeChaosPlan::none()
    }
}

impl ServeChaosPlan {
    /// No injection anywhere — the production and golden-fence default.
    pub fn none() -> ServeChaosPlan {
        ServeChaosPlan {
            seed: 0,
            worker_panic: FaultRate::NEVER,
            job_stall: FaultRate::NEVER,
            stall_ms: 0,
            disk_fail: FaultRate::NEVER,
            disk_corrupt: FaultRate::NEVER,
        }
    }

    /// The chaos-soak preset: aggressive enough that a short run injects
    /// every fault class, survivable enough that the workload still
    /// completes.
    pub fn soak(seed: u64) -> ServeChaosPlan {
        ServeChaosPlan {
            seed,
            worker_panic: FaultRate::new(1, 4),
            job_stall: FaultRate::new(1, 4),
            stall_ms: 10_000,
            disk_fail: FaultRate::new(1, 4),
            disk_corrupt: FaultRate::new(1, 4),
        }
    }

    /// True when any injection can ever fire. A disabled plan must leave
    /// the server bit-transparent.
    pub fn enabled(&self) -> bool {
        self.worker_panic.enabled()
            || self.job_stall.enabled()
            || self.disk_fail.enabled()
            || self.disk_corrupt.enabled()
    }

    /// The injection verdict for execution attempt `attempt` of the job
    /// with `digest`. Pure function of `(seed, digest, attempt)`.
    pub fn job_decision(&self, digest: u64, attempt: u32) -> JobChaos {
        if !self.enabled() {
            return JobChaos::default();
        }
        let stream = STREAM_JOB
            ^ digest
            ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = SimRng::derive(self.seed, stream);
        JobChaos {
            panic: self.worker_panic.fires(&mut rng),
            stall: self.job_stall.fires(&mut rng),
        }
    }

    /// The disk fate of every cell write for `digest`. Pure function of
    /// `(seed, digest)` — attempt-independent so the cache layer needs no
    /// attempt plumbing.
    pub fn disk_decision(&self, digest: u64) -> DiskChaos {
        if !self.enabled() {
            return DiskChaos::None;
        }
        let mut rng = SimRng::derive(self.seed, STREAM_DISK ^ digest);
        if self.disk_fail.fires(&mut rng) {
            DiskChaos::FailWrite
        } else if self.disk_corrupt.fires(&mut rng) {
            DiskChaos::Corrupt
        } else {
            DiskChaos::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_identity_sensitive() {
        let plan = ServeChaosPlan::soak(42);
        for digest in [1u64, 0xdead_beef, u64::MAX] {
            for attempt in 0..4 {
                assert_eq!(
                    plan.job_decision(digest, attempt),
                    plan.job_decision(digest, attempt)
                );
            }
            assert_eq!(plan.disk_decision(digest), plan.disk_decision(digest));
        }
        // Across enough identities both verdicts of each class appear —
        // the plan is neither always-on nor never-on.
        let mut panics = 0;
        let mut stalls = 0;
        for digest in 0..256u64 {
            let d = plan.job_decision(digest, 0);
            panics += d.panic as u32;
            stalls += d.stall as u32;
        }
        assert!(panics > 0 && panics < 256, "{panics}");
        assert!(stalls > 0 && stalls < 256, "{stalls}");
        // A different attempt of the same digest can differ (retries are
        // not doomed to repeat the first attempt's fate forever).
        let varies = (0..64u64).any(|d| {
            (0..8).any(|a| plan.job_decision(d, a) != plan.job_decision(d, 0))
        });
        assert!(varies);
    }

    #[test]
    fn disabled_plan_never_fires() {
        let plan = ServeChaosPlan::none();
        assert!(!plan.enabled());
        for digest in 0..64u64 {
            assert_eq!(plan.job_decision(digest, 0), JobChaos::default());
            assert_eq!(plan.disk_decision(digest), DiskChaos::None);
        }
    }
}
