//! Supervision hammer: many submitter threads interleave panicking and
//! well-behaved jobs against one pool. Every well-behaved job must
//! complete, every panic must be counted and answered with a respawn,
//! and the pool must converge back to its full complement of live
//! workers. This test lives alone in its binary because it silences the
//! default panic hook — dozens of *intentional* worker panics would
//! otherwise bury the test output.

use asf_serve::pool::WorkerPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SUBMITTERS: usize = 8;
const JOBS_PER_SUBMITTER: usize = 32;

/// Every third job panics — interleaved with the well-behaved ones from
/// the same submitter, so panics land while healthy work is in flight.
fn is_panicker(submitter: usize, job: usize) -> bool {
    (submitter + job).is_multiple_of(3)
}

#[test]
fn hammered_pool_completes_all_wellbehaved_jobs_and_heals() {
    // The panics here are the point; don't let libstd narrate each one.
    std::panic::set_hook(Box::new(|_| {}));

    let pool = Arc::new(WorkerPool::new(4, SUBMITTERS * JOBS_PER_SUBMITTER));
    let completed = Arc::new(AtomicUsize::new(0));

    let mut expected_ok = 0usize;
    let mut expected_panics = 0usize;
    for s in 0..SUBMITTERS {
        for j in 0..JOBS_PER_SUBMITTER {
            if is_panicker(s, j) {
                expected_panics += 1;
            } else {
                expected_ok += 1;
            }
        }
    }

    let submitters: Vec<_> = (0..SUBMITTERS)
        .map(|s| {
            let pool = Arc::clone(&pool);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                for j in 0..JOBS_PER_SUBMITTER {
                    let completed = Arc::clone(&completed);
                    let job = move || {
                        if is_panicker(s, j) {
                            panic!("hammer: intentional job panic");
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    };
                    // The queue is sized for the full load, but respawn
                    // gaps can momentarily close admission; retry.
                    let mut backoff = 0u32;
                    while pool.submit(job.clone()).is_err() {
                        backoff += 1;
                        assert!(backoff < 10_000, "submission starved");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();
    for h in submitters {
        h.join().expect("submitter threads do not panic");
    }

    // Converge: all well-behaved jobs done, all panics counted, pool back
    // at full strength with an empty queue.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let health = pool.health();
        let done = completed.load(Ordering::SeqCst);
        if done == expected_ok
            && health.panics == expected_panics as u64
            && health.queue_depth == 0
            && health.live == health.workers
        {
            assert_eq!(health.workers, 4);
            assert_eq!(
                health.respawns, expected_panics as u64,
                "every retired worker is replaced exactly once"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool failed to converge: done={done}/{expected_ok} health={health:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Drain cleanly; Drop joins every worker, including respawns.
    match Arc::try_unwrap(pool) {
        Ok(pool) => pool.shutdown(),
        Err(_) => panic!("all submitter handles were joined; pool must be unique"),
    }
    let _ = std::panic::take_hook();
}
