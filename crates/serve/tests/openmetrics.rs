//! Exposition-format and flight-recorder contracts against a live server
//! (DESIGN.md §18).
//!
//! The scrape tests drive real traffic and re-parse `GET
//! /v1/metrics/prometheus` with the in-repo OpenMetrics parser: every
//! sample family must carry a `# TYPE` declaration, label values must
//! round-trip through escaping, and counters must never decrease between
//! scrapes. The flight-recorder test injects a deterministic worker panic
//! and requires exactly one schema-valid dump naming the panicking job's
//! digest.

use asf_machine::fault::FaultRate;
use asf_serve::chaos::ServeChaosPlan;
use asf_serve::flightrec::FLIGHTREC_SCHEMA;
use asf_serve::http::Client;
use asf_serve::server::{ServeOpts, Server};
use asf_serve::spec::JobSpec;
use asf_stats::openmetrics::{parse_exposition, Exposition};
use std::time::{Duration, Instant};

fn spec_body(seed: u64) -> String {
    format!(
        "{{\"bench\": \"ssca2\", \"detector\": \"sb4\", \"scale\": \"small\", \
         \"seed\": {seed}}}"
    )
}

fn scrape(client: &mut Client) -> Exposition {
    let resp = client.get("/v1/metrics/prometheus").expect("scrape");
    assert_eq!(resp.status, 200);
    let ct = resp.header("content-type").expect("content-type").to_string();
    assert!(ct.starts_with("text/plain"), "{ct}");
    parse_exposition(&resp.text()).expect("exposition parses")
}

/// Poll a job until it reaches a terminal status; returns that status.
fn await_terminal(client: &mut Client, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = client.get(&format!("/v1/jobs/{id}")).expect("status");
        let text = resp.text();
        let root = asf_stats::json::parse(&text).expect("status parses");
        let status = root.field("status").and_then(|v| v.as_str().map(str::to_string));
        match status.as_deref() {
            Ok("queued" | "running") => {
                assert!(Instant::now() < deadline, "job {id} never landed: {text}");
                std::thread::sleep(Duration::from_millis(2));
            }
            Ok(other) => return other.to_string(),
            Err(e) => panic!("status reply {text:?}: {e}"),
        }
    }
}

#[test]
fn exposition_is_valid_and_counters_never_decrease() {
    let server = Server::start(ServeOpts::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    // Prime the request counters: the endpoint/status families only
    // appear once at least one response has been counted.
    assert_eq!(client.get("/v1/healthz").expect("healthz").status, 200);

    // Scrape 1: before the real traffic.
    let first = scrape(&mut client);
    // Every sample's family carries a TYPE declaration (parse_exposition
    // enforces this; double-check a few families we care about).
    for family in ["asf_http_requests", "asf_uptime_ms", "asf_http_request_duration_ns"] {
        assert!(first.kind(family).is_some(), "missing # TYPE for {family}");
    }
    assert_eq!(first.kind("asf_http_requests"), Some("counter"));
    assert_eq!(first.kind("asf_queue_depth"), Some("gauge"));
    assert_eq!(first.kind("asf_job_e2e_ns"), Some("histogram"));

    // Drive traffic: a job to completion plus a cache-hit repeat.
    let spec = JobSpec::from_json(&spec_body(0x0b53)).expect("spec");
    let submit = client.post("/v1/jobs", &spec_body(0x0b53)).expect("submit");
    assert_eq!(submit.status, 200);
    assert!(submit.header("x-asf-request-id").is_some(), "submit lacks correlation id");
    let status = await_terminal(&mut client, &spec.digest_hex());
    assert_eq!(status, "done");
    let repeat = client.post("/v1/jobs", &spec_body(0x0b53)).expect("repeat");
    assert_eq!(repeat.header("x-asf-cache"), Some("hit"));

    // Scrape 2: every counter sample present in scrape 1 must be <= its
    // successor (counters are monotonic), and the traffic must show up.
    let second = scrape(&mut client);
    for sample in &first.samples {
        let family = asf_stats::openmetrics::family_of(&sample.name);
        if first.kind(&family) != Some("counter") {
            continue;
        }
        let labels: Vec<(&str, &str)> =
            sample.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let later = second
            .value(&sample.name, &labels)
            .unwrap_or_else(|| panic!("{} vanished from scrape 2", sample.name));
        assert!(
            later >= sample.value,
            "counter {}{:?} decreased: {} -> {later}",
            sample.name,
            sample.labels,
            sample.value
        );
    }
    assert!(second.sum("asf_http_requests_total") > first.sum("asf_http_requests_total"));
    assert!(second.value("asf_jobs_total", &[("kind", "completed")]).unwrap_or(0.0) >= 1.0);
    assert!(second.value("asf_jobs_total", &[("kind", "cache_hit")]).unwrap_or(0.0) >= 1.0);
    // The e2e histogram saw the job.
    assert!(second.value("asf_job_e2e_ns_count", &[]).unwrap_or(0.0) >= 1.0);

    server.shutdown();
}

#[test]
fn healthz_reports_build_info_uptime_and_dumps() {
    let server = Server::start(ServeOpts::default()).expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let resp = client.get("/v1/healthz").expect("healthz");
    assert_eq!(resp.status, 200);
    let text = resp.text();
    let root = asf_stats::json::parse(&text).expect("healthz parses");
    assert_eq!(
        root.field("version").unwrap().as_str().unwrap(),
        env!("CARGO_PKG_VERSION"),
        "{text}"
    );
    root.field("uptime_ms").and_then(|v| v.as_u64()).expect("uptime_ms");
    assert_eq!(root.field("flight_dumps").and_then(|v| v.as_u64()), Ok(0));
    let detectors = root.field("detectors").and_then(|v| {
        v.as_arr().map(|a| {
            a.iter().filter_map(|d| d.as_str().ok().map(str::to_string)).collect::<Vec<_>>()
        })
    });
    assert_eq!(
        detectors.unwrap(),
        vec!["baseline", "sb2", "sb4", "sb8", "sb16", "perfect"],
        "{text}"
    );
    server.shutdown();
}

/// Silence the panic hook for the injected panic (it is the point of the
/// test); restores default reporting on drop.
struct QuietInjectedPanics;

impl QuietInjectedPanics {
    fn install() -> QuietInjectedPanics {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("chaos: injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("chaos: injected"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
        QuietInjectedPanics
    }
}

impl Drop for QuietInjectedPanics {
    fn drop(&mut self) {
        // Restoring mid-unwind would abort: the hook cannot be modified
        // from a panicking thread.
        if !std::thread::panicking() {
            let _ = std::panic::take_hook();
        }
    }
}

#[test]
fn injected_panic_dumps_exactly_one_flight_record_naming_the_job() {
    let _quiet = QuietInjectedPanics::install();
    let dir = std::env::temp_dir().join(format!(
        "asf_openmetrics_flightrec_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServeOpts {
        workers: 1,
        chaos: ServeChaosPlan {
            seed: 9,
            worker_panic: FaultRate::ALWAYS,
            ..ServeChaosPlan::none()
        },
        flightrec_dir: Some(dir.clone()),
        ..ServeOpts::default()
    })
    .expect("start");
    let mut client = Client::connect(&server.addr()).expect("connect");

    let spec = JobSpec::from_json(&spec_body(77)).expect("spec");
    let digest = spec.digest_hex();
    let submit = client.post("/v1/jobs", &spec_body(77)).expect("submit");
    assert_eq!(submit.status, 200);
    assert_eq!(await_terminal(&mut client, &digest), "failed");

    // Exactly one dump, schema-valid, reason worker_panic, naming the job.
    let state = server.state();
    assert_eq!(state.flightrec.dumps(), 1);
    let paths = state.flightrec.dump_paths();
    assert_eq!(paths.len(), 1, "{paths:?}");
    let body = std::fs::read_to_string(&paths[0]).expect("read dump");
    let root = asf_stats::json::parse(&body).expect("dump parses");
    assert_eq!(root.field("schema").unwrap().as_str().unwrap(), FLIGHTREC_SCHEMA);
    assert_eq!(root.field("reason").unwrap().as_str().unwrap(), "worker_panic");
    assert_eq!(root.field("job").unwrap().as_str().unwrap(), digest);
    // The ring captured the job's lifecycle, and the panic event names
    // the same digest.
    let events = root.field("events").unwrap().as_arr().unwrap();
    let panic_events: Vec<_> = events
        .iter()
        .filter(|e| e.field("kind").and_then(|k| k.as_str().map(str::to_string)).as_deref() == Ok("job.panic"))
        .collect();
    assert_eq!(panic_events.len(), 1, "{body}");
    assert_eq!(
        panic_events[0].field("job").unwrap().as_str().unwrap(),
        digest
    );

    // Healthz surfaces the dump count.
    let health = client.get("/v1/healthz").expect("healthz").text();
    let root = asf_stats::json::parse(&health).expect("healthz parses");
    assert_eq!(root.field("flight_dumps").and_then(|v| v.as_u64()), Ok(1), "{health}");

    // And the exposition still parses with the panic counted.
    let exposition = scrape(&mut client);
    assert_eq!(exposition.value("asf_flight_dumps_total", &[]), Some(1.0));
    assert!(exposition.value("asf_worker_panics_total", &[]).unwrap_or(0.0) >= 1.0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn label_escaping_round_trips_through_the_parser() {
    let mut r = asf_stats::openmetrics::Renderer::new();
    let hostile = "a\\b\"c\nd";
    r.counter("asf_test_events", "escaping check", &[("name", hostile)], 3);
    let text = r.finish();
    let exposition = parse_exposition(&text).expect("hostile labels still parse");
    assert_eq!(
        exposition.value("asf_test_events_total", &[("name", hostile)]),
        Some(3.0),
        "{text}"
    );
}
