//! Property suite for the serve layer's content-addressed cache: spec
//! digests must be canonical (field order cannot matter), the LRU must
//! hold its capacity bound under arbitrary insert/lookup interleavings,
//! and single-flight must collapse N concurrent identical computations
//! into exactly one execution.

use asf_serve::cache::{CacheConfig, CacheCounters, CachedResult, ResultCache};
use asf_serve::spec::JobSpec;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Digest stability under spec field reordering
// ---------------------------------------------------------------------------

/// The six spec fields as (key, rendered value) pairs.
fn spec_fields(bench: &str, detector: &str, scale: &str, seed: u64, faults: &str, observe: bool)
    -> Vec<(String, String)> {
    vec![
        ("bench".into(), format!("\"{bench}\"")),
        ("detector".into(), format!("\"{detector}\"")),
        ("scale".into(), format!("\"{scale}\"")),
        ("seed".into(), seed.to_string()),
        ("faults".into(), format!("\"{faults}\"")),
        ("observe".into(), observe.to_string()),
    ]
}

fn render(fields: &[(String, String)]) -> String {
    let body: Vec<String> =
        fields.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

fn arb_bench() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec![
        "intruder", "kmeans", "labyrinth", "ssca2", "vacation", "genome",
    ])
}

fn arb_detector() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("baseline".to_string()),
        Just("perfect".to_string()),
        prop::sample::select(vec![2usize, 4, 8, 16]).prop_map(|n| format!("sb{n}")),
    ]
}

fn arb_scale() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["small", "standard", "large", "huge"])
}

fn arb_faults() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["none", "light", "heavy", "max_spurious"])
}

proptest! {
    /// Any permutation of the spec's JSON fields parses to the same spec
    /// and therefore the same content digest.
    #[test]
    fn digest_ignores_field_order(
        bench in arb_bench(),
        detector in arb_detector(),
        scale in arb_scale(),
        seed in any::<u64>(),
        faults in arb_faults(),
        observe in prop::bool::ANY,
        // A permutation expressed as successive swap positions.
        swaps in prop::collection::vec((0usize..6, 0usize..6), 0..8),
    ) {
        let fields = spec_fields(bench, &detector, scale, seed, faults, observe);
        let reference = JobSpec::from_json(&render(&fields)).expect("reference parse");
        let mut shuffled = fields;
        for (a, b) in swaps {
            shuffled.swap(a, b);
        }
        let reparsed = JobSpec::from_json(&render(&shuffled)).expect("shuffled parse");
        prop_assert_eq!(reference.digest(), reparsed.digest());
        prop_assert_eq!(reference.canonical(), reparsed.canonical());
    }

    /// Distinct specs get distinct digests (across this sampled family —
    /// full collision-freedom is not claimable for a 64-bit digest, but
    /// the canonical encodings differ so FNV collisions are astronomically
    /// unlikely within a test run).
    #[test]
    fn digest_separates_neighbouring_specs(
        bench in arb_bench(),
        scale in arb_scale(),
        seed in any::<u64>(),
    ) {
        let base = render(&spec_fields(bench, "sb4", scale, seed, "none", false));
        let spec = JobSpec::from_json(&base).expect("parse");
        let mut bumped = spec.clone();
        bumped.seed = spec.seed.wrapping_add(1);
        prop_assert_ne!(spec.digest(), bumped.digest());
        let mut observed = spec.clone();
        observed.observe = true;
        prop_assert_ne!(spec.digest(), observed.digest());
    }
}

// ---------------------------------------------------------------------------
// LRU bounds
// ---------------------------------------------------------------------------

fn fake_result(digest: u64) -> CachedResult {
    CachedResult {
        spec_digest: digest,
        stats_digest: digest.rotate_left(17),
        body: Arc::new(format!("{{\"digest\": {digest}}}")),
        metrics: None,
        trace: None,
    }
}

fn memory_cache(capacity: usize) -> ResultCache {
    ResultCache::new(CacheConfig { capacity, disk_dir: None }).expect("memory cache")
}

/// Reference model: a plain MRU-ordered vector with the same semantics
/// the slab LRU promises.
struct ModelLru {
    mru: Vec<u64>, // front = most recently used
    capacity: usize,
    evictions: u64,
}

impl ModelLru {
    fn touch(&mut self, key: u64) -> bool {
        if let Some(pos) = self.mru.iter().position(|&k| k == key) {
            let k = self.mru.remove(pos);
            self.mru.insert(0, k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u64) {
        if self.touch(key) {
            return; // refresh, never evicts
        }
        if self.mru.len() >= self.capacity {
            self.mru.pop();
            self.evictions += 1;
        }
        self.mru.insert(0, key);
    }
}

proptest! {
    /// Model-based check: under an arbitrary insert/lookup interleaving
    /// the cache agrees with a naive reference LRU on membership, entry
    /// count (never above capacity), and the eviction tally.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1usize..12,
        ops in prop::collection::vec((0u64..32, prop::bool::ANY), 1..200),
    ) {
        let cache = memory_cache(capacity);
        let mut model = ModelLru { mru: Vec::new(), capacity, evictions: 0 };
        for (key, is_insert) in ops {
            if is_insert {
                cache.insert(key, fake_result(key));
                model.insert(key);
            } else {
                let hit = cache.lookup(key).is_some();
                let model_hit = model.touch(key);
                prop_assert_eq!(hit, model_hit, "membership diverged on {}", key);
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), model.mru.len());
        }
        let evictions = cache.counters.evictions.load(Ordering::Relaxed);
        prop_assert_eq!(evictions, model.evictions);
        // Every key the model holds must be servable (probe via lookup —
        // these touches reorder both sides identically).
        for &key in model.mru.clone().iter() {
            prop_assert!(cache.lookup(key).is_some(), "model key {} missing", key);
        }
    }
}

// ---------------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------------

/// N threads racing `get_or_compute` on one key: exactly one computation
/// runs, everyone gets its value, and the counters agree.
#[test]
fn single_flight_runs_exactly_one_compute() {
    for round in 0..16u64 {
        let cache = Arc::new(memory_cache(8));
        let computed = Arc::new(AtomicUsize::new(0));
        let digest = 0xf00d + round;
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computed = Arc::clone(&computed);
                std::thread::spawn(move || {
                    cache.get_or_compute(digest, move || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so followers really pile up
                        // on the in-flight computation.
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        Ok(fake_result(digest))
                    })
                })
            })
            .collect();
        let results: Vec<_> = threads.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            computed.load(Ordering::SeqCst),
            1,
            "exactly one compute must run (round {round})"
        );
        for r in &results {
            let r = r.as_ref().expect("all callers share the one success");
            assert_eq!(r.spec_digest, digest);
            assert_eq!(*r.body, *results[0].as_ref().unwrap().body);
        }
        let leads = cache.counters.flight_leads.load(Ordering::Relaxed);
        let joins = cache.counters.flight_joins.load(Ordering::Relaxed);
        assert_eq!(leads, 1, "one leader");
        // Late arrivals may find the value already cached (plain hit), so
        // joins ∈ [0, 7]; leads + joins + hits must cover all 8 callers.
        let hits = cache.counters.hits.load(Ordering::Relaxed);
        assert_eq!(leads + joins + hits, 8, "every caller accounted for");
    }
}

/// A failing computation is delivered to every waiter but never cached —
/// the next call recomputes.
#[test]
fn failed_flights_are_not_cached() {
    let cache = memory_cache(8);
    let attempts = AtomicUsize::new(0);
    let digest = 0xdead;
    let once = cache.get_or_compute(digest, || {
        attempts.fetch_add(1, Ordering::SeqCst);
        Err::<CachedResult, String>("watchdog".into())
    });
    assert!(once.is_err());
    assert!(cache.lookup(digest).is_none(), "failures must not be cached");
    let again = cache.get_or_compute(digest, || {
        attempts.fetch_add(1, Ordering::SeqCst);
        Ok(fake_result(digest))
    });
    assert!(again.is_ok());
    assert_eq!(attempts.load(Ordering::SeqCst), 2, "second call recomputes");
}

/// The counters JSON is parsable and carries every field the stats
/// endpoint promises.
#[test]
fn counters_render_all_fields() {
    let counters = CacheCounters::default();
    counters.hits.store(3, Ordering::Relaxed);
    let json = counters.to_json();
    let root = asf_stats::json::parse(&json).expect("counters JSON parses");
    for key in [
        "hits",
        "disk_hits",
        "misses",
        "inserts",
        "evictions",
        "single_flight_joins",
        "single_flight_leads",
    ] {
        assert!(root.field(key).is_ok(), "missing {key} in {json}");
    }
}
