//! Deadline and cancellation lifecycle against a live server. A
//! stall-only chaos plan (every job pauses before computing) makes the
//! timing deterministic: the worker is provably busy while we race
//! queued jobs against the watchdog, cancel a running job, and verify
//! the typed terminal states — `cancelled` and `deadline_exceeded` —
//! answer 410 on the result endpoint and are never cached, so a
//! resubmission computes fresh.

use asf_machine::fault::FaultRate;
use asf_serve::chaos::ServeChaosPlan;
use asf_serve::http::Client;
use asf_serve::server::{ServeOpts, Server};
use std::time::{Duration, Instant};

fn spec_body(seed: u64) -> String {
    format!(
        "{{\"bench\": \"ssca2\", \"detector\": \"sb4\", \"scale\": \"small\", \
         \"seed\": {seed}}}"
    )
}

fn spec_with_deadline(seed: u64, deadline_ms: u64) -> String {
    format!(
        "{{\"bench\": \"ssca2\", \"detector\": \"sb4\", \"scale\": \"small\", \
         \"seed\": {seed}, \"deadline_ms\": {deadline_ms}}}"
    )
}

fn job_id(client: &mut Client, body: &str) -> String {
    let reply = client.post("/v1/jobs", body).expect("submit");
    assert_eq!(reply.status, 200, "{}", reply.text());
    let text = reply.text();
    let root = asf_stats::json::parse(&text).expect("submit reply parses");
    root.field("job").unwrap().as_str().unwrap().to_string()
}

fn poll_status(client: &mut Client, id: &str, wanted: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let reply = client.get(&format!("/v1/jobs/{id}")).expect("status");
        let text = reply.text();
        if text.contains(&format!("\"status\": \"{wanted}\"")) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {wanted:?}; last: {text}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn deadlines_and_cancels_produce_typed_uncached_terminals() {
    // Every job stalls 500ms before computing; nothing else is injected.
    // One worker serialises execution so queued jobs stay queued.
    let server = Server::start(ServeOpts {
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 16,
        deadline_tick_ms: 5,
        chaos: ServeChaosPlan {
            seed: 7,
            job_stall: FaultRate::ALWAYS,
            stall_ms: 500,
            ..ServeChaosPlan::none()
        },
        ..ServeOpts::default()
    })
    .expect("server starts");
    let mut client = Client::connect(&server.addr()).expect("connect");

    // A occupies the lone worker (default deadline, stalled 500ms).
    let a = job_id(&mut client, &spec_body(1));
    poll_status(&mut client, &a, "running");

    // B expires while queued: its 1ms deadline passes long before the
    // worker frees up, and the watchdog transitions it without a run.
    let b = job_id(&mut client, &spec_with_deadline(2, 1));
    poll_status(&mut client, &b, "deadline_exceeded");
    let gone = client.get(&format!("/v1/jobs/{b}/result")).expect("result");
    assert_eq!(gone.status, 410, "{}", gone.text());
    assert!(gone.text().contains("resubmit"), "{}", gone.text());
    // Terminal jobs cannot be cancelled again.
    let conflict = client.delete(&format!("/v1/jobs/{b}")).expect("cancel terminal");
    assert_eq!(conflict.status, 409, "{}", conflict.text());

    // Client-cancel the running job: the stall loop observes the token
    // within milliseconds and lands on `cancelled`.
    let cancelling = client.delete(&format!("/v1/jobs/{a}")).expect("cancel running");
    assert_eq!(cancelling.status, 200, "{}", cancelling.text());
    poll_status(&mut client, &a, "cancelled");
    let gone = client.get(&format!("/v1/jobs/{a}/result")).expect("result");
    assert_eq!(gone.status, 410, "{}", gone.text());

    // C is *running* when its 50ms deadline passes mid-stall: the
    // watchdog fires the token and the stall loop converts it.
    let c = job_id(&mut client, &spec_with_deadline(3, 50));
    poll_status(&mut client, &c, "deadline_exceeded");

    // Nothing cancelled was cached: resubmitting B computes fresh and
    // completes (500ms stall, then the real run) under the default
    // deadline.
    let b2 = job_id(&mut client, &spec_body(2));
    assert_eq!(b2, b, "same spec, same content address");
    poll_status(&mut client, &b2, "done");
    let result = client.get(&format!("/v1/jobs/{b2}/result")).expect("result");
    assert_eq!(result.status, 200, "{}", result.text());
    assert!(result.text().contains("asf-serve-v1"), "{}", result.text());

    // The counters saw one client cancel, two deadline expiries, and the
    // injected stalls.
    let stats = client.get("/v1/cache/stats").expect("stats").text();
    let root = asf_stats::json::parse(&stats).expect("stats parse");
    assert_eq!(root.field("jobs_cancelled").unwrap().as_u64().unwrap(), 1, "{stats}");
    assert_eq!(root.field("jobs_deadline_exceeded").unwrap().as_u64().unwrap(), 2, "{stats}");
    assert!(root.field("chaos_stalls_injected").unwrap().as_u64().unwrap() >= 1, "{stats}");

    // Readiness stayed green throughout (no worker ever died here).
    let health = client.get("/v1/healthz").expect("healthz");
    assert!(health.text().contains("\"ok\": true"), "{}", health.text());
    assert!(health.text().contains("\"worker_panics\": 0"), "{}", health.text());

    server.shutdown();
}

#[test]
fn cancel_of_unknown_or_bad_ids_is_typed() {
    let server = Server::start(ServeOpts {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 4,
        ..ServeOpts::default()
    })
    .expect("server starts");
    let mut client = Client::connect(&server.addr()).expect("connect");
    let bad = client.delete("/v1/jobs/not-hex").expect("bad id");
    assert_eq!(bad.status, 400, "{}", bad.text());
    let unknown = client.delete("/v1/jobs/0123456789abcdef").expect("unknown id");
    assert_eq!(unknown.status, 404, "{}", unknown.text());
    server.shutdown();
}
