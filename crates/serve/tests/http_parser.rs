//! Property suite for the HTTP/1.1 request parser plus live-socket
//! checks of the hardened connection handler: arbitrary chunking must
//! not change what parses, truncated traffic must never produce a bogus
//! request, junk bytes must never panic, pipelined requests must frame
//! cleanly — and on a real socket the server answers 400/408/413 before
//! closing instead of hanging up silently.

use asf_serve::http::{read_request, Client, HttpError, HttpLimits, Request};
use asf_serve::server::{ServeOpts, Server};
use proptest::prelude::*;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Parser properties (pure, over in-memory readers)
// ---------------------------------------------------------------------------

/// A reader that hands out at most `chunk` bytes per `read` call —
/// simulates a peer whose bytes arrive in arbitrarily small pieces.
struct Trickle {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self
            .chunk
            .min(buf.len())
            .min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn parse_trickled(
    bytes: &[u8],
    chunk: usize,
) -> (
    BufReader<Trickle>,
    Result<Option<Request>, HttpError>,
) {
    // A tiny BufReader capacity forces the bounded line reader to cross
    // many fill_buf boundaries, the worst case for framing bugs.
    let mut reader = BufReader::with_capacity(
        chunk.max(1),
        Trickle { data: bytes.to_vec(), pos: 0, chunk: chunk.max(1) },
    );
    let got = read_request(&mut reader, &HttpLimits::default());
    (reader, got)
}

fn render_request(method: &str, path: &str, extra_headers: usize, body: &[u8]) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\nhost: proptest\r\n");
    for i in 0..extra_headers {
        out.push_str(&format!("x-extra-{i}: value-{i}\r\n"));
    }
    out.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    let mut bytes = out.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

fn arb_method() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["GET", "POST", "DELETE", "PUT", "HEAD"])
}

fn arb_path() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!["v1", "jobs", "abc123", "result"]), 1..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    /// A well-formed request parses to the same (method, path, body) no
    /// matter how the transport fragments it.
    #[test]
    fn chunking_never_changes_what_parses(
        method in arb_method(),
        path in arb_path(),
        extra in 0usize..8,
        body in prop::collection::vec(any::<u8>(), 0..200),
        chunk in 1usize..7,
    ) {
        let bytes = render_request(method, &path, extra, &body);
        let (_, got) = parse_trickled(&bytes, chunk);
        let req = got.expect("well-formed request parses").expect("not EOF");
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.path, path);
        prop_assert_eq!(req.body, body);
    }

    /// Truncating a request anywhere strictly short of its full length
    /// must never yield a parsed request — the parser reports EOF or a
    /// typed error, and (crucially) never panics.
    #[test]
    fn truncation_never_fabricates_a_request(
        path in arb_path(),
        body in prop::collection::vec(any::<u8>(), 0..100),
        cut_permille in 0usize..1000,
        chunk in 1usize..5,
    ) {
        let bytes = render_request("POST", &path, 2, &body);
        let cut = bytes.len() * cut_permille / 1000;
        prop_assume!(cut < bytes.len());
        let (_, got) = parse_trickled(&bytes[..cut], chunk);
        prop_assert!(
            !matches!(got, Ok(Some(_))),
            "a truncated request must not parse: {got:?}"
        );
    }

    /// Arbitrary junk never panics the parser, and anything it does
    /// accept has a non-empty method and path.
    #[test]
    fn junk_bytes_never_panic(
        junk in prop::collection::vec(any::<u8>(), 0..300),
        chunk in 1usize..5,
    ) {
        let (_, got) = parse_trickled(&junk, chunk);
        if let Ok(Some(req)) = got {
            prop_assert!(!req.method.is_empty() && !req.path.is_empty());
        }
    }

    /// Pipelined keep-alive traffic frames exactly: N concatenated
    /// requests parse back in order, then a clean EOF.
    #[test]
    fn pipelined_requests_frame_exactly(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..60), 1..6),
        chunk in 1usize..5,
    ) {
        let mut wire = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            wire.extend_from_slice(&render_request("POST", &format!("/v1/req/{i}"), 1, body));
        }
        let mut reader = BufReader::with_capacity(
            chunk,
            Trickle { data: wire, pos: 0, chunk },
        );
        for (i, body) in bodies.iter().enumerate() {
            let req = read_request(&mut reader, &HttpLimits::default())
                .expect("pipelined request parses")
                .expect("not EOF yet");
            prop_assert_eq!(req.path, format!("/v1/req/{i}"));
            prop_assert_eq!(&req.body, body);
        }
        let end = read_request(&mut reader, &HttpLimits::default()).expect("clean end");
        prop_assert!(end.is_none(), "after the last request the stream is a clean EOF");
    }
}

// ---------------------------------------------------------------------------
// Live-socket behaviour of the hardened connection handler
// ---------------------------------------------------------------------------

fn abuse_server() -> Server {
    Server::start(ServeOpts {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 8,
        limits: HttpLimits { max_body: 2048, max_line: 256, max_headers: 8 },
        read_timeout_ms: 300,
        write_timeout_ms: 2_000,
        ..ServeOpts::default()
    })
    .expect("server starts")
}

/// Send raw bytes, then read whatever the server answers until it closes.
fn raw_exchange(addr: &str, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client read timeout");
    stream.write_all(bytes).expect("send");
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    String::from_utf8_lossy(&reply).into_owned()
}

#[test]
fn malformed_traffic_is_answered_400_then_closed() {
    let server = abuse_server();
    // A request line with no path token at all cannot be routed.
    let reply = raw_exchange(&server.addr(), b"nonsense\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    // An endless request line is cut off at the cap, also 400.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4096));
    let reply = raw_exchange(&server.addr(), long.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    // The server survived the abuse.
    let health = Client::connect(&server.addr())
        .and_then(|mut c| c.get("/v1/healthz"))
        .expect("healthz after abuse");
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"ok\": true"), "{}", health.text());
    server.shutdown();
}

#[test]
fn oversized_body_is_rejected_413_without_reading_it() {
    let server = abuse_server();
    // Headers only: the declared length alone must trigger the rejection
    // (the body bytes never arrive).
    let reply = raw_exchange(
        &server.addr(),
        b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    assert!(reply.contains("2048-byte limit"), "{reply}");
    server.shutdown();
}

#[test]
fn slow_loris_mid_request_is_answered_408() {
    let server = abuse_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client read timeout");
    // Start a request and stop: the 300ms server read timeout expires
    // with the request started, which must be answered 408.
    stream.write_all(b"POST /v1/jobs HTTP/1.1\r\nhost:").expect("send partial");
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 408"), "{reply}");
    server.shutdown();
}

#[test]
fn idle_keepalive_is_closed_silently() {
    let server = abuse_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("client read timeout");
    // Send nothing at all: after the read timeout the server hangs up
    // without wasting a status line on a peer that never spoke.
    let mut reply = Vec::new();
    let n = stream.read_to_end(&mut reply).expect("clean close");
    assert_eq!(n, 0, "idle expiry must close without bytes: {reply:?}");
    server.shutdown();
}
