//! # asf-mem — memory-hierarchy substrate
//!
//! Foundation crate for the ASF sub-blocking reproduction. It provides the
//! pieces every other crate builds on:
//!
//! * [`addr`] — byte addresses, line addresses, core/transaction identifiers;
//! * [`mask`] — 64-bit intra-line byte masks ([`mask::AccessMask`]), the
//!   ground-truth representation from which every conflict-detection
//!   granularity (line, sub-block, byte) is derived;
//! * [`geometry`] — set-associative cache geometry (index/tag/offset math);
//! * [`cache`] — a generic set-associative tag array with true-LRU
//!   replacement, parameterised over per-line metadata;
//! * [`moesi`] — the MOESI coherence state machine used by the snooping
//!   fabric;
//! * [`latency`] — the Table II latency model of the paper (AMD Opteron
//!   configuration);
//! * [`config`] — machine configuration ([`config::MachineConfig`]) with the
//!   paper's 8-core Opteron preset;
//! * [`rng`] — a deterministic, dependency-free PRNG (SplitMix64 seeding
//!   xoshiro256**) so simulation runs are reproducible bit-for-bit.
//!
//! Nothing in this crate knows about transactions; it is plain
//! memory-system machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod config;
pub mod fxhash;
pub mod geometry;
pub mod intern;
pub mod latency;
pub mod mask;
pub mod moesi;
pub mod rng;

pub use addr::{Addr, CoreId, LineAddr};
pub use cache::{CacheArray, EvictionInfo, LookupResult};
pub use config::MachineConfig;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use geometry::CacheGeometry;
pub use latency::{AccessLevel, LatencyModel};
pub use mask::AccessMask;
pub use moesi::{CoherenceKind, MoesiState};
pub use rng::SimRng;
