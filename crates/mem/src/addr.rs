//! Address and identifier primitives.
//!
//! The simulator works on a flat 64-bit physical byte address space. A
//! [`LineAddr`] is an address with the intra-line offset stripped; all
//! coherence traffic and speculative bookkeeping are keyed by line address,
//! while byte-exact access information is carried separately as an
//! [`crate::mask::AccessMask`].

use core::fmt;

/// Number of bytes in a cache line throughout the reproduction.
///
/// The paper (Table II) uses 64-byte lines; masks are `u64` bitmaps, one bit
/// per byte, so the line size is fixed at 64.
pub const LINE_SIZE: usize = 64;

/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// A byte address in the simulated physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A cache-line address: a byte address with the low [`LINE_SHIFT`] bits
/// cleared, stored shifted right so consecutive lines are consecutive values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The line this byte belongs to.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Offset of this byte within its line, in `0..LINE_SIZE`.
    #[inline]
    pub fn offset(self) -> usize {
        (self.0 & (LINE_SIZE as u64 - 1)) as usize
    }

    /// Address advanced by `delta` bytes.
    #[inline]
    pub fn offset_by(self, delta: u64) -> Addr {
        Addr(self.0 + delta)
    }
}

impl LineAddr {
    /// Byte address of the first byte of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The "cache line index" used for spatial histograms (Figure 4 of the
    /// paper): simply the line number.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line({:#x})", self.0 << LINE_SHIFT)
    }
}

/// Identifier of a simulated core (and of the hardware thread pinned to it).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// A (byte-exact) memory access: address, size in bytes, and kind.
///
/// `size` may span line boundaries; the machine splits such accesses into
/// per-line pieces before they reach the cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// First byte touched.
    pub addr: Addr,
    /// Number of bytes touched (must be at least 1).
    pub size: u32,
    /// Whether the access writes.
    pub is_write: bool,
}

impl Access {
    /// A read of `size` bytes at `addr`.
    #[inline]
    pub fn read(addr: Addr, size: u32) -> Self {
        Access { addr, size, is_write: false }
    }

    /// A write of `size` bytes at `addr`.
    #[inline]
    pub fn write(addr: Addr, size: u32) -> Self {
        Access { addr, size, is_write: true }
    }

    /// Iterate over the per-line fragments of this access as
    /// `(line, start_offset, len)` triples.
    #[inline]
    pub fn line_fragments(&self) -> impl Iterator<Item = (LineAddr, usize, usize)> + '_ {
        let mut remaining = self.size as usize;
        let mut cursor = self.addr;
        core::iter::from_fn(move || {
            if remaining == 0 {
                return None;
            }
            let line = cursor.line();
            let off = cursor.offset();
            let span = (LINE_SIZE - off).min(remaining);
            remaining -= span;
            cursor = cursor.offset_by(span as u64);
            Some((line, off, span))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_offset_roundtrip() {
        let a = Addr(0x12345);
        assert_eq!(a.line().base().0, 0x12340);
        assert_eq!(a.offset(), 0x5);
        assert_eq!(a.line().index(), 0x12345 >> 6);
    }

    #[test]
    fn line_base_is_aligned() {
        for raw in [0u64, 1, 63, 64, 65, 127, 1 << 40] {
            let base = Addr(raw).line().base();
            assert_eq!(base.0 % LINE_SIZE as u64, 0);
            assert!(base.0 <= raw && raw < base.0 + LINE_SIZE as u64);
        }
    }

    #[test]
    fn single_line_fragment() {
        let acc = Access::read(Addr(0x100), 8);
        let frags: Vec<_> = acc.line_fragments().collect();
        assert_eq!(frags, vec![(Addr(0x100).line(), 0, 8)]);
    }

    #[test]
    fn straddling_fragments() {
        // 12-byte write starting 4 bytes before a line boundary.
        let acc = Access::write(Addr(0x13c), 12);
        let frags: Vec<_> = acc.line_fragments().collect();
        assert_eq!(
            frags,
            vec![
                (Addr(0x13c).line(), 60, 4),
                (Addr(0x140).line(), 0, 8),
            ]
        );
    }

    #[test]
    fn fragment_spans_cover_whole_access() {
        let acc = Access::read(Addr(0x3f), 200);
        let total: usize = acc.line_fragments().map(|(_, _, n)| n).sum();
        assert_eq!(total, 200);
        // Fragments are contiguous.
        let mut expect = Addr(0x3f);
        for (line, off, n) in acc.line_fragments() {
            assert_eq!(line.base().offset_by(off as u64), expect);
            expect = expect.offset_by(n as u64);
        }
    }
}
