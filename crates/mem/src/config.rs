//! Machine configuration (the physical half of Table II).

use crate::geometry::CacheGeometry;
use crate::latency::LatencyModel;

/// Physical configuration of the simulated multicore machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MachineConfig {
    /// Number of cores (each runs one workload thread).
    pub cores: usize,
    /// Private L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Private L2 geometry.
    pub l2: CacheGeometry,
    /// Private L3 geometry.
    pub l3: CacheGeometry,
    /// Load-to-use latencies.
    pub latency: LatencyModel,
}

impl MachineConfig {
    /// The paper's Table II machine: 8 Opteron-like cores, 64 KB 2-way L1
    /// (64-B lines), 512 KB 16-way private L2, 2 MB 16-way private L3.
    pub fn opteron_8core() -> MachineConfig {
        MachineConfig {
            cores: 8,
            l1: CacheGeometry::new(64 * 1024, 2),
            l2: CacheGeometry::new(512 * 1024, 16),
            l3: CacheGeometry::new(2 * 1024 * 1024, 16),
            latency: LatencyModel::opteron(),
        }
    }

    /// Same caches, different core count (used by scripted tests and
    /// sensitivity sweeps).
    pub fn opteron_with_cores(cores: usize) -> MachineConfig {
        assert!(cores >= 1, "need at least one core");
        MachineConfig { cores, ..MachineConfig::opteron_8core() }
    }

    /// A deliberately tiny machine (4-set L1) used by capacity-abort tests.
    pub fn tiny_l1(cores: usize) -> MachineConfig {
        MachineConfig {
            cores,
            l1: CacheGeometry::new(4 * 2 * 64, 2), // 4 sets, 2 ways
            l2: CacheGeometry::new(64 * 16 * 64, 16),
            l3: CacheGeometry::new(128 * 16 * 64, 16),
            latency: LatencyModel::opteron(),
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::opteron_8core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let m = MachineConfig::opteron_8core();
        assert_eq!(m.cores, 8);
        assert_eq!(m.l1.sets(), 512);
        assert_eq!(m.l1.ways, 2);
        assert_eq!(m.l2.size_bytes, 512 * 1024);
        assert_eq!(m.l3.size_bytes, 2 * 1024 * 1024);
    }

    #[test]
    fn tiny_l1_is_tiny() {
        let m = MachineConfig::tiny_l1(2);
        assert_eq!(m.l1.sets(), 4);
        assert_eq!(m.l1.lines(), 8);
    }
}
