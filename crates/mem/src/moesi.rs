//! MOESI coherence states and transition rules.
//!
//! ASF deliberately leaves the coherence protocol untouched; the sub-blocking
//! technique rides on the same probe messages. The simulator therefore needs
//! an ordinary MOESI implementation: the transition functions here are pure
//! (state in → state out) and are driven by the snooping fabric in
//! `asf-machine`.
//!
//! Probe vocabulary (matching the paper's terminology):
//! * a **non-invalidating probe** is sent by a reader that misses — remote
//!   copies survive but an exclusive/modified owner degrades to Owned;
//! * an **invalidating probe** is sent by a writer (miss or upgrade) — all
//!   remote copies are invalidated.

use core::fmt;

/// Which coherence protocol family the fabric runs.
///
/// ASF uses MOESI (AMD); the MESI variant drops the Owned state — a dirty
/// line observed by a remote reader writes back and becomes Shared instead
/// of staying the designated owner. Conflict detection is untouched; only
/// who supplies data (and hence some latencies) changes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CoherenceKind {
    /// AMD-style MOESI (the paper's machine).
    #[default]
    Moesi,
    /// Classic four-state MESI (ablation).
    Mesi,
}

/// MOESI state of one cache line copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MoesiState {
    /// Modified: sole dirty copy.
    Modified,
    /// Owned: dirty copy that other sharers may also hold (read-only).
    Owned,
    /// Exclusive: sole clean copy.
    Exclusive,
    /// Shared: clean copy, other sharers may exist.
    Shared,
    /// Invalid: not present (used transiently; invalid lines are normally
    /// simply absent from the tag array).
    #[default]
    Invalid,
}

impl MoesiState {
    /// Can the local core read without a coherence transaction?
    #[inline]
    pub fn readable(self) -> bool {
        !matches!(self, MoesiState::Invalid)
    }

    /// Can the local core write without a coherence transaction?
    #[inline]
    pub fn writable(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Exclusive)
    }

    /// Does this copy hold dirty data it must supply to requesters?
    #[inline]
    pub fn owns_data(self) -> bool {
        matches!(
            self,
            MoesiState::Modified | MoesiState::Owned | MoesiState::Exclusive
        )
    }

    /// Does moving from `self` to `next` lose a privilege (write permission
    /// or data ownership)? Used by the observability layer to count
    /// coherence downgrades distinctly from full invalidations.
    #[inline]
    pub fn is_demotion(self, next: MoesiState) -> bool {
        (self.writable() && !next.writable()) || (self.owns_data() && !next.owns_data())
    }

    /// State after the local core *writes* this copy (assumes permission has
    /// been obtained; writing a Shared/Owned/Invalid copy first requires an
    /// invalidating probe).
    #[inline]
    pub fn after_local_write(self) -> MoesiState {
        MoesiState::Modified
    }

    /// State after receiving a remote **non-invalidating** probe (a remote
    /// read miss).
    ///
    /// M/E degrade because another sharer now exists; M keeps data ownership
    /// by moving to Owned, E gives up exclusivity and becomes Shared (clean
    /// data also lives in memory), O and S are unchanged.
    #[inline]
    pub fn after_remote_read(self) -> MoesiState {
        self.after_remote_read_with(CoherenceKind::Moesi)
    }

    /// [`MoesiState::after_remote_read`] parameterised by protocol family:
    /// under MESI a Modified line writes back and becomes Shared (no Owned
    /// state exists).
    #[inline]
    pub fn after_remote_read_with(self, kind: CoherenceKind) -> MoesiState {
        match (self, kind) {
            (MoesiState::Modified | MoesiState::Owned, CoherenceKind::Moesi) => MoesiState::Owned,
            (MoesiState::Modified | MoesiState::Owned, CoherenceKind::Mesi) => MoesiState::Shared,
            (MoesiState::Exclusive | MoesiState::Shared, _) => MoesiState::Shared,
            (MoesiState::Invalid, _) => MoesiState::Invalid,
        }
    }

    /// State after receiving a remote **invalidating** probe (a remote write
    /// miss or upgrade): always Invalid.
    #[inline]
    pub fn after_remote_write(self) -> MoesiState {
        MoesiState::Invalid
    }

    /// State in which a requester installs a line it just fetched.
    ///
    /// * For a write the requester always installs Modified.
    /// * For a read it installs Exclusive when no other core held the line,
    ///   Shared otherwise.
    #[inline]
    pub fn install_for(is_write: bool, others_had_copy: bool) -> MoesiState {
        if is_write {
            MoesiState::Modified
        } else if others_had_copy {
            MoesiState::Shared
        } else {
            MoesiState::Exclusive
        }
    }
}

impl fmt::Display for MoesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MoesiState::Modified => 'M',
            MoesiState::Owned => 'O',
            MoesiState::Exclusive => 'E',
            MoesiState::Shared => 'S',
            MoesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::MoesiState::*;

    #[test]
    fn permissions() {
        assert!(Modified.writable() && Modified.readable());
        assert!(Exclusive.writable() && Exclusive.readable());
        assert!(!Owned.writable() && Owned.readable());
        assert!(!Shared.writable() && Shared.readable());
        assert!(!Invalid.writable() && !Invalid.readable());
    }

    #[test]
    fn ownership() {
        assert!(Modified.owns_data());
        assert!(Owned.owns_data());
        assert!(Exclusive.owns_data());
        assert!(!Shared.owns_data());
        assert!(!Invalid.owns_data());
    }

    #[test]
    fn remote_read_transitions() {
        assert_eq!(Modified.after_remote_read(), Owned);
        assert_eq!(Owned.after_remote_read(), Owned);
        assert_eq!(Exclusive.after_remote_read(), Shared);
        assert_eq!(Shared.after_remote_read(), Shared);
        assert_eq!(Invalid.after_remote_read(), Invalid);
    }

    #[test]
    fn mesi_drops_the_owned_state() {
        use super::CoherenceKind::Mesi;
        assert_eq!(Modified.after_remote_read_with(Mesi), Shared);
        assert_eq!(Owned.after_remote_read_with(Mesi), Shared);
        assert_eq!(Exclusive.after_remote_read_with(Mesi), Shared);
        // No state owns dirty data after a MESI remote read.
        assert!(!Modified.after_remote_read_with(Mesi).owns_data());
    }

    #[test]
    fn remote_write_invalidates_everything() {
        for s in [Modified, Owned, Exclusive, Shared, Invalid] {
            assert_eq!(s.after_remote_write(), Invalid);
        }
    }

    #[test]
    fn install_states() {
        use super::MoesiState;
        assert_eq!(MoesiState::install_for(true, true), Modified);
        assert_eq!(MoesiState::install_for(true, false), Modified);
        assert_eq!(MoesiState::install_for(false, true), Shared);
        assert_eq!(MoesiState::install_for(false, false), Exclusive);
    }

    #[test]
    fn demotions() {
        // Losing write permission or data ownership is a demotion…
        assert!(Modified.is_demotion(Owned));
        assert!(Modified.is_demotion(Shared));
        assert!(Exclusive.is_demotion(Shared));
        assert!(Owned.is_demotion(Shared));
        // …staying put, gaining privilege, or losing a copy one never had
        // privileges on is not (Shared → Invalid is an invalidation, which
        // the fabric counts separately).
        assert!(!Shared.is_demotion(Invalid));
        assert!(!Owned.is_demotion(Owned));
        assert!(!Shared.is_demotion(Modified));
    }

    /// After any remote probe, at most one core can be left in a
    /// data-owning dirty state — spot-check the pairwise invariant used by
    /// the fabric.
    #[test]
    fn no_two_writers() {
        // If A is Modified and B requests a write, A must end Invalid.
        assert_eq!(Modified.after_remote_write(), Invalid);
        // If A is Modified and B requests a read, A ends Owned (read-only).
        assert!(!Modified.after_remote_read().writable());
    }
}
