//! Set-associative cache geometry: size/associativity → index & tag math.

use crate::addr::{LineAddr, LINE_SIZE};

/// Geometry of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Construct a geometry, validating that it divides into whole
    /// power-of-two sets of [`LINE_SIZE`]-byte lines.
    ///
    /// # Panics
    /// If the configuration is not realisable (non-multiple size, zero ways,
    /// non-power-of-two set count).
    pub fn new(size_bytes: usize, ways: usize) -> CacheGeometry {
        assert!(ways >= 1, "cache must have at least one way");
        assert!(
            size_bytes.is_multiple_of(LINE_SIZE * ways),
            "cache size {size_bytes} not a multiple of ways*line ({ways}*{LINE_SIZE})"
        );
        let g = CacheGeometry { size_bytes, ways };
        assert!(
            g.sets().is_power_of_two(),
            "set count {} must be a power of two",
            g.sets()
        );
        g
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.size_bytes / (LINE_SIZE * self.ways)
    }

    /// Total number of lines the cache can hold.
    #[inline]
    pub fn lines(&self) -> usize {
        self.size_bytes / LINE_SIZE
    }

    /// Set index for a line address.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) & (self.sets() - 1)
    }

    /// Tag for a line address (the bits above the index).
    #[inline]
    pub fn tag_of(&self, line: LineAddr) -> u64 {
        line.0 >> self.sets().trailing_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn paper_l1_geometry() {
        // Table II: 64 KB, 64 B lines, 2-way ⇒ 512 sets.
        let g = CacheGeometry::new(64 * 1024, 2);
        assert_eq!(g.sets(), 512);
        assert_eq!(g.lines(), 1024);
    }

    #[test]
    fn paper_l2_l3_geometry() {
        let l2 = CacheGeometry::new(512 * 1024, 16);
        assert_eq!(l2.sets(), 512);
        let l3 = CacheGeometry::new(2 * 1024 * 1024, 16);
        assert_eq!(l3.sets(), 2048);
    }

    #[test]
    fn set_and_tag_partition_the_line_address() {
        let g = CacheGeometry::new(64 * 1024, 2);
        for raw in [0u64, 0x40, 64 * 1024, 0xde_adbe_efc0] {
            let line = Addr(raw).line();
            let set = g.set_of(line);
            let tag = g.tag_of(line);
            assert!(set < g.sets());
            // Reconstruct.
            assert_eq!((tag << 9) | set as u64, line.0);
        }
    }

    #[test]
    fn lines_one_set_apart_share_a_set() {
        let g = CacheGeometry::new(64 * 1024, 2);
        let a = Addr(0).line();
        let b = Addr(512 * 64).line(); // 512 sets later
        assert_eq!(g.set_of(a), g.set_of(b));
        assert_ne!(g.tag_of(a), g.tag_of(b));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = CacheGeometry::new(3 * 64 * 2, 2); // 3 sets
    }
}
