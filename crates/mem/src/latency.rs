//! Table II latency model.
//!
//! The paper simulates a "generic AMD Opteron" configuration; conflict
//! behaviour is driven by interleaving, so only load-to-use latencies are
//! modelled: L1 3 cycles, L2 15, L3 50, memory 210. Cache-to-cache transfers
//! from a remote L1 are charged the remote-transfer latency (same class as
//! L3 — an on-package hop), a standard cycle-approximate choice.

/// Where an access was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessLevel {
    /// Local L1 hit.
    L1,
    /// Local (private) L2 hit.
    L2,
    /// Local (private) L3 hit.
    L3,
    /// Supplied by another core's cache.
    RemoteCache,
    /// Main memory.
    Memory,
}

/// Load-to-use latencies in core cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LatencyModel {
    /// L1 data-cache hit.
    pub l1: u64,
    /// Private L2 hit.
    pub l2: u64,
    /// Private L3 hit.
    pub l3: u64,
    /// Cache-to-cache transfer from a remote core.
    pub remote: u64,
    /// Main memory access.
    pub memory: u64,
}

impl LatencyModel {
    /// The paper's Table II values.
    pub const fn opteron() -> LatencyModel {
        LatencyModel { l1: 3, l2: 15, l3: 50, remote: 50, memory: 210 }
    }

    /// Latency for an access satisfied at `level`.
    #[inline]
    pub fn for_level(&self, level: AccessLevel) -> u64 {
        match level {
            AccessLevel::L1 => self.l1,
            AccessLevel::L2 => self.l2,
            AccessLevel::L3 => self.l3,
            AccessLevel::RemoteCache => self.remote,
            AccessLevel::Memory => self.memory,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::opteron()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let m = LatencyModel::opteron();
        assert_eq!(m.for_level(AccessLevel::L1), 3);
        assert_eq!(m.for_level(AccessLevel::L2), 15);
        assert_eq!(m.for_level(AccessLevel::L3), 50);
        assert_eq!(m.for_level(AccessLevel::Memory), 210);
    }

    #[test]
    fn latencies_increase_with_distance() {
        let m = LatencyModel::default();
        assert!(m.l1 < m.l2 && m.l2 < m.l3 && m.l3 <= m.remote && m.remote < m.memory);
    }
}
