//! A small multiply-based hasher for the simulator's hot-path maps.
//!
//! The std `HashMap` default (SipHash-1-3) is keyed and DoS-resistant —
//! qualities the simulator does not need for maps keyed by line addresses
//! it generated itself — and costs tens of cycles per lookup. This is the
//! Firefox/rustc "Fx" construction: per word, `state = (state rotl 5 ^
//! word) * K` with a single odd 64-bit constant. No external crate
//! (offline build; see vendor/README.md for the dependency policy).
//!
//! Iteration order of an `FxHashMap` differs from the std default, so this
//! must only back maps whose iteration order is never observable — every
//! use in this workspace is keyed lookup, `values()` aggregation, or
//! externally-sorted iteration, and `tests/golden_stats.rs` pins the
//! simulator's full output to catch any slip.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed by the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 2^64 / φ, forced odd — the multiplicative-hashing constant used by
/// rustc's FxHash.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The hasher state: one 64-bit word.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_word(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut word = [0u8; 8];
            word[..bytes.len()].copy_from_slice(bytes);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(f: impl Fn(&mut FxHasher)) -> u64 {
        let mut h = FxHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        let a = hash_of(|h| h.write_u64(0x1234));
        let b = hash_of(|h| h.write_u64(0x1234));
        let c = hash_of(|h| h.write_u64(0x1235));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(hash_of(|h| h.write_u64(0)), hash_of(|h| h.write_u64(1)));
    }

    #[test]
    fn byte_stream_matches_padding_rules() {
        // A 12-byte write = one full word + one zero-padded tail word.
        let bytes = hash_of(|h| h.write(&[1u8; 12]));
        let manual = hash_of(|h| {
            h.add_word(u64::from_le_bytes([1; 8]));
            h.add_word(u64::from_le_bytes([1, 1, 1, 1, 0, 0, 0, 0]));
        });
        assert_eq!(bytes, manual);
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 64, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&(i as u32)));
        }
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(42);
        assert!(s.contains(&42) && !s.contains(&43));
    }

    #[test]
    fn line_addr_keys_spread_over_buckets() {
        // Sequential line addresses (the dominant key pattern) must not
        // collapse to a few hash values in the low bits HashMap uses.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u64 {
            low_bits.insert(hash_of(|h| h.write_u64(i)) & 0xff);
        }
        assert!(low_bits.len() > 128, "only {} distinct low bytes", low_bits.len());
    }
}
