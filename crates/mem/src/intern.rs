//! Line-address interning: `LineAddr` → dense `u32` id.
//!
//! The simulator keys several global per-line structures (residency index,
//! speculative-state directory, probe-filter directory, adaptive heat) by
//! line address. Hashing the same line once per structure per access adds
//! up on the hot path; interning pays **one** hash probe per line fragment
//! and turns every downstream lookup into a plain array index.
//!
//! Ids are allocated densely in first-seen order and never recycled — the
//! id space is bounded by the distinct lines a workload touches, which is
//! exactly the footprint the hash maps held anyway. Because allocation
//! order is a pure function of the (deterministic) access stream, the ids
//! themselves are deterministic, and structures indexed by them behave
//! identically across runs.

use crate::addr::LineAddr;
use crate::fxhash::FxHashMap;

/// Dense id for an interned [`LineAddr`] (see [`LineInterner`]).
pub type LineId = u32;

/// An append-only `LineAddr` ↔ dense-id table.
///
/// ```
/// use asf_mem::addr::Addr;
/// use asf_mem::intern::LineInterner;
///
/// let mut t = LineInterner::new();
/// let a = t.intern(Addr(0x1000).line());
/// let b = t.intern(Addr(0x2000).line());
/// assert_ne!(a, b);
/// assert_eq!(t.intern(Addr(0x1038).line()), a); // same 64-byte line
/// assert_eq!(t.line(b), Addr(0x2000).line());
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct LineInterner {
    ids: FxHashMap<LineAddr, LineId>,
    lines: Vec<LineAddr>,
}

impl LineInterner {
    /// Fresh, empty table.
    pub fn new() -> LineInterner {
        LineInterner::default()
    }

    /// Id of `line`, allocating the next dense id on first sight.
    #[inline]
    pub fn intern(&mut self, line: LineAddr) -> LineId {
        if let Some(&id) = self.ids.get(&line) {
            return id;
        }
        let id = self.lines.len() as LineId;
        self.ids.insert(line, id);
        self.lines.push(line);
        id
    }

    /// Id of `line` if it has ever been interned.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<LineId> {
        self.ids.get(&line).copied()
    }

    /// The line behind `id`.
    ///
    /// # Panics
    /// If `id` was never returned by [`LineInterner::intern`].
    #[inline]
    pub fn line(&self, id: LineId) -> LineAddr {
        self.lines[id as usize]
    }

    /// Number of distinct lines interned so far (= the smallest id not yet
    /// allocated — callers size dense side tables from this).
    #[inline]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Has nothing been interned yet?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// All interned lines with their ids, in allocation (= id) order.
    pub fn iter(&self) -> impl Iterator<Item = (LineId, LineAddr)> + '_ {
        self.lines.iter().enumerate().map(|(i, &l)| (i as LineId, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut t = LineInterner::new();
        for n in 0..100 {
            assert_eq!(t.intern(line(n)), n as LineId);
        }
        // Re-interning returns the original id, allocates nothing.
        for n in (0..100).rev() {
            assert_eq!(t.intern(line(n)), n as LineId);
        }
        assert_eq!(t.len(), 100);
        for n in 0..100 {
            assert_eq!(t.line(n as LineId), line(n as u64));
            assert_eq!(t.get(line(n as u64)), Some(n as LineId));
        }
        assert_eq!(t.get(line(100)), None);
    }

    #[test]
    fn iter_walks_in_id_order() {
        let mut t = LineInterner::new();
        t.intern(line(7));
        t.intern(line(3));
        t.intern(line(7));
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(0, line(7)), (1, line(3))]);
    }

    #[test]
    fn empty_table() {
        let t = LineInterner::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(line(0)), None);
    }
}
