//! Deterministic, dependency-free PRNG for reproducible simulation.
//!
//! SplitMix64 expands a `u64` seed into the 256-bit state of xoshiro256**
//! (Blackman & Vigna). Every workload thread derives its stream from
//! `(run_seed, thread_id)`, so a whole experiment is a pure function of its
//! seed — the property the harness relies on to make the regenerated tables
//! reproducible bit-for-bit.

/// xoshiro256** seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** state must not be all zero; SplitMix64 cannot emit
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Derive an independent stream for a sub-entity (e.g. a thread).
    pub fn derive(seed: u64, stream: u64) -> SimRng {
        SimRng::seed_from_u64(seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (rejection-free Lemire reduction; the
    /// slight modulo bias of the plain multiply-shift is irrelevant for
    /// workload generation and keeps the hot path branch-free).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `0..bound`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in `lo..hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `num/denom`.
    #[inline]
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric-ish burst length: 1 + number of successes of repeated
    /// `p = num/denom` trials, capped at `cap`. Used by workloads to model
    /// clustered access runs.
    pub fn burst(&mut self, num: u64, denom: u64, cap: u32) -> u32 {
        let mut n = 1;
        while n < cap && self.chance(num, denom) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent() {
        let mut a = SimRng::derive(7, 0);
        let mut b = SimRng::derive(7, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn burst_capped() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let b = r.burst(9, 10, 5);
            assert!((1..=5).contains(&b));
        }
    }

    #[test]
    fn known_first_value_is_stable() {
        // Pin the stream so accidental algorithm changes are caught: this
        // value is part of the reproducibility contract of the harness.
        let mut r = SimRng::seed_from_u64(0);
        let v = r.next_u64();
        let mut r2 = SimRng::seed_from_u64(0);
        assert_eq!(v, r2.next_u64());
        assert_ne!(v, 0);
    }
}
