//! Intra-line byte masks — the ground truth for conflict granularity.
//!
//! Every speculative access inside a transaction records exactly which bytes
//! of which line it touched, as a 64-bit bitmap (bit *i* = byte *i* of the
//! 64-byte line). All three conflict-detection granularities studied by the
//! paper are *views* of this single representation:
//!
//! * the **baseline ASF** detector collapses a mask to "any bit set"
//!   (line granularity);
//! * the **sub-blocking** detector coarsens a mask to `N` sub-blocks with
//!   [`AccessMask::coarsen`];
//! * the **perfect** system uses the mask bit-for-bit (byte granularity).
//!
//! Keeping one representation with explicit coarsening makes the key
//! property of the paper checkable by construction: a conflict flagged at a
//! finer granularity is always flagged at a coarser one (see the proptest
//! `coarsen_is_monotone`).

use crate::addr::LINE_SIZE;
use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// A set of byte offsets within one cache line (bit *i* ⇔ byte *i*).
///
/// ```
/// use asf_mem::mask::AccessMask;
///
/// let write = AccessMask::from_range(0, 4);  // bytes 0..4
/// let read = AccessMask::from_range(4, 4);   // bytes 4..8
/// assert!(!write.overlaps(read));            // no true conflict…
/// assert!(write.coarsen(8).overlaps(read.coarsen(8))); // …but 8-byte blocks collide
/// assert!(!write.coarsen(16).overlaps(read.coarsen(16))); // 4-byte blocks don't
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccessMask(pub u64);

impl AccessMask {
    /// The empty mask.
    pub const EMPTY: AccessMask = AccessMask(0);

    /// Mask covering the whole line.
    pub const FULL: AccessMask = AccessMask(u64::MAX);

    /// Mask for `len` bytes starting at intra-line offset `offset`.
    ///
    /// # Panics
    /// If the range does not fit in the line or `len == 0`.
    #[inline]
    pub fn from_range(offset: usize, len: usize) -> AccessMask {
        assert!(len >= 1, "empty access");
        assert!(
            offset + len <= LINE_SIZE,
            "range {offset}+{len} exceeds line size {LINE_SIZE}"
        );
        if len == LINE_SIZE {
            AccessMask::FULL
        } else {
            AccessMask(((1u64 << len) - 1) << offset)
        }
    }

    /// True if no byte is covered.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if any byte is covered.
    #[inline]
    pub fn any(self) -> bool {
        self.0 != 0
    }

    /// True if this mask shares at least one byte with `other`.
    #[inline]
    pub fn overlaps(self, other: AccessMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Number of bytes covered.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Coarsen to `sub_blocks` equal sub-blocks: every sub-block containing
    /// at least one covered byte becomes fully covered.
    ///
    /// `sub_blocks` must be a power of two in `1..=64`. `coarsen(64)` is the
    /// identity; `coarsen(1)` yields [`AccessMask::FULL`] for any non-empty
    /// mask (line granularity).
    #[inline]
    pub fn coarsen(self, sub_blocks: usize) -> AccessMask {
        let sb_mask = self.to_subblock_bits(sub_blocks);
        AccessMask::from_subblock_bits(sb_mask, sub_blocks)
    }

    /// Collapse to a bitmap with one bit per sub-block (bit *i* set iff any
    /// byte of sub-block *i* is covered). This models the hardware `SPEC`/`WR`
    /// bit vectors, which have exactly `sub_blocks` entries.
    #[inline]
    pub fn to_subblock_bits(self, sub_blocks: usize) -> u64 {
        assert!(
            sub_blocks.is_power_of_two() && (1..=LINE_SIZE).contains(&sub_blocks),
            "sub-block count must be a power of two in 1..=64, got {sub_blocks}"
        );
        if sub_blocks == LINE_SIZE {
            return self.0;
        }
        let bytes_per_sb = LINE_SIZE / sub_blocks;
        // Bytes of one sub-block; bytes_per_sb == 64 only when sub_blocks == 1.
        let chunk = if bytes_per_sb == LINE_SIZE {
            u64::MAX
        } else {
            (1u64 << bytes_per_sb) - 1
        };
        let mut out = 0u64;
        for sb in 0..sub_blocks {
            if self.0 & (chunk << (sb * bytes_per_sb)) != 0 {
                out |= 1 << sb;
            }
        }
        out
    }

    /// Inverse of [`AccessMask::to_subblock_bits`]: expand a per-sub-block
    /// bitmap back to a byte mask in which flagged sub-blocks are fully
    /// covered.
    #[inline]
    pub fn from_subblock_bits(bits: u64, sub_blocks: usize) -> AccessMask {
        assert!(
            sub_blocks.is_power_of_two() && (1..=LINE_SIZE).contains(&sub_blocks),
            "sub-block count must be a power of two in 1..=64, got {sub_blocks}"
        );
        if sub_blocks == LINE_SIZE {
            return AccessMask(bits);
        }
        let bytes_per_sb = LINE_SIZE / sub_blocks;
        let chunk = if bytes_per_sb == LINE_SIZE {
            u64::MAX
        } else {
            (1u64 << bytes_per_sb) - 1
        };
        let mut out = 0u64;
        for sb in 0..sub_blocks {
            if bits & (1 << sb) != 0 {
                out |= chunk << (sb * bytes_per_sb);
            }
        }
        AccessMask(out)
    }

    /// Iterate over covered byte offsets, ascending.
    #[inline]
    pub fn iter_offsets(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl BitOr for AccessMask {
    type Output = AccessMask;
    #[inline]
    fn bitor(self, rhs: AccessMask) -> AccessMask {
        AccessMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for AccessMask {
    #[inline]
    fn bitor_assign(&mut self, rhs: AccessMask) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for AccessMask {
    type Output = AccessMask;
    #[inline]
    fn bitand(self, rhs: AccessMask) -> AccessMask {
        AccessMask(self.0 & rhs.0)
    }
}

impl Not for AccessMask {
    type Output = AccessMask;
    #[inline]
    fn not(self) -> AccessMask {
        AccessMask(!self.0)
    }
}

impl fmt::Debug for AccessMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccessMask({:#018x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_range_basic() {
        assert_eq!(AccessMask::from_range(0, 1).0, 0x1);
        assert_eq!(AccessMask::from_range(0, 8).0, 0xff);
        assert_eq!(AccessMask::from_range(8, 8).0, 0xff00);
        assert_eq!(AccessMask::from_range(63, 1).0, 1 << 63);
        assert_eq!(AccessMask::from_range(0, 64), AccessMask::FULL);
    }

    #[test]
    #[should_panic(expected = "exceeds line size")]
    fn from_range_overflow_panics() {
        let _ = AccessMask::from_range(60, 8);
    }

    #[test]
    #[should_panic(expected = "empty access")]
    fn from_range_empty_panics() {
        let _ = AccessMask::from_range(0, 0);
    }

    #[test]
    fn overlap_rules() {
        let a = AccessMask::from_range(0, 8);
        let b = AccessMask::from_range(8, 8);
        let c = AccessMask::from_range(4, 8);
        assert!(!a.overlaps(b));
        assert!(a.overlaps(c));
        assert!(b.overlaps(c));
        assert!(!a.overlaps(AccessMask::EMPTY));
    }

    #[test]
    fn coarsen_line_granularity() {
        let a = AccessMask::from_range(17, 2);
        assert_eq!(a.coarsen(1), AccessMask::FULL);
        assert_eq!(AccessMask::EMPTY.coarsen(1), AccessMask::EMPTY);
    }

    #[test]
    fn coarsen_identity_at_byte_granularity() {
        let a = AccessMask::from_range(13, 11);
        assert_eq!(a.coarsen(64), a);
    }

    #[test]
    fn coarsen_four_subblocks() {
        // Bytes 0..8 live entirely in sub-block 0 of 4 (bytes 0..16).
        let a = AccessMask::from_range(0, 8);
        assert_eq!(a.coarsen(4), AccessMask::from_range(0, 16));
        // A 2-byte access at offset 15 straddles sub-blocks 0 and 1.
        let b = AccessMask::from_range(15, 2);
        assert_eq!(b.coarsen(4), AccessMask::from_range(0, 32));
    }

    #[test]
    fn subblock_bits_roundtrip() {
        let a = AccessMask::from_range(20, 20); // bytes 20..40 span sub-blocks 1..=2 of 4
        assert_eq!(a.to_subblock_bits(4), 0b0110);
        assert_eq!(
            AccessMask::from_subblock_bits(0b0110, 4),
            AccessMask::from_range(16, 32)
        );
    }

    #[test]
    fn disjoint_at_fine_grain_conflict_at_coarse_grain() {
        // The false-sharing archetype: bytes 0..4 vs bytes 4..8 of one line.
        let w = AccessMask::from_range(0, 4);
        let r = AccessMask::from_range(4, 4);
        assert!(!w.overlaps(r)); // no true conflict
        assert!(w.coarsen(8).overlaps(r.coarsen(8))); // 8-byte sub-blocks: false conflict
        assert!(w.coarsen(1).overlaps(r.coarsen(1))); // line granularity: false conflict
        assert!(!w.coarsen(16).overlaps(r.coarsen(16))); // 4-byte sub-blocks: resolved
    }

    #[test]
    fn iter_offsets_matches_bits() {
        let m = AccessMask(0b1010_0001);
        let offs: Vec<_> = m.iter_offsets().collect();
        assert_eq!(offs, vec![0, 5, 7]);
        assert_eq!(m.count(), 3);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_mask() -> impl Strategy<Value = AccessMask> {
        any::<u64>().prop_map(AccessMask)
    }

    fn arb_subblocks() -> impl Strategy<Value = usize> {
        prop::sample::select(vec![1usize, 2, 4, 8, 16, 32, 64])
    }

    proptest! {
        /// Coarsening never removes coverage.
        #[test]
        fn coarsen_is_superset(m in arb_mask(), n in arb_subblocks()) {
            let c = m.coarsen(n);
            prop_assert_eq!(c.0 & m.0, m.0);
        }

        /// If two masks overlap at a fine granularity they overlap at every
        /// coarser one (the monotonicity that makes false conflicts a strict
        /// superset phenomenon).
        #[test]
        fn coarsen_is_monotone(a in arb_mask(), b in arb_mask(),
                               fine in arb_subblocks(), coarse in arb_subblocks()) {
            prop_assume!(coarse <= fine);
            if a.coarsen(fine).overlaps(b.coarsen(fine)) {
                prop_assert!(a.coarsen(coarse).overlaps(b.coarsen(coarse)));
            }
        }

        /// Coarsening is idempotent.
        #[test]
        fn coarsen_idempotent(m in arb_mask(), n in arb_subblocks()) {
            prop_assert_eq!(m.coarsen(n).coarsen(n), m.coarsen(n));
        }

        /// to/from sub-block bits round-trips through the coarsened mask.
        #[test]
        fn subblock_bits_roundtrip(m in arb_mask(), n in arb_subblocks()) {
            let bits = m.to_subblock_bits(n);
            prop_assert_eq!(AccessMask::from_subblock_bits(bits, n), m.coarsen(n));
        }

        /// Range masks cover exactly `len` bytes.
        #[test]
        fn range_mask_count(off in 0usize..64, len in 1usize..=64) {
            prop_assume!(off + len <= 64);
            prop_assert_eq!(AccessMask::from_range(off, len).count() as usize, len);
        }
    }
}
