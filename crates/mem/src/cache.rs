//! Generic set-associative tag array with true-LRU replacement.
//!
//! The array stores one metadata value of type `M` per resident line. The
//! HTM layers above decide what `M` is (MOESI state + speculative bits for
//! L1; plain MOESI for L2/L3). Victim selection can *pin* lines — ASF pins
//! speculatively-accessed lines in L1, and an insertion that would have to
//! evict a pinned line fails, which the machine turns into a capacity abort.

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;

/// One resident line.
#[derive(Clone, Debug)]
struct Way<M> {
    tag: u64,
    meta: M,
    /// Monotone last-touch stamp; the smallest stamp in a set is the LRU way.
    lru: u64,
}

/// Result of a lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LookupResult {
    /// Line is resident.
    Hit,
    /// Line is not resident.
    Miss,
}

/// Information about a line evicted to make room for an insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictionInfo<M> {
    /// Address of the evicted line.
    pub line: LineAddr,
    /// Its metadata at eviction time.
    pub meta: M,
}

/// Error returned when every way of the target set is pinned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SetFull;

/// A set-associative cache tag array with per-line metadata `M`.
#[derive(Clone, Debug)]
pub struct CacheArray<M> {
    geom: CacheGeometry,
    sets: Vec<Vec<Option<Way<M>>>>,
    clock: u64,
}

impl<M> CacheArray<M> {
    /// Create an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let mut sets = Vec::with_capacity(geom.sets());
        for _ in 0..geom.sets() {
            let mut ways = Vec::with_capacity(geom.ways);
            ways.resize_with(geom.ways, || None);
            sets.push(ways);
        }
        CacheArray { geom, sets, clock: 0 }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn slot(&self, line: LineAddr) -> (usize, u64) {
        (self.geom.set_of(line), self.geom.tag_of(line))
    }

    /// Is the line resident?
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Borrow the metadata of a resident line without touching LRU state.
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        let (set, tag) = self.slot(line);
        self.sets[set]
            .iter()
            .flatten()
            .find(|w| w.tag == tag)
            .map(|w| &w.meta)
    }

    /// Mutably borrow the metadata of a resident line without touching LRU.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let (set, tag) = self.slot(line);
        self.sets[set]
            .iter_mut()
            .flatten()
            .find(|w| w.tag == tag)
            .map(|w| &mut w.meta)
    }

    /// Borrow the metadata of a resident line and mark it most-recently-used.
    pub fn get(&mut self, line: LineAddr) -> Option<&mut M> {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.slot(line);
        self.sets[set]
            .iter_mut()
            .flatten()
            .find(|w| w.tag == tag)
            .map(|w| {
                w.lru = clock;
                &mut w.meta
            })
    }

    /// Insert `line` with metadata `meta`, evicting the LRU non-pinned way if
    /// the set is full. `is_pinned` marks metadata that must not be evicted.
    ///
    /// Returns the evicted line (if any). Fails with [`SetFull`] when the
    /// set has no free way and every resident way is pinned — the caller
    /// (the HTM machine) converts this into a capacity abort.
    ///
    /// If the line is already resident its metadata is replaced in place and
    /// no eviction occurs.
    pub fn insert(
        &mut self,
        line: LineAddr,
        meta: M,
        is_pinned: impl Fn(&M) -> bool,
    ) -> Result<Option<EvictionInfo<M>>, SetFull> {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.slot(line);
        let ways = &mut self.sets[set];

        // Replace in place on re-insertion.
        if let Some(w) = ways.iter_mut().flatten().find(|w| w.tag == tag) {
            w.meta = meta;
            w.lru = clock;
            return Ok(None);
        }

        // Free way?
        if let Some(slot) = ways.iter_mut().find(|w| w.is_none()) {
            *slot = Some(Way { tag, meta, lru: clock });
            return Ok(None);
        }

        // Evict LRU among non-pinned ways.
        let victim_idx = ways
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                let w = w.as_ref().expect("set scanned as full");
                if is_pinned(&w.meta) {
                    None
                } else {
                    Some((i, w.lru))
                }
            })
            .min_by_key(|&(_, lru)| lru)
            .map(|(i, _)| i)
            .ok_or(SetFull)?;

        let sets_bits = self.geom.sets().trailing_zeros();
        let old = ways[victim_idx]
            .replace(Way { tag, meta, lru: clock })
            .expect("victim way was occupied");
        Ok(Some(EvictionInfo {
            line: LineAddr((old.tag << sets_bits) | set as u64),
            meta: old.meta,
        }))
    }

    /// Remove a line, returning its metadata.
    pub fn remove(&mut self, line: LineAddr) -> Option<M> {
        let (set, tag) = self.slot(line);
        for w in self.sets[set].iter_mut() {
            if matches!(w, Some(way) if way.tag == tag) {
                return w.take().map(|way| way.meta);
            }
        }
        None
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }

    /// True when no line is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over `(line, &meta)` for every resident line.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> {
        let sets_bits = self.geom.sets().trailing_zeros();
        self.sets.iter().enumerate().flat_map(move |(set, ways)| {
            ways.iter().flatten().map(move |w| {
                (LineAddr((w.tag << sets_bits) | set as u64), &w.meta)
            })
        })
    }

    /// Iterate mutably over `(line, &mut meta)` for every resident line.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut M)> {
        let sets_bits = self.geom.sets().trailing_zeros();
        self.sets.iter_mut().enumerate().flat_map(move |(set, ways)| {
            ways.iter_mut().flatten().map(move |w| {
                (LineAddr((w.tag << sets_bits) | set as u64), &mut w.meta)
            })
        })
    }

    /// Drop every line for which `pred` returns true, invoking `on_drop` on
    /// each removed `(line, meta)`.
    pub fn retain(&mut self, mut pred: impl FnMut(LineAddr, &mut M) -> bool) {
        let sets_bits = self.geom.sets().trailing_zeros();
        for (set, ways) in self.sets.iter_mut().enumerate() {
            for w in ways.iter_mut() {
                if let Some(way) = w {
                    let line = LineAddr((way.tag << sets_bits) | set as u64);
                    if !pred(line, &mut way.meta) {
                        *w = None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn tiny() -> CacheArray<u32> {
        // 2 sets x 2 ways.
        CacheArray::new(CacheGeometry::new(2 * 2 * 64, 2))
    }

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = tiny();
        assert!(c.insert(line(0), 10, |_| false).unwrap().is_none());
        assert_eq!(c.peek(line(0)), Some(&10));
        assert_eq!(c.peek(line(2)), None); // same set, different tag
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = tiny();
        c.insert(line(0), 1, |_| false).unwrap();
        assert!(c.insert(line(0), 2, |_| false).unwrap().is_none());
        assert_eq!(c.peek(line(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers, 2 sets).
        c.insert(line(0), 0, |_| false).unwrap();
        c.insert(line(2), 2, |_| false).unwrap();
        // Touch line 0 so line 2 becomes LRU.
        c.get(line(0));
        let ev = c.insert(line(4), 4, |_| false).unwrap().unwrap();
        assert_eq!(ev.line, line(2));
        assert_eq!(ev.meta, 2);
        assert!(c.contains(line(0)) && c.contains(line(4)));
    }

    #[test]
    fn pinned_lines_are_skipped() {
        let mut c = tiny();
        c.insert(line(0), 100, |_| false).unwrap(); // pinned (>=100)
        c.insert(line(2), 1, |_| false).unwrap();
        let ev = c.insert(line(4), 2, |m| *m >= 100).unwrap().unwrap();
        assert_eq!(ev.line, line(2)); // LRU would be line 0 but it is pinned
        assert!(c.contains(line(0)));
    }

    #[test]
    fn set_full_when_all_pinned() {
        let mut c = tiny();
        c.insert(line(0), 100, |_| false).unwrap();
        c.insert(line(2), 100, |_| false).unwrap();
        assert_eq!(c.insert(line(4), 1, |m| *m >= 100), Err(SetFull));
        // The set is untouched.
        assert!(c.contains(line(0)) && c.contains(line(2)));
    }

    #[test]
    fn remove_returns_meta() {
        let mut c = tiny();
        c.insert(line(1), 7, |_| false).unwrap();
        assert_eq!(c.remove(line(1)), Some(7));
        assert_eq!(c.remove(line(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_reconstructs_line_addresses() {
        let mut c = tiny();
        for n in [0u64, 1, 2, 3] {
            c.insert(line(n), n as u32, |_| false).unwrap();
        }
        let mut got: Vec<_> = c.iter().map(|(l, &m)| (l, m)).collect();
        got.sort();
        let want: Vec<_> = (0..4).map(|n| (line(n), n as u32)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn retain_drops_matching() {
        let mut c = tiny();
        for n in 0..4 {
            c.insert(line(n), n as u32, |_| false).unwrap();
        }
        c.retain(|_, m| *m % 2 == 0);
        assert_eq!(c.len(), 2);
        assert!(c.contains(line(0)) && c.contains(line(2)));
    }
}
