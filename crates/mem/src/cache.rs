//! Generic set-associative tag array with true-LRU replacement.
//!
//! The array stores one metadata value of type `M` per resident line. The
//! HTM layers above decide what `M` is (MOESI state + speculative bits for
//! L1; plain MOESI for L2/L3). Victim selection can *pin* lines — ASF pins
//! speculatively-accessed lines in L1, and an insertion that would have to
//! evict a pinned line fails, which the machine turns into a capacity abort.
//!
//! Storage is two-level: a `Vec` of per-set way arrays, where each way
//! array is a small contiguous boxed slice allocated on the set's *first
//! insertion*. A set probe therefore walks adjacent memory (one pointer hop
//! from the set table), while construction touches only the pointer table —
//! the paper machine's 2 MB L3 would otherwise memset ~800 KB of empty way
//! slots per core per simulation, which dominated short runs. Workloads
//! touch a tiny fraction of the sets, so the way arrays stay sparse. Set
//! count and tag shift are cached at construction; the per-access path does
//! no division.

use crate::addr::LineAddr;
use crate::geometry::CacheGeometry;

/// One resident line.
#[derive(Clone, Debug)]
struct Way<M> {
    tag: u64,
    meta: M,
    /// Monotone last-touch stamp; the smallest stamp in a set is the LRU way.
    lru: u64,
}

/// Result of a lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LookupResult {
    /// Line is resident.
    Hit,
    /// Line is not resident.
    Miss,
}

/// Information about a line evicted to make room for an insertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvictionInfo<M> {
    /// Address of the evicted line.
    pub line: LineAddr,
    /// Its metadata at eviction time.
    pub meta: M,
}

/// Error returned when every way of the target set is pinned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SetFull;

/// One set's way array, boxed so an untouched set costs one null pointer.
type SetWays<M> = Box<[Option<Way<M>>]>;

/// A set-associative cache tag array with per-line metadata `M`.
#[derive(Clone, Debug)]
pub struct CacheArray<M> {
    geom: CacheGeometry,
    /// Per-set way arrays; `None` until the set's first insertion.
    sets: Vec<Option<SetWays<M>>>,
    /// Ways per set, cached out of `geom`.
    ways: usize,
    /// `log2(sets)`, cached for line-address reconstruction.
    sets_bits: u32,
    clock: u64,
    /// Lines newly filled (re-insertions of a resident line excluded).
    fills: u64,
    /// Lines evicted by replacement (explicit `remove` excluded).
    evictions: u64,
}

impl<M> CacheArray<M> {
    /// Create an empty array with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        let ways = geom.ways;
        let mut table = Vec::with_capacity(sets);
        table.resize_with(sets, || None);
        CacheArray {
            geom,
            sets: table,
            ways,
            sets_bits: sets.trailing_zeros(),
            clock: 0,
            fills: 0,
            evictions: 0,
        }
    }

    /// The geometry this array was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Lines newly filled over the array's lifetime (passive counter for
    /// the observability layer; re-insertions of resident lines excluded).
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Lines evicted by LRU replacement over the array's lifetime (passive
    /// counter for the observability layer; explicit removals excluded).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Split a line address into (set index, tag) using the cached shift —
    /// same math as `CacheGeometry::{set_of, tag_of}` minus their per-call
    /// set-count division.
    #[inline]
    fn slot(&self, line: LineAddr) -> (usize, u64) {
        let set = (line.0 as usize) & ((1usize << self.sets_bits) - 1);
        (set, line.0 >> self.sets_bits)
    }

    /// The contiguous slice of ways backing one set (empty slice for a
    /// never-touched set).
    #[inline]
    fn set_ways(&self, set: usize) -> &[Option<Way<M>>] {
        self.sets[set].as_deref().unwrap_or(&[])
    }

    /// Mutable variant of [`Self::set_ways`]; empty for an untouched set.
    #[inline]
    fn set_ways_mut(&mut self, set: usize) -> &mut [Option<Way<M>>] {
        self.sets[set].as_deref_mut().unwrap_or(&mut [])
    }

    /// The set's way array, allocating it on first use.
    #[inline]
    fn set_ways_alloc(&mut self, set: usize) -> &mut [Option<Way<M>>] {
        let ways = self.ways;
        self.sets[set].get_or_insert_with(|| {
            let mut v = Vec::with_capacity(ways);
            v.resize_with(ways, || None);
            v.into_boxed_slice()
        })
    }

    /// Is the line resident?
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.peek(line).is_some()
    }

    /// Borrow the metadata of a resident line without touching LRU state.
    #[inline]
    pub fn peek(&self, line: LineAddr) -> Option<&M> {
        let (set, tag) = self.slot(line);
        self.set_ways(set)
            .iter()
            .flatten()
            .find(|w| w.tag == tag)
            .map(|w| &w.meta)
    }

    /// Mutably borrow the metadata of a resident line without touching LRU.
    #[inline]
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let (set, tag) = self.slot(line);
        self.set_ways_mut(set)
            .iter_mut()
            .flatten()
            .find(|w| w.tag == tag)
            .map(|w| &mut w.meta)
    }

    /// Borrow the metadata of a resident line and mark it most-recently-used.
    #[inline]
    pub fn get(&mut self, line: LineAddr) -> Option<&mut M> {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.slot(line);
        self.set_ways_mut(set)
            .iter_mut()
            .flatten()
            .find(|w| w.tag == tag)
            .map(|w| {
                w.lru = clock;
                &mut w.meta
            })
    }

    /// Insert `line` with metadata `meta`, evicting the LRU non-pinned way if
    /// the set is full. `is_pinned` marks metadata that must not be evicted.
    ///
    /// Returns the evicted line (if any). Fails with [`SetFull`] when the
    /// set has no free way and every resident way is pinned — the caller
    /// (the HTM machine) converts this into a capacity abort.
    ///
    /// If the line is already resident its metadata is replaced in place and
    /// no eviction occurs.
    pub fn insert(
        &mut self,
        line: LineAddr,
        meta: M,
        is_pinned: impl Fn(&M) -> bool,
    ) -> Result<Option<EvictionInfo<M>>, SetFull> {
        self.clock += 1;
        let clock = self.clock;
        let (set, tag) = self.slot(line);
        let ways = self.set_ways_alloc(set);

        // Replace in place on re-insertion.
        if let Some(w) = ways.iter_mut().flatten().find(|w| w.tag == tag) {
            w.meta = meta;
            w.lru = clock;
            return Ok(None);
        }

        // Free way?
        if let Some(slot) = ways.iter_mut().find(|w| w.is_none()) {
            *slot = Some(Way { tag, meta, lru: clock });
            self.fills += 1;
            return Ok(None);
        }

        // Evict LRU among non-pinned ways (first-minimal on ties, matching
        // the pre-flattening scan order exactly).
        let victim_idx = ways
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                let w = w.as_ref().expect("set scanned as full");
                if is_pinned(&w.meta) {
                    None
                } else {
                    Some((i, w.lru))
                }
            })
            .min_by_key(|&(_, lru)| lru)
            .map(|(i, _)| i)
            .ok_or(SetFull)?;

        let old = ways[victim_idx]
            .replace(Way { tag, meta, lru: clock })
            .expect("victim way was occupied");
        self.fills += 1;
        self.evictions += 1;
        Ok(Some(EvictionInfo {
            line: LineAddr((old.tag << self.sets_bits) | set as u64),
            meta: old.meta,
        }))
    }

    /// Remove a line, returning its metadata.
    pub fn remove(&mut self, line: LineAddr) -> Option<M> {
        let (set, tag) = self.slot(line);
        for w in self.set_ways_mut(set).iter_mut() {
            if matches!(w, Some(way) if way.tag == tag) {
                return w.take().map(|way| way.meta);
            }
        }
        None
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().flatten().flat_map(|ws| ws.iter()).flatten().count()
    }

    /// True when no line is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over `(line, &meta)` for every resident line.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> {
        let sets_bits = self.sets_bits;
        self.sets.iter().enumerate().flat_map(move |(s, ws)| {
            ws.iter().flat_map(|ws| ws.iter()).flatten().map(move |w| {
                (LineAddr((w.tag << sets_bits) | s as u64), &w.meta)
            })
        })
    }

    /// Iterate mutably over `(line, &mut meta)` for every resident line.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut M)> {
        let sets_bits = self.sets_bits;
        self.sets.iter_mut().enumerate().flat_map(move |(s, ws)| {
            ws.iter_mut().flat_map(|ws| ws.iter_mut()).flatten().map(move |w| {
                (LineAddr((w.tag << sets_bits) | s as u64), &mut w.meta)
            })
        })
    }

    /// Drop every line for which `pred` returns false.
    pub fn retain(&mut self, mut pred: impl FnMut(LineAddr, &mut M) -> bool) {
        let sets_bits = self.sets_bits;
        for (s, ws) in self.sets.iter_mut().enumerate() {
            for w in ws.iter_mut().flat_map(|ws| ws.iter_mut()) {
                if let Some(way) = w {
                    let line = LineAddr((way.tag << sets_bits) | s as u64);
                    if !pred(line, &mut way.meta) {
                        *w = None;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn tiny() -> CacheArray<u32> {
        // 2 sets x 2 ways.
        CacheArray::new(CacheGeometry::new(2 * 2 * 64, 2))
    }

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = tiny();
        assert!(c.insert(line(0), 10, |_| false).unwrap().is_none());
        assert_eq!(c.peek(line(0)), Some(&10));
        assert_eq!(c.peek(line(2)), None); // same set, different tag
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = tiny();
        c.insert(line(0), 1, |_| false).unwrap();
        assert!(c.insert(line(0), 2, |_| false).unwrap().is_none());
        assert_eq!(c.peek(line(0)), Some(&2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers, 2 sets).
        c.insert(line(0), 0, |_| false).unwrap();
        c.insert(line(2), 2, |_| false).unwrap();
        // Touch line 0 so line 2 becomes LRU.
        c.get(line(0));
        let ev = c.insert(line(4), 4, |_| false).unwrap().unwrap();
        assert_eq!(ev.line, line(2));
        assert_eq!(ev.meta, 2);
        assert!(c.contains(line(0)) && c.contains(line(4)));
    }

    #[test]
    fn pinned_lines_are_skipped() {
        let mut c = tiny();
        c.insert(line(0), 100, |_| false).unwrap(); // pinned (>=100)
        c.insert(line(2), 1, |_| false).unwrap();
        let ev = c.insert(line(4), 2, |m| *m >= 100).unwrap().unwrap();
        assert_eq!(ev.line, line(2)); // LRU would be line 0 but it is pinned
        assert!(c.contains(line(0)));
    }

    #[test]
    fn set_full_when_all_pinned() {
        let mut c = tiny();
        c.insert(line(0), 100, |_| false).unwrap();
        c.insert(line(2), 100, |_| false).unwrap();
        assert_eq!(c.insert(line(4), 1, |m| *m >= 100), Err(SetFull));
        // The set is untouched.
        assert!(c.contains(line(0)) && c.contains(line(2)));
    }

    #[test]
    fn remove_returns_meta() {
        let mut c = tiny();
        c.insert(line(1), 7, |_| false).unwrap();
        assert_eq!(c.remove(line(1)), Some(7));
        assert_eq!(c.remove(line(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn iter_reconstructs_line_addresses() {
        let mut c = tiny();
        for n in [0u64, 1, 2, 3] {
            c.insert(line(n), n as u32, |_| false).unwrap();
        }
        let mut got: Vec<_> = c.iter().map(|(l, &m)| (l, m)).collect();
        got.sort();
        let want: Vec<_> = (0..4).map(|n| (line(n), n as u32)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn retain_drops_matching() {
        let mut c = tiny();
        for n in 0..4 {
            c.insert(line(n), n as u32, |_| false).unwrap();
        }
        c.retain(|_, m| *m % 2 == 0);
        assert_eq!(c.len(), 2);
        assert!(c.contains(line(0)) && c.contains(line(2)));
    }

    #[test]
    fn fill_and_eviction_counters() {
        let mut c = tiny();
        c.insert(line(0), 0, |_| false).unwrap();
        c.insert(line(2), 2, |_| false).unwrap();
        assert_eq!((c.fills(), c.evictions()), (2, 0));
        // Re-insertion is not a fill.
        c.insert(line(0), 1, |_| false).unwrap();
        assert_eq!((c.fills(), c.evictions()), (2, 0));
        // Replacement counts both a fill and an eviction.
        c.insert(line(4), 4, |_| false).unwrap().unwrap();
        assert_eq!((c.fills(), c.evictions()), (3, 1));
        // Explicit removal is not an eviction.
        c.remove(line(4));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn flat_layout_keeps_sets_disjoint() {
        // Fill both sets completely and check no cross-set interference:
        // lines 0,2 → set 0; lines 1,3 → set 1 (2 sets).
        let mut c = tiny();
        for n in 0..4 {
            c.insert(line(n), n as u32, |_| false).unwrap();
        }
        assert_eq!(c.len(), 4);
        // Evicting in set 0 must not disturb set 1.
        c.insert(line(4), 40, |_| false).unwrap().unwrap();
        assert!(c.contains(line(1)) && c.contains(line(3)));
        assert_eq!(c.len(), 4);
    }
}
