//! Model-based property test: `CacheArray` against a trivially correct
//! reference implementation (a per-set vector with explicit LRU ordering).

use asf_mem::addr::{Addr, LineAddr};
use asf_mem::cache::CacheArray;
use asf_mem::geometry::CacheGeometry;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: per set, a most-recently-used-last list of
/// `(line, meta, pinned)`.
#[derive(Debug, Clone)]
struct Model {
    sets: HashMap<usize, Vec<(LineAddr, u32)>>,
    ways: usize,
    geom: CacheGeometry,
}

impl Model {
    fn new(geom: CacheGeometry) -> Model {
        Model { sets: HashMap::new(), ways: geom.ways, geom }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        self.geom.set_of(line)
    }

    fn get(&mut self, line: LineAddr) -> Option<u32> {
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&(l, _)| l == line) {
            let entry = v.remove(pos);
            let meta = entry.1;
            v.push(entry); // MRU at the back
            Some(meta)
        } else {
            None
        }
    }

    fn peek(&self, line: LineAddr) -> Option<u32> {
        self.sets
            .get(&self.set_of(line))
            .and_then(|v| v.iter().find(|&&(l, _)| l == line))
            .map(|&(_, m)| m)
    }

    /// Insert with "meta >= PIN is pinned" semantics; returns evicted line
    /// or Err(()) when all ways pinned.
    fn insert(&mut self, line: LineAddr, meta: u32, pin: u32) -> Result<Option<LineAddr>, ()> {
        let set = self.set_of(line);
        let ways = self.ways;
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&(l, _)| l == line) {
            v.remove(pos);
            v.push((line, meta));
            return Ok(None);
        }
        if v.len() < ways {
            v.push((line, meta));
            return Ok(None);
        }
        // Evict the LRU (front-most) non-pinned entry.
        let victim_pos = v.iter().position(|&(_, m)| m < pin).ok_or(())?;
        let (victim, _) = v.remove(victim_pos);
        v.push((line, meta));
        Ok(Some(victim))
    }

    fn remove(&mut self, line: LineAddr) -> Option<u32> {
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        let pos = v.iter().position(|&(l, _)| l == line)?;
        Some(v.remove(pos).1)
    }

    fn len(&self) -> usize {
        self.sets.values().map(|v| v.len()).sum()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Get(u8),
    Peek(u8),
    Insert(u8, u32),
    Remove(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Peek),
        (any::<u8>(), 0u32..200).prop_map(|(l, m)| Op::Insert(l, m)),
        any::<u8>().prop_map(Op::Remove),
    ]
}

/// Metas >= PIN are pinned (cannot be evicted).
const PIN: u32 = 150;

fn line(n: u8) -> LineAddr {
    Addr(n as u64 * 64).line()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cache_array_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..200)) {
        // 4 sets × 2 ways keeps sets crowded.
        let geom = CacheGeometry::new(4 * 2 * 64, 2);
        let mut real: CacheArray<u32> = CacheArray::new(geom);
        let mut model = Model::new(geom);
        for op in ops {
            match op {
                Op::Get(l) => {
                    let a = real.get(line(l)).map(|m| *m);
                    let b = model.get(line(l));
                    prop_assert_eq!(a, b, "get({})", l);
                }
                Op::Peek(l) => {
                    prop_assert_eq!(real.peek(line(l)).copied(), model.peek(line(l)));
                }
                Op::Insert(l, m) => {
                    let a = real.insert(line(l), m, |&meta| meta >= PIN);
                    let b = model.insert(line(l), m, PIN);
                    match (a, b) {
                        (Ok(None), Ok(None)) => {}
                        (Ok(Some(ev)), Ok(Some(evm))) => {
                            prop_assert_eq!(ev.line, evm, "evicted line");
                        }
                        (Err(_), Err(())) => {}
                        (a, b) => prop_assert!(false, "divergence: {:?} vs {:?}", a, b),
                    }
                }
                Op::Remove(l) => {
                    prop_assert_eq!(real.remove(line(l)), model.remove(line(l)));
                }
            }
            prop_assert_eq!(real.len(), model.len());
        }
        // Final contents agree.
        for n in 0u16..=255 {
            let l = line(n as u8);
            prop_assert_eq!(real.peek(l).copied(), model.peek(l));
        }
    }
}
