//! Execution tracing: a bounded event log of the protocol-level actions a
//! run performs, for debugging, teaching and the walkthrough examples.
//!
//! Tracing is off by default (zero cost beyond an `Option` check on event
//! sites); enable it with [`crate::machine::Machine::enable_trace`] before
//! running. The log is a ring buffer — when full, the oldest events drop —
//! so tracing long runs keeps the tail.
//!
//! For whole-run timelines the ring is upgraded by the [`TraceSink`]
//! abstraction: the machine feeds every event to an optional streaming sink
//! ([`crate::machine::Machine::set_trace_sink`]) in addition to the ring.
//! [`ChromeTraceSink`] is the built-in streaming sink — it renders the
//! cycle-domain tx/probe/retention lifecycle as Chrome `trace_event` JSON
//! with one viewer track per core (open in Perfetto or `chrome://tracing`).

use asf_core::detector::ConflictType;
use asf_mem::addr::LineAddr;
use asf_mem::mask::AccessMask;
use asf_stats::chrome::{arg_str, ChromeTraceWriter};
use asf_stats::run::AbortCause;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// One protocol-level event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A transaction attempt began (first attempt or retry).
    TxBegin {
        /// Executing core.
        core: usize,
        /// Core-local cycle.
        cycle: u64,
        /// Retry depth (0 = first attempt).
        retry: u32,
    },
    /// A transaction committed.
    TxCommit {
        /// Executing core.
        core: usize,
        /// Core-local cycle.
        cycle: u64,
    },
    /// A transaction attempt aborted.
    TxAbort {
        /// Victim core.
        core: usize,
        /// Victim-local cycle at discovery.
        cycle: u64,
        /// Why it aborted.
        cause: AbortCause,
    },
    /// A coherence probe was broadcast.
    Probe {
        /// Requester core.
        core: usize,
        /// Requester cycle.
        cycle: u64,
        /// Probed line.
        line: LineAddr,
        /// Byte mask of the access.
        mask: AccessMask,
        /// Invalidating (write) or not (read).
        invalidating: bool,
    },
    /// A probe hit a remote transaction's speculative state.
    Conflict {
        /// Requesting core (wins).
        requester: usize,
        /// Victim core (aborts under requester-wins).
        victim: usize,
        /// Conflicting line.
        line: LineAddr,
        /// WAR / RAW / WAW.
        kind: ConflictType,
        /// Oracle verdict (false ⇒ false conflict).
        is_true: bool,
    },
    /// A data response carried piggy-back bits; the requester marked the
    /// covered sub-blocks dirty.
    DirtyMark {
        /// Requester core.
        core: usize,
        /// Line whose sub-blocks were marked.
        line: LineAddr,
        /// Expanded dirty byte mask.
        mask: AccessMask,
    },
    /// A local hit on dirty bytes was treated as a miss (refetch).
    DirtyRefetch {
        /// Core forced to refetch.
        core: usize,
        /// Its cycle.
        cycle: u64,
        /// The line.
        line: LineAddr,
    },
    /// A core acquired the software fallback lock.
    FallbackAcquire {
        /// The lock owner.
        core: usize,
        /// Its cycle.
        cycle: u64,
    },
    /// The fallback lock was released (the attempt completed).
    FallbackRelease {
        /// The former owner.
        core: usize,
        /// Its cycle.
        cycle: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::TxBegin { core, cycle, retry } => {
                write!(f, "[{cycle:>8}] core{core} tx-begin (retry {retry})")
            }
            TraceEvent::TxCommit { core, cycle } => {
                write!(f, "[{cycle:>8}] core{core} tx-commit")
            }
            TraceEvent::TxAbort { core, cycle, cause } => {
                write!(f, "[{cycle:>8}] core{core} tx-abort ({cause:?})")
            }
            TraceEvent::Probe { core, cycle, line, mask, invalidating } => {
                write!(
                    f,
                    "[{cycle:>8}] core{core} probe {} line {:#x} mask {:#018x}",
                    if invalidating { "INV" } else { "rd " },
                    line.base().0,
                    mask.0
                )
            }
            TraceEvent::Conflict { requester, victim, line, kind, is_true } => {
                write!(
                    f,
                    "[        ] core{requester} -> core{victim} {kind} {} conflict on line {:#x}",
                    if is_true { "TRUE" } else { "FALSE" },
                    line.base().0
                )
            }
            TraceEvent::DirtyMark { core, line, mask } => {
                write!(
                    f,
                    "[        ] core{core} marks dirty line {:#x} mask {:#018x}",
                    line.base().0,
                    mask.0
                )
            }
            TraceEvent::DirtyRefetch { core, cycle, line } => {
                write!(
                    f,
                    "[{cycle:>8}] core{core} dirty-refetch line {:#x}",
                    line.base().0
                )
            }
            TraceEvent::FallbackAcquire { core, cycle } => {
                write!(f, "[{cycle:>8}] core{core} acquires fallback lock")
            }
            TraceEvent::FallbackRelease { core, cycle } => {
                write!(f, "[{cycle:>8}] core{core} releases fallback lock")
            }
        }
    }
}

/// A bounded, drop-oldest event log.
#[derive(Debug, Default)]
pub struct RingTrace {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingTrace {
    /// Create a trace holding at most `cap` events.
    pub fn new(cap: usize) -> RingTrace {
        assert!(cap > 0, "trace capacity must be positive");
        RingTrace { cap, events: VecDeque::with_capacity(cap.min(4096)), dropped: 0 }
    }

    /// Append an event, dropping the oldest when full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently held (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the whole log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier events dropped …\n", self.dropped));
        }
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

/// A streaming consumer of [`TraceEvent`]s.
///
/// The machine feeds every emitted event to the installed sink in stream
/// order. Unlike the bounded [`RingTrace`], a streaming sink sees the whole
/// run; sinks that do bound their storage must account for every discarded
/// event in [`TraceSink::dropped_events`] so truncated exports are
/// detectable.
///
/// `Send` is a supertrait for the same reason as
/// [`crate::txprog::ThreadProgram`]: a machine carrying an installed sink
/// must be movable to a shard worker thread; the sink is only ever driven
/// from the one thread currently running its machine.
pub trait TraceSink: Send {
    /// Consume one event.
    fn record(&mut self, ev: TraceEvent);

    /// Events this sink has discarded (0 for unbounded sinks).
    fn dropped_events(&self) -> u64 {
        0
    }

    /// Downcast support: lets callers recover the concrete sink they
    /// installed via [`crate::machine::Machine::take_trace_sink`].
    fn as_any(&mut self) -> &mut dyn Any;
}

impl TraceSink for RingTrace {
    fn record(&mut self, ev: TraceEvent) {
        RingTrace::record(self, ev);
    }

    fn dropped_events(&self) -> u64 {
        self.dropped()
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Streaming [`TraceSink`] that renders events as Chrome `trace_event`
/// JSON (Perfetto-compatible) while the run executes.
///
/// Transactions become per-core duration events (committed attempts named
/// `transaction`, aborted ones `transaction-aborted` with the cause in
/// `args`), the fallback lock a duration event spanning acquire→release,
/// and probes / conflicts / dirty-marking retention events instants on the
/// owning core's track. Cycles map to viewer microseconds 1:1. Nothing is
/// dropped: memory grows with the number of events emitted.
pub struct ChromeTraceSink {
    w: ChromeTraceWriter,
    open_tx: std::collections::HashMap<usize, u64>,
    open_fallback: std::collections::HashMap<usize, u64>,
    named_cores: std::collections::HashSet<usize>,
    upstream_dropped: u64,
    last_ts: u64,
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        ChromeTraceSink::new()
    }
}

impl ChromeTraceSink {
    /// Create an empty streaming sink.
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink {
            w: ChromeTraceWriter::new(),
            open_tx: std::collections::HashMap::new(),
            open_fallback: std::collections::HashMap::new(),
            named_cores: std::collections::HashSet::new(),
            upstream_dropped: 0,
            last_ts: 0,
        }
    }

    /// Record that `n` events were lost before reaching this sink (e.g. by
    /// an upstream ring buffer). Surfaced as a `dropped-events` instant in
    /// the exported JSON.
    pub fn note_dropped(&mut self, n: u64) {
        self.upstream_dropped += n;
    }

    /// Events written so far (excluding track-name metadata).
    pub fn events(&self) -> u64 {
        self.w.events()
    }

    fn track(&mut self, core: usize) -> u64 {
        if self.named_cores.insert(core) {
            self.w.thread_name(core as u64, &format!("core {core}"));
        }
        core as u64
    }

    /// Close the stream and return the finished Chrome trace JSON.
    pub fn finish(mut self) -> String {
        if self.upstream_dropped > 0 {
            let args = [("dropped", self.upstream_dropped.to_string())];
            self.w.instant("dropped-events", 0, 0, 'g', &args);
        }
        self.w.finish()
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, ev: TraceEvent) {
        match ev {
            TraceEvent::TxBegin { core, cycle, retry } => {
                let tid = self.track(core);
                self.open_tx.insert(core, cycle);
                self.last_ts = cycle;
                self.w.instant("tx-begin", tid, cycle, 't', &[("retry", retry.to_string())]);
            }
            TraceEvent::TxCommit { core, cycle } => {
                let tid = self.track(core);
                let start = self.open_tx.remove(&core).unwrap_or(cycle);
                self.last_ts = cycle;
                let dur = cycle.saturating_sub(start).max(1);
                self.w.complete("transaction", tid, start, dur, &[]);
            }
            TraceEvent::TxAbort { core, cycle, cause } => {
                let tid = self.track(core);
                let start = self.open_tx.remove(&core).unwrap_or(cycle);
                self.last_ts = cycle;
                let dur = cycle.saturating_sub(start).max(1);
                let args = [("cause", arg_str(&format!("{cause:?}")))];
                self.w.complete("transaction-aborted", tid, start, dur, &args);
            }
            TraceEvent::Probe { core, cycle, line, invalidating, .. } => {
                let tid = self.track(core);
                self.last_ts = cycle;
                let name = if invalidating { "probe-inv" } else { "probe-rd" };
                let args = [("line", arg_str(&format!("{:#x}", line.base().0)))];
                self.w.instant(name, tid, cycle, 't', &args);
            }
            TraceEvent::Conflict { requester, victim, line, kind, is_true } => {
                let tid = self.track(victim);
                // Conflicts carry no cycle of their own; they are emitted
                // immediately after the probe that discovered them, so the
                // last-seen timestamp is the probe cycle.
                let args = [
                    ("requester", requester.to_string()),
                    ("line", arg_str(&format!("{:#x}", line.base().0))),
                    ("true", is_true.to_string()),
                ];
                self.w.instant(&format!("conflict-{kind}"), tid, self.last_ts, 'p', &args);
            }
            TraceEvent::DirtyMark { core, line, mask } => {
                let tid = self.track(core);
                let args = [
                    ("line", arg_str(&format!("{:#x}", line.base().0))),
                    ("mask", arg_str(&format!("{:#018x}", mask.0))),
                ];
                self.w.instant("dirty-mark", tid, self.last_ts, 't', &args);
            }
            TraceEvent::DirtyRefetch { core, cycle, line } => {
                let tid = self.track(core);
                self.last_ts = cycle;
                let args = [("line", arg_str(&format!("{:#x}", line.base().0)))];
                self.w.instant("dirty-refetch", tid, cycle, 't', &args);
            }
            TraceEvent::FallbackAcquire { core, cycle } => {
                self.track(core);
                self.last_ts = cycle;
                self.open_fallback.insert(core, cycle);
            }
            TraceEvent::FallbackRelease { core, cycle } => {
                let tid = self.track(core);
                let start = self.open_fallback.remove(&core).unwrap_or(cycle);
                self.last_ts = cycle;
                let dur = cycle.saturating_sub(start).max(1);
                self.w.complete("fallback-lock", tid, start, dur, &[]);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;

    fn line() -> LineAddr {
        Addr(0x1000).line()
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = RingTrace::new(2);
        t.record(TraceEvent::TxBegin { core: 0, cycle: 1, retry: 0 });
        t.record(TraceEvent::TxCommit { core: 0, cycle: 2 });
        t.record(TraceEvent::TxBegin { core: 1, cycle: 3, retry: 0 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let first = *t.events().next().unwrap();
        assert_eq!(first, TraceEvent::TxCommit { core: 0, cycle: 2 });
    }

    #[test]
    fn render_includes_drop_notice() {
        let mut t = RingTrace::new(1);
        t.record(TraceEvent::TxCommit { core: 0, cycle: 1 });
        t.record(TraceEvent::TxCommit { core: 1, cycle: 2 });
        let s = t.render();
        assert!(s.contains("1 earlier events dropped"));
        assert!(s.contains("core1 tx-commit"));
    }

    #[test]
    fn display_formats() {
        let evs = [
            TraceEvent::TxBegin { core: 3, cycle: 17, retry: 2 },
            TraceEvent::Probe {
                core: 1,
                cycle: 5,
                line: line(),
                mask: AccessMask::from_range(0, 8),
                invalidating: true,
            },
            TraceEvent::Conflict {
                requester: 0,
                victim: 1,
                line: line(),
                kind: ConflictType::WriteAfterRead,
                is_true: false,
            },
            TraceEvent::DirtyRefetch { core: 2, cycle: 9, line: line() },
        ];
        let strs: Vec<String> = evs.iter().map(|e| e.to_string()).collect();
        assert!(strs[0].contains("core3 tx-begin (retry 2)"));
        assert!(strs[1].contains("probe INV"));
        assert!(strs[2].contains("WAR FALSE conflict"));
        assert!(strs[3].contains("dirty-refetch"));
    }

    #[test]
    fn count_filters() {
        let mut t = RingTrace::new(8);
        for c in 0..3 {
            t.record(TraceEvent::TxCommit { core: c, cycle: c as u64 });
        }
        t.record(TraceEvent::TxBegin { core: 0, cycle: 9, retry: 0 });
        assert_eq!(t.count(|e| matches!(e, TraceEvent::TxCommit { .. })), 3);
    }
}

impl RingTrace {
    /// Export as Chrome tracing JSON (load via `chrome://tracing` or
    /// Perfetto): transactions become duration events per core, probes and
    /// conflicts instant events. Cycles are mapped to microseconds 1:1.
    ///
    /// Implemented by replaying the retained events through a
    /// [`ChromeTraceSink`]; events the ring discarded are surfaced as a
    /// `dropped-events` instant so truncated exports are detectable.
    pub fn to_chrome_json(&self) -> String {
        let mut sink = ChromeTraceSink::new();
        sink.note_dropped(self.dropped());
        for ev in self.events() {
            TraceSink::record(&mut sink, *ev);
        }
        sink.finish()
    }
}

#[cfg(test)]
mod chrome_tests {
    use super::*;
    use asf_mem::addr::Addr;

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = RingTrace::new(16);
        t.record(TraceEvent::TxBegin { core: 0, cycle: 10, retry: 0 });
        t.record(TraceEvent::Probe {
            core: 0,
            cycle: 12,
            line: Addr(0x40).line(),
            mask: asf_mem::mask::AccessMask::from_range(0, 8),
            invalidating: false,
        });
        t.record(TraceEvent::TxCommit { core: 0, cycle: 50 });
        let json = t.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""name":"transaction""#));
        assert!(json.contains(r#""dur":40"#));
        assert!(json.contains(r#""name":"probe-rd""#));
        // Rough JSON sanity: balanced braces per line.
        for line in json.lines().filter(|l| l.contains('{')) {
            let open = line.matches('{').count();
            let close = line.matches('}').count();
            assert_eq!(open, close, "unbalanced: {line}");
        }
    }

    #[test]
    fn abort_closes_the_duration_event() {
        let mut t = RingTrace::new(8);
        t.record(TraceEvent::TxBegin { core: 2, cycle: 5, retry: 1 });
        t.record(TraceEvent::TxAbort {
            core: 2,
            cycle: 25,
            cause: asf_stats::run::AbortCause::Capacity,
        });
        let json = t.to_chrome_json();
        assert!(json.contains(r#""name":"transaction-aborted""#));
        assert!(json.contains(r#""dur":20"#));
        assert!(json.contains(r#""cause":"Capacity""#));
    }

    #[test]
    fn dropped_events_are_visible_in_the_export() {
        let mut t = RingTrace::new(1);
        t.record(TraceEvent::TxCommit { core: 0, cycle: 1 });
        t.record(TraceEvent::TxCommit { core: 1, cycle: 2 });
        assert_eq!(t.dropped(), 1);
        let json = t.to_chrome_json();
        assert!(json.contains(r#""name":"dropped-events""#), "{json}");
        assert!(json.contains(r#""dropped":1"#), "{json}");
        // A drop-free trace carries no such marker.
        let mut clean = RingTrace::new(8);
        clean.record(TraceEvent::TxCommit { core: 0, cycle: 1 });
        assert!(!clean.to_chrome_json().contains("dropped-events"));
    }

    #[test]
    fn per_core_tracks_are_named() {
        let mut t = RingTrace::new(8);
        t.record(TraceEvent::TxBegin { core: 0, cycle: 1, retry: 0 });
        t.record(TraceEvent::TxBegin { core: 3, cycle: 2, retry: 0 });
        let json = t.to_chrome_json();
        assert!(json.contains(r#""name":"thread_name""#));
        assert!(json.contains(r#""name":"core 0""#));
        assert!(json.contains(r#""name":"core 3""#));
    }

    #[test]
    fn streaming_sink_matches_unbounded_ring_and_parses() {
        let evs = [
            TraceEvent::TxBegin { core: 0, cycle: 10, retry: 0 },
            TraceEvent::FallbackAcquire { core: 1, cycle: 12 },
            TraceEvent::Conflict {
                requester: 0,
                victim: 1,
                line: Addr(0x80).line(),
                kind: asf_core::detector::ConflictType::ReadAfterWrite,
                is_true: true,
            },
            TraceEvent::DirtyMark {
                core: 0,
                line: Addr(0x80).line(),
                mask: asf_mem::mask::AccessMask::from_range(0, 8),
            },
            TraceEvent::FallbackRelease { core: 1, cycle: 40 },
            TraceEvent::TxCommit { core: 0, cycle: 50 },
        ];
        let mut sink = ChromeTraceSink::new();
        let mut ring = RingTrace::new(64);
        for ev in evs {
            TraceSink::record(&mut sink, ev);
            ring.record(ev);
        }
        assert_eq!(sink.dropped_events(), 0);
        let streamed = sink.finish();
        assert_eq!(streamed, ring.to_chrome_json(), "ring export replays through the sink");
        let v = asf_stats::json::parse(&streamed).expect("valid JSON");
        let arr = v.as_arr().expect("array");
        assert!(arr.iter().any(|e| {
            e.field("name").and_then(|n| n.as_str().map(str::to_owned)).ok().as_deref()
                == Some("fallback-lock")
        }));
        assert!(streamed.contains(r#""name":"dirty-mark""#));
        assert!(streamed.contains(r#""name":"conflict-RAW""#));
    }
}
