//! Execution tracing: a bounded event log of the protocol-level actions a
//! run performs, for debugging, teaching and the walkthrough examples.
//!
//! Tracing is off by default (zero cost beyond an `Option` check on event
//! sites); enable it with [`crate::machine::Machine::enable_trace`] before
//! running. The log is a ring buffer — when full, the oldest events drop —
//! so tracing long runs keeps the tail.

use asf_core::detector::ConflictType;
use asf_mem::addr::LineAddr;
use asf_mem::mask::AccessMask;
use asf_stats::run::AbortCause;
use std::collections::VecDeque;
use std::fmt;

/// One protocol-level event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// A transaction attempt began (first attempt or retry).
    TxBegin {
        /// Executing core.
        core: usize,
        /// Core-local cycle.
        cycle: u64,
        /// Retry depth (0 = first attempt).
        retry: u32,
    },
    /// A transaction committed.
    TxCommit {
        /// Executing core.
        core: usize,
        /// Core-local cycle.
        cycle: u64,
    },
    /// A transaction attempt aborted.
    TxAbort {
        /// Victim core.
        core: usize,
        /// Victim-local cycle at discovery.
        cycle: u64,
        /// Why it aborted.
        cause: AbortCause,
    },
    /// A coherence probe was broadcast.
    Probe {
        /// Requester core.
        core: usize,
        /// Requester cycle.
        cycle: u64,
        /// Probed line.
        line: LineAddr,
        /// Byte mask of the access.
        mask: AccessMask,
        /// Invalidating (write) or not (read).
        invalidating: bool,
    },
    /// A probe hit a remote transaction's speculative state.
    Conflict {
        /// Requesting core (wins).
        requester: usize,
        /// Victim core (aborts under requester-wins).
        victim: usize,
        /// Conflicting line.
        line: LineAddr,
        /// WAR / RAW / WAW.
        kind: ConflictType,
        /// Oracle verdict (false ⇒ false conflict).
        is_true: bool,
    },
    /// A data response carried piggy-back bits; the requester marked the
    /// covered sub-blocks dirty.
    DirtyMark {
        /// Requester core.
        core: usize,
        /// Line whose sub-blocks were marked.
        line: LineAddr,
        /// Expanded dirty byte mask.
        mask: AccessMask,
    },
    /// A local hit on dirty bytes was treated as a miss (refetch).
    DirtyRefetch {
        /// Core forced to refetch.
        core: usize,
        /// Its cycle.
        cycle: u64,
        /// The line.
        line: LineAddr,
    },
    /// A core acquired the software fallback lock.
    FallbackAcquire {
        /// The lock owner.
        core: usize,
        /// Its cycle.
        cycle: u64,
    },
    /// The fallback lock was released (the attempt completed).
    FallbackRelease {
        /// The former owner.
        core: usize,
        /// Its cycle.
        cycle: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::TxBegin { core, cycle, retry } => {
                write!(f, "[{cycle:>8}] core{core} tx-begin (retry {retry})")
            }
            TraceEvent::TxCommit { core, cycle } => {
                write!(f, "[{cycle:>8}] core{core} tx-commit")
            }
            TraceEvent::TxAbort { core, cycle, cause } => {
                write!(f, "[{cycle:>8}] core{core} tx-abort ({cause:?})")
            }
            TraceEvent::Probe { core, cycle, line, mask, invalidating } => {
                write!(
                    f,
                    "[{cycle:>8}] core{core} probe {} line {:#x} mask {:#018x}",
                    if invalidating { "INV" } else { "rd " },
                    line.base().0,
                    mask.0
                )
            }
            TraceEvent::Conflict { requester, victim, line, kind, is_true } => {
                write!(
                    f,
                    "[        ] core{requester} -> core{victim} {kind} {} conflict on line {:#x}",
                    if is_true { "TRUE" } else { "FALSE" },
                    line.base().0
                )
            }
            TraceEvent::DirtyMark { core, line, mask } => {
                write!(
                    f,
                    "[        ] core{core} marks dirty line {:#x} mask {:#018x}",
                    line.base().0,
                    mask.0
                )
            }
            TraceEvent::DirtyRefetch { core, cycle, line } => {
                write!(
                    f,
                    "[{cycle:>8}] core{core} dirty-refetch line {:#x}",
                    line.base().0
                )
            }
            TraceEvent::FallbackAcquire { core, cycle } => {
                write!(f, "[{cycle:>8}] core{core} acquires fallback lock")
            }
            TraceEvent::FallbackRelease { core, cycle } => {
                write!(f, "[{cycle:>8}] core{core} releases fallback lock")
            }
        }
    }
}

/// A bounded, drop-oldest event log.
#[derive(Debug, Default)]
pub struct RingTrace {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingTrace {
    /// Create a trace holding at most `cap` events.
    pub fn new(cap: usize) -> RingTrace {
        assert!(cap > 0, "trace capacity must be positive");
        RingTrace { cap, events: VecDeque::with_capacity(cap.min(4096)), dropped: 0 }
    }

    /// Append an event, dropping the oldest when full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently held (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the whole log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!("… {} earlier events dropped …\n", self.dropped));
        }
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;

    fn line() -> LineAddr {
        Addr(0x1000).line()
    }

    #[test]
    fn ring_drops_oldest() {
        let mut t = RingTrace::new(2);
        t.record(TraceEvent::TxBegin { core: 0, cycle: 1, retry: 0 });
        t.record(TraceEvent::TxCommit { core: 0, cycle: 2 });
        t.record(TraceEvent::TxBegin { core: 1, cycle: 3, retry: 0 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let first = *t.events().next().unwrap();
        assert_eq!(first, TraceEvent::TxCommit { core: 0, cycle: 2 });
    }

    #[test]
    fn render_includes_drop_notice() {
        let mut t = RingTrace::new(1);
        t.record(TraceEvent::TxCommit { core: 0, cycle: 1 });
        t.record(TraceEvent::TxCommit { core: 1, cycle: 2 });
        let s = t.render();
        assert!(s.contains("1 earlier events dropped"));
        assert!(s.contains("core1 tx-commit"));
    }

    #[test]
    fn display_formats() {
        let evs = [
            TraceEvent::TxBegin { core: 3, cycle: 17, retry: 2 },
            TraceEvent::Probe {
                core: 1,
                cycle: 5,
                line: line(),
                mask: AccessMask::from_range(0, 8),
                invalidating: true,
            },
            TraceEvent::Conflict {
                requester: 0,
                victim: 1,
                line: line(),
                kind: ConflictType::WriteAfterRead,
                is_true: false,
            },
            TraceEvent::DirtyRefetch { core: 2, cycle: 9, line: line() },
        ];
        let strs: Vec<String> = evs.iter().map(|e| e.to_string()).collect();
        assert!(strs[0].contains("core3 tx-begin (retry 2)"));
        assert!(strs[1].contains("probe INV"));
        assert!(strs[2].contains("WAR FALSE conflict"));
        assert!(strs[3].contains("dirty-refetch"));
    }

    #[test]
    fn count_filters() {
        let mut t = RingTrace::new(8);
        for c in 0..3 {
            t.record(TraceEvent::TxCommit { core: c, cycle: c as u64 });
        }
        t.record(TraceEvent::TxBegin { core: 0, cycle: 9, retry: 0 });
        assert_eq!(t.count(|e| matches!(e, TraceEvent::TxCommit { .. })), 3);
    }
}

impl RingTrace {
    /// Export as Chrome tracing JSON (load via `chrome://tracing` or
    /// Perfetto): transactions become duration events per core, probes and
    /// conflicts instant events. Cycles are mapped to microseconds 1:1.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        let mut open_tx: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        let push = |s: String, first: &mut bool, out: &mut String| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&s);
        };
        for ev in self.events() {
            match *ev {
                TraceEvent::TxBegin { core, cycle, retry } => {
                    open_tx.insert(core, cycle);
                    push(
                        format!(
                            r#"  {{"name":"tx-begin","ph":"i","ts":{cycle},"pid":1,"tid":{core},"s":"t","args":{{"retry":{retry}}}}}"#
                        ),
                        &mut first,
                        &mut out,
                    );
                }
                TraceEvent::TxCommit { core, cycle } | TraceEvent::TxAbort { core, cycle, .. } => {
                    let start = open_tx.remove(&core).unwrap_or(cycle);
                    let name = if matches!(ev, TraceEvent::TxCommit { .. }) {
                        "transaction"
                    } else {
                        "transaction-aborted"
                    };
                    let dur = cycle.saturating_sub(start).max(1);
                    push(
                        format!(
                            r#"  {{"name":"{name}","ph":"X","ts":{start},"dur":{dur},"pid":1,"tid":{core}}}"#
                        ),
                        &mut first,
                        &mut out,
                    );
                }
                TraceEvent::Probe { core, cycle, line, invalidating, .. } => {
                    push(
                        format!(
                            r#"  {{"name":"probe-{}","ph":"i","ts":{cycle},"pid":1,"tid":{core},"s":"t","args":{{"line":"{:#x}"}}}}"#,
                            if invalidating { "inv" } else { "rd" },
                            line.base().0
                        ),
                        &mut first,
                        &mut out,
                    );
                }
                TraceEvent::Conflict { requester, victim, line, kind, is_true } => {
                    push(
                        format!(
                            r#"  {{"name":"conflict-{kind}","ph":"i","ts":0,"pid":1,"tid":{victim},"s":"p","args":{{"requester":{requester},"line":"{:#x}","true":{is_true}}}}}"#,
                            line.base().0
                        ),
                        &mut first,
                        &mut out,
                    );
                }
                TraceEvent::DirtyRefetch { core, cycle, line } => {
                    push(
                        format!(
                            r#"  {{"name":"dirty-refetch","ph":"i","ts":{cycle},"pid":1,"tid":{core},"s":"t","args":{{"line":"{:#x}"}}}}"#,
                            line.base().0
                        ),
                        &mut first,
                        &mut out,
                    );
                }
                TraceEvent::DirtyMark { .. }
                | TraceEvent::FallbackAcquire { .. }
                | TraceEvent::FallbackRelease { .. } => {}
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod chrome_tests {
    use super::*;
    use asf_mem::addr::Addr;

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = RingTrace::new(16);
        t.record(TraceEvent::TxBegin { core: 0, cycle: 10, retry: 0 });
        t.record(TraceEvent::Probe {
            core: 0,
            cycle: 12,
            line: Addr(0x40).line(),
            mask: asf_mem::mask::AccessMask::from_range(0, 8),
            invalidating: false,
        });
        t.record(TraceEvent::TxCommit { core: 0, cycle: 50 });
        let json = t.to_chrome_json();
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""name":"transaction""#));
        assert!(json.contains(r#""dur":40"#));
        assert!(json.contains(r#""name":"probe-rd""#));
        // Rough JSON sanity: balanced braces per line.
        for line in json.lines().filter(|l| l.contains('{')) {
            let open = line.matches('{').count();
            let close = line.matches('}').count();
            assert_eq!(open, close, "unbalanced: {line}");
        }
    }

    #[test]
    fn abort_closes_the_duration_event() {
        let mut t = RingTrace::new(8);
        t.record(TraceEvent::TxBegin { core: 2, cycle: 5, retry: 1 });
        t.record(TraceEvent::TxAbort {
            core: 2,
            cycle: 25,
            cause: asf_stats::run::AbortCause::Capacity,
        });
        let json = t.to_chrome_json();
        assert!(json.contains(r#""name":"transaction-aborted""#));
        assert!(json.contains(r#""dur":20"#));
    }
}
