//! Typed simulation errors with forward-progress diagnostics.
//!
//! The watchdog used to be a bare `panic!`, which killed whole matrix runs
//! and said nothing about *why* progress stopped. It now produces a
//! [`SimError::Watchdog`] carrying a [`ProgressReport`]: the
//! [`asf_core::progress::ProgressMonitor`]'s livelock/starvation verdict,
//! every core's control state and commit history, the fallback-lock owner,
//! and the hottest conflict lines — enough to tell a mutual-abort cycle
//! from one starved core from a simply-too-small step budget.

use crate::snapshot::CancelKind;
use asf_core::progress::StallVerdict;
use std::fmt;

/// Snapshot of one core at watchdog time.
#[derive(Clone, Debug)]
pub struct CoreReport {
    /// Core id.
    pub core: usize,
    /// Control state, rendered (`InTx(pc=3)`, `Backoff(until=…)`, …).
    pub state: String,
    /// The core's local clock, in cycles.
    pub clock: u64,
    /// Transactions committed so far.
    pub commits: u64,
    /// Consecutive aborts since the last commit.
    pub streak: u32,
    /// Simulation step of the last commit, if any.
    pub last_commit_step: Option<u64>,
    /// Attempts begun since the last commit.
    pub attempts_since_commit: u64,
}

/// Diagnostic dump attached to a watchdog trip.
#[derive(Clone, Debug)]
pub struct ProgressReport {
    /// Steps executed when the watchdog fired (= the configured budget).
    pub steps: u64,
    /// Livelock / starvation / indeterminate classification.
    pub verdict: StallVerdict,
    /// Core currently holding the software fallback lock, if any.
    pub fallback_owner: Option<usize>,
    /// Per-core state and progress bookkeeping.
    pub cores: Vec<CoreReport>,
    /// Hottest false-conflict lines, `(line index, count)` descending.
    pub hottest_lines: Vec<(u64, u64)>,
    /// Commits across all cores.
    pub total_commits: u64,
    /// Aborts across all cores (including injected ones).
    pub total_aborts: u64,
}

/// Why a simulation could not run to completion.
#[derive(Clone, Debug)]
pub enum SimError {
    /// The scheduler exceeded `SimConfig::max_steps`; the report says
    /// whether the evidence points at livelock, starvation, or an
    /// undersized budget.
    Watchdog(ProgressReport),
    /// An attached [`crate::snapshot::CancelToken`] fired: a supervisor
    /// (client cancel or deadline watchdog) asked the run to stop. The
    /// machine noticed at the next cooperative check and unwound cleanly —
    /// no result, no partial statistics.
    Cancelled(CancelKind),
}

impl fmt::Display for ProgressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verdict: {} after {} steps ({} commits, {} aborts)",
            self.verdict.label(),
            self.steps,
            self.total_commits,
            self.total_aborts
        )?;
        match self.fallback_owner {
            Some(c) => writeln!(f, "fallback lock: held by core {c}")?,
            None => writeln!(f, "fallback lock: free")?,
        }
        for c in &self.cores {
            writeln!(
                f,
                "  core {:>2}: {:<24} clock={:<10} commits={:<6} streak={:<4} \
                 last_commit_step={} attempts_since_commit={}",
                c.core,
                c.state,
                c.clock,
                c.commits,
                c.streak,
                c.last_commit_step.map_or("never".to_string(), |s| s.to_string()),
                c.attempts_since_commit
            )?;
        }
        if !self.hottest_lines.is_empty() {
            let lines: Vec<String> = self
                .hottest_lines
                .iter()
                .map(|&(l, n)| format!("{:#x}×{n}", l * 64))
                .collect();
            writeln!(f, "hottest conflict lines: {}", lines.join(", "))?;
        }
        Ok(())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog(report) => {
                write!(f, "simulation watchdog tripped: {report}")
            }
            SimError::Cancelled(CancelKind::Client) => {
                write!(f, "simulation cancelled by client request")
            }
            SimError::Cancelled(CancelKind::Deadline) => {
                write!(f, "simulation cancelled: deadline exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = SimError::Watchdog(ProgressReport {
            steps: 1234,
            verdict: StallVerdict::Livelock,
            fallback_owner: Some(2),
            cores: vec![CoreReport {
                core: 0,
                state: "Backoff(until=900)".to_string(),
                clock: 850,
                commits: 3,
                streak: 7,
                last_commit_step: Some(400),
                attempts_since_commit: 8,
            }],
            hottest_lines: vec![(0x10, 42)],
            total_commits: 3,
            total_aborts: 11,
        });
        let s = err.to_string();
        assert!(s.contains("watchdog"));
        assert!(s.contains("livelock"));
        assert!(s.contains("1234 steps"));
        assert!(s.contains("core  0"));
        assert!(s.contains("fallback lock: held by core 2"));
        assert!(s.contains("streak=7"));
        assert!(s.contains("hottest conflict lines"));
    }

    #[test]
    fn cancelled_display_names_the_kind() {
        assert!(SimError::Cancelled(CancelKind::Client).to_string().contains("client"));
        assert!(SimError::Cancelled(CancelKind::Deadline)
            .to_string()
            .contains("deadline"));
    }
}
