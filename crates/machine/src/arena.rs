//! Generation-stamped scratch arena for per-attempt churning state.
//!
//! The probe path and transaction teardown need short-lived working buffers
//! every attempt: a snapshot of victim speculative state, the batched
//! verdict list, and the dropped-line list from spec teardown. Allocating
//! them per use would put a `malloc`/`free` pair on the hottest loop in the
//! simulator; keeping them as loose fields on `Machine` (the pre-PR-6
//! arrangement) worked but scattered the pooling discipline across the
//! struct. [`ProbeArena`] gathers them behind a checkout/checkin protocol:
//!
//! * `checkout_*` hands the caller the buffer by value (`std::mem::take`),
//!   cleared, so the caller can hold it across `&mut self` calls on the
//!   machine without fighting the borrow checker.
//! * `checkin_*` returns it, retaining its grown capacity for the next
//!   attempt.
//!
//! Debug builds track outstanding checkouts and panic on double-checkout —
//! the probe path is non-reentrant, and silently handing out a second
//! (empty, capacity-less) buffer would hide a pooling regression rather
//! than a correctness bug.

use asf_core::detector::ProbeOutcome;
use asf_core::spec::SpecState;
use asf_mem::addr::LineAddr;
use asf_mem::intern::LineId;

/// Pooled scratch buffers for one machine's probe/teardown hot paths.
#[derive(Debug, Default)]
pub struct ProbeArena {
    /// Snapshot of `(victim core, victim spec state)` pairs for one probe.
    vspec: Vec<(usize, SpecState)>,
    /// Batched probe verdicts: `(victim core, outcome)` in ascending core
    /// order, produced by the read-only pass and consumed by the apply pass.
    verdicts: Vec<(usize, ProbeOutcome)>,
    /// Lines whose residency on a core may have ended during spec teardown.
    dropped: Vec<(LineAddr, LineId)>,
    /// Attempts served — bumped per checkin cycle; a cheap liveness signal
    /// for tests and debug dumps.
    generation: u64,
    #[cfg(debug_assertions)]
    out_vspec: bool,
    #[cfg(debug_assertions)]
    out_verdicts: bool,
    #[cfg(debug_assertions)]
    out_dropped: bool,
}

impl ProbeArena {
    /// Fresh arena with empty (capacity-less) buffers.
    pub fn new() -> ProbeArena {
        ProbeArena::default()
    }

    /// Attempts served (checkin cycles completed).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Check out the victim-spec snapshot buffer (cleared).
    #[inline]
    pub fn checkout_vspec(&mut self) -> Vec<(usize, SpecState)> {
        #[cfg(debug_assertions)]
        {
            assert!(!self.out_vspec, "vspec scratch double-checkout");
            self.out_vspec = true;
        }
        let mut v = std::mem::take(&mut self.vspec);
        v.clear();
        v
    }

    /// Return the victim-spec snapshot buffer, keeping its capacity pooled.
    #[inline]
    pub fn checkin_vspec(&mut self, v: Vec<(usize, SpecState)>) {
        #[cfg(debug_assertions)]
        {
            assert!(self.out_vspec, "vspec checkin without checkout");
            self.out_vspec = false;
        }
        self.vspec = v;
        self.generation += 1;
    }

    /// Check out the batched-verdict buffer (cleared).
    #[inline]
    pub fn checkout_verdicts(&mut self) -> Vec<(usize, ProbeOutcome)> {
        #[cfg(debug_assertions)]
        {
            assert!(!self.out_verdicts, "verdict scratch double-checkout");
            self.out_verdicts = true;
        }
        let mut v = std::mem::take(&mut self.verdicts);
        v.clear();
        v
    }

    /// Return the batched-verdict buffer, keeping its capacity pooled.
    #[inline]
    pub fn checkin_verdicts(&mut self, v: Vec<(usize, ProbeOutcome)>) {
        #[cfg(debug_assertions)]
        {
            assert!(self.out_verdicts, "verdict checkin without checkout");
            self.out_verdicts = false;
        }
        self.verdicts = v;
    }

    /// Check out the dropped-line buffer (cleared).
    #[inline]
    pub fn checkout_dropped(&mut self) -> Vec<(LineAddr, LineId)> {
        #[cfg(debug_assertions)]
        {
            assert!(!self.out_dropped, "dropped scratch double-checkout");
            self.out_dropped = true;
        }
        let mut v = std::mem::take(&mut self.dropped);
        v.clear();
        v
    }

    /// Return the dropped-line buffer, keeping its capacity pooled.
    #[inline]
    pub fn checkin_dropped(&mut self, v: Vec<(LineAddr, LineId)>) {
        #[cfg(debug_assertions)]
        {
            assert!(self.out_dropped, "dropped checkin without checkout");
            self.out_dropped = false;
        }
        self.dropped = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;

    #[test]
    fn checkout_checkin_pools_capacity() {
        let mut a = ProbeArena::new();
        let mut v = a.checkout_vspec();
        v.reserve(64);
        let cap = v.capacity();
        v.push((1, SpecState::EMPTY));
        a.checkin_vspec(v);
        assert_eq!(a.generation(), 1);
        let v2 = a.checkout_vspec();
        assert!(v2.is_empty(), "checkout hands back a cleared buffer");
        assert!(v2.capacity() >= cap, "capacity survives the round trip");
        a.checkin_vspec(v2);
        assert_eq!(a.generation(), 2);
    }

    #[test]
    fn buffers_are_independent() {
        let mut a = ProbeArena::new();
        let v = a.checkout_vspec();
        let mut d = a.checkout_dropped();
        let w = a.checkout_verdicts();
        d.push((Addr(0x40).line(), 1));
        a.checkin_dropped(d);
        a.checkin_verdicts(w);
        a.checkin_vspec(v);
        assert!(a.checkout_dropped().is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double-checkout")]
    fn double_checkout_panics_in_debug() {
        let mut a = ProbeArena::new();
        let _v1 = a.checkout_vspec();
        let _v2 = a.checkout_vspec();
    }
}
