//! Committed value memory and speculative write sets (lazy versioning).
//!
//! The global memory holds **committed** bytes only. Each core buffers its
//! transaction's stores in a [`WriteSet`]; commit publishes them, abort
//! drops them. Because the simulator routes every read through
//! write-set-then-global, uncommitted data is never visible across cores —
//! matching ASF's lazy-versioning visibility rule (and documented in
//! DESIGN.md as the one deliberate simplification versus data-in-L1).

use asf_mem::addr::{Addr, LineAddr, LINE_SIZE};
use asf_mem::fxhash::FxHashMap;

/// Sparse committed byte memory, line-granular allocation, zero-initialised.
#[derive(Clone, Debug, Default)]
pub struct GlobalMemory {
    lines: FxHashMap<LineAddr, Box<[u8; LINE_SIZE]>>,
}

impl GlobalMemory {
    /// Fresh zeroed memory.
    pub fn new() -> GlobalMemory {
        GlobalMemory::default()
    }

    /// Read up to 8 little-endian bytes at `addr` (may straddle lines).
    pub fn read_u64(&self, addr: Addr, size: u32) -> u64 {
        assert!((1..=8).contains(&size), "valued reads are 1..=8 bytes");
        // Fast path: the access stays within one line — look it up once
        // instead of once per byte.
        let off = addr.offset();
        if off + size as usize <= LINE_SIZE {
            let Some(line) = self.lines.get(&addr.line()) else { return 0 };
            let mut out = 0u64;
            for i in 0..size as usize {
                out |= (line[off + i] as u64) << (8 * i);
            }
            return out;
        }
        let mut out = 0u64;
        for i in 0..size as u64 {
            let a = addr.offset_by(i);
            let byte = self
                .lines
                .get(&a.line())
                .map(|l| l[a.offset()])
                .unwrap_or(0);
            out |= (byte as u64) << (8 * i);
        }
        out
    }

    /// Write up to 8 little-endian bytes at `addr`.
    pub fn write_u64(&mut self, addr: Addr, size: u32, value: u64) {
        assert!((1..=8).contains(&size), "valued writes are 1..=8 bytes");
        // Fast path: one line, one map probe.
        let off = addr.offset();
        if off + size as usize <= LINE_SIZE {
            let line = self
                .lines
                .entry(addr.line())
                .or_insert_with(|| Box::new([0; LINE_SIZE]));
            for i in 0..size as usize {
                line[off + i] = (value >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..size as u64 {
            let a = addr.offset_by(i);
            let line = self
                .lines
                .entry(a.line())
                .or_insert_with(|| Box::new([0; LINE_SIZE]));
            line[a.offset()] = (value >> (8 * i)) as u8;
        }
    }

    /// Write one byte.
    pub fn write_byte(&mut self, addr: Addr, byte: u8) {
        let line = self
            .lines
            .entry(addr.line())
            .or_insert_with(|| Box::new([0; LINE_SIZE]));
        line[addr.offset()] = byte;
    }

    /// Number of allocated (ever-written) lines.
    pub fn allocated_lines(&self) -> usize {
        self.lines.len()
    }
}

/// A transaction's buffered stores: byte-granular, last-write-wins.
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    bytes: FxHashMap<u64, u8>,
}

impl WriteSet {
    /// Is the write set empty?
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Buffer a write of up to 8 little-endian bytes.
    pub fn write_u64(&mut self, addr: Addr, size: u32, value: u64) {
        assert!((1..=8).contains(&size));
        for i in 0..size as u64 {
            self.bytes.insert(addr.0 + i, (value >> (8 * i)) as u8);
        }
    }

    /// Read up to 8 little-endian bytes, taking buffered bytes where present
    /// and falling back to `global` elsewhere (store-to-load forwarding).
    pub fn read_u64(&self, global: &GlobalMemory, addr: Addr, size: u32) -> u64 {
        assert!((1..=8).contains(&size));
        if self.bytes.is_empty() {
            return global.read_u64(addr, size);
        }
        // Read the committed bytes in one go, then overlay buffered bytes —
        // one line probe plus `size` byte probes, instead of up to two map
        // probes per byte.
        let mut out = global.read_u64(addr, size);
        for i in 0..size as u64 {
            if let Some(&b) = self.bytes.get(&(addr.0 + i)) {
                out = (out & !(0xffu64 << (8 * i))) | ((b as u64) << (8 * i));
            }
        }
        out
    }

    /// Does the buffered set overlap `[addr, addr+size)`?
    #[inline]
    pub fn overlaps(&self, addr: Addr, size: u32) -> bool {
        // The isolation oracle asks this for every remote core on every
        // transactional access; most write sets are empty.
        !self.bytes.is_empty() && (0..size as u64).any(|i| self.bytes.contains_key(&(addr.0 + i)))
    }

    /// Publish all buffered bytes into `global` and clear (commit).
    pub fn publish(&mut self, global: &mut GlobalMemory) {
        for (&a, &b) in &self.bytes {
            global.write_byte(Addr(a), b);
        }
        self.bytes.clear();
    }

    /// Drop all buffered bytes (abort).
    pub fn discard(&mut self) {
        self.bytes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let g = GlobalMemory::new();
        assert_eq!(g.read_u64(Addr(0x1234), 8), 0);
        assert_eq!(g.allocated_lines(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut g = GlobalMemory::new();
        g.write_u64(Addr(0x100), 8, 0xdead_beef_cafe_f00d);
        assert_eq!(g.read_u64(Addr(0x100), 8), 0xdead_beef_cafe_f00d);
        assert_eq!(g.read_u64(Addr(0x100), 4), 0xcafe_f00d);
        assert_eq!(g.read_u64(Addr(0x104), 4), 0xdead_beef);
    }

    #[test]
    fn straddling_line_boundary() {
        let mut g = GlobalMemory::new();
        g.write_u64(Addr(0x3c), 8, 0x1122_3344_5566_7788); // bytes 60..68
        assert_eq!(g.read_u64(Addr(0x3c), 8), 0x1122_3344_5566_7788);
        assert_eq!(g.allocated_lines(), 2);
    }

    #[test]
    fn writeset_forwarding() {
        let mut g = GlobalMemory::new();
        g.write_u64(Addr(0x40), 8, 0xaaaa_aaaa_aaaa_aaaa);
        let mut ws = WriteSet::default();
        // Buffer only the low 4 bytes.
        ws.write_u64(Addr(0x40), 4, 0x5555_5555);
        // Read 8 bytes: low half from write set, high half from global.
        assert_eq!(ws.read_u64(&g, Addr(0x40), 8), 0xaaaa_aaaa_5555_5555);
        // Global unchanged until publish.
        assert_eq!(g.read_u64(Addr(0x40), 8), 0xaaaa_aaaa_aaaa_aaaa);
        ws.publish(&mut g);
        assert_eq!(g.read_u64(Addr(0x40), 8), 0xaaaa_aaaa_5555_5555);
        assert!(ws.is_empty());
    }

    #[test]
    fn writeset_discard() {
        let mut g = GlobalMemory::new();
        let mut ws = WriteSet::default();
        ws.write_u64(Addr(8), 8, 42);
        assert!(ws.overlaps(Addr(8), 1));
        assert!(ws.overlaps(Addr(15), 4));
        assert!(!ws.overlaps(Addr(16), 8));
        ws.discard();
        assert!(ws.is_empty());
        ws.publish(&mut g);
        assert_eq!(g.read_u64(Addr(8), 8), 0);
    }

    #[test]
    fn last_write_wins() {
        let g = GlobalMemory::new();
        let mut ws = WriteSet::default();
        ws.write_u64(Addr(0), 8, 1);
        ws.write_u64(Addr(0), 8, 2);
        assert_eq!(ws.read_u64(&g, Addr(0), 8), 2);
        assert_eq!(ws.len(), 8);
    }
}
