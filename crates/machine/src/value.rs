//! Committed value memory and speculative write sets (lazy versioning).
//!
//! The global memory holds **committed** bytes only. Each core buffers its
//! transaction's stores in a [`WriteSet`]; commit publishes them, abort
//! drops them. Because the simulator routes every read through
//! write-set-then-global, uncommitted data is never visible across cores —
//! matching ASF's lazy-versioning visibility rule (and documented in
//! DESIGN.md as the one deliberate simplification versus data-in-L1).

use asf_mem::addr::{Addr, LineAddr, LINE_SIZE};
use asf_mem::fxhash::FxHashMap;

/// Sparse committed byte memory, line-granular allocation, zero-initialised.
#[derive(Clone, Debug, Default)]
pub struct GlobalMemory {
    lines: FxHashMap<LineAddr, Box<[u8; LINE_SIZE]>>,
}

impl GlobalMemory {
    /// Fresh zeroed memory.
    pub fn new() -> GlobalMemory {
        GlobalMemory::default()
    }

    /// Read up to 8 little-endian bytes at `addr` (may straddle lines).
    pub fn read_u64(&self, addr: Addr, size: u32) -> u64 {
        assert!((1..=8).contains(&size), "valued reads are 1..=8 bytes");
        // Fast path: the access stays within one line — look it up once
        // instead of once per byte.
        let off = addr.offset();
        if off + size as usize <= LINE_SIZE {
            let Some(line) = self.lines.get(&addr.line()) else { return 0 };
            let mut out = 0u64;
            for i in 0..size as usize {
                out |= (line[off + i] as u64) << (8 * i);
            }
            return out;
        }
        let mut out = 0u64;
        for i in 0..size as u64 {
            let a = addr.offset_by(i);
            let byte = self
                .lines
                .get(&a.line())
                .map(|l| l[a.offset()])
                .unwrap_or(0);
            out |= (byte as u64) << (8 * i);
        }
        out
    }

    /// Write up to 8 little-endian bytes at `addr`.
    pub fn write_u64(&mut self, addr: Addr, size: u32, value: u64) {
        assert!((1..=8).contains(&size), "valued writes are 1..=8 bytes");
        // Fast path: one line, one map probe.
        let off = addr.offset();
        if off + size as usize <= LINE_SIZE {
            let line = self
                .lines
                .entry(addr.line())
                .or_insert_with(|| Box::new([0; LINE_SIZE]));
            for i in 0..size as usize {
                line[off + i] = (value >> (8 * i)) as u8;
            }
            return;
        }
        for i in 0..size as u64 {
            let a = addr.offset_by(i);
            let line = self
                .lines
                .entry(a.line())
                .or_insert_with(|| Box::new([0; LINE_SIZE]));
            line[a.offset()] = (value >> (8 * i)) as u8;
        }
    }

    /// Write one byte.
    pub fn write_byte(&mut self, addr: Addr, byte: u8) {
        let line = self
            .lines
            .entry(addr.line())
            .or_insert_with(|| Box::new([0; LINE_SIZE]));
        line[addr.offset()] = byte;
    }

    /// Write the bytes of `src` selected by `mask` (bit `i` ⇒ byte `i`)
    /// into `line` — one map probe per line instead of one per byte. The
    /// write-set publish path lives on this.
    pub fn write_masked_line(&mut self, line: LineAddr, mask: u64, src: &[u8; LINE_SIZE]) {
        if mask == 0 {
            return;
        }
        let dst = self
            .lines
            .entry(line)
            .or_insert_with(|| Box::new([0; LINE_SIZE]));
        let mut bits = mask;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            dst[i] = src[i];
        }
    }

    /// Number of allocated (ever-written) lines.
    pub fn allocated_lines(&self) -> usize {
        self.lines.len()
    }
}

/// One line's buffered speculative bytes: a presence bitmask plus the byte
/// values, generation-tagged so abort/commit never walks the map.
#[derive(Clone, Debug)]
struct WsLine {
    /// Epoch stamp; the entry is live iff it matches the set's epoch.
    epoch: u64,
    /// Bit `i` set ⇒ byte `i` of the line is buffered.
    mask: u64,
    /// Buffered byte values (only masked positions are meaningful).
    bytes: [u8; LINE_SIZE],
}

/// A transaction's buffered stores: byte-granular, last-write-wins,
/// **line-packed**.
///
/// Storage is one map entry per touched *line* — a 64-bit presence mask
/// plus the byte values — so an 8-byte store is one hash probe and a word
/// OR instead of eight per-byte map entries, and the isolation oracle's
/// [`WriteSet::overlaps`] is one probe and an AND. Entries are
/// **generation-tagged**: a line is live iff its epoch stamp matches the
/// set's, so [`WriteSet::discard`] (abort) and the clear after
/// [`WriteSet::publish`] (commit) are O(1) — the backing map is pooled
/// across attempts instead of being torn down and re-grown. A side log of
/// the current epoch's distinct lines makes publish O(touched lines).
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    lines: FxHashMap<LineAddr, WsLine>,
    /// Distinct lines written in the current epoch, in first-write order.
    log: Vec<LineAddr>,
    epoch: u64,
    /// Distinct bytes buffered in the current epoch.
    live_bytes: usize,
}

/// One line-sized piece of an access: `(line, offset-in-line, len)`.
type Fragment = (LineAddr, usize, usize);

impl WriteSet {
    /// Is the write set empty?
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Number of buffered bytes.
    pub fn len(&self) -> usize {
        self.live_bytes
    }

    /// Split `[addr, addr+size)` (size ≤ 8, so at most two lines) into a
    /// head fragment and an optional straddle tail, each `(line,
    /// offset-in-line, len)`. Returned as a pair — not an iterator — so the
    /// hot callers compile to a straight-line head path with a predictable
    /// rarely-taken tail branch.
    #[inline]
    fn fragments(addr: Addr, size: u32) -> (Fragment, Option<Fragment>) {
        let first = addr.line();
        let off = addr.offset();
        let head = (LINE_SIZE - off).min(size as usize);
        let tail = size as usize - head;
        (
            (first, off, head),
            (tail > 0).then(|| (LineAddr(first.0 + LINE_SIZE as u64), 0, tail)),
        )
    }

    /// Buffer one fragment's bytes (`value` already shifted so its low byte
    /// is the fragment's first byte).
    #[inline]
    fn buffer_fragment(&mut self, (line, off, len): (LineAddr, usize, usize), value: u64) {
        let slot = self.lines.entry(line).or_insert_with(|| WsLine {
            epoch: self.epoch.wrapping_sub(1),
            mask: 0,
            bytes: [0; LINE_SIZE],
        });
        if slot.epoch != self.epoch {
            slot.epoch = self.epoch;
            slot.mask = 0;
            self.log.push(line);
        }
        let frag_mask = (u64::MAX >> (64 - len)) << off;
        self.live_bytes += (frag_mask & !slot.mask).count_ones() as usize;
        slot.mask |= frag_mask;
        for i in 0..len {
            slot.bytes[off + i] = (value >> (8 * i)) as u8;
        }
    }

    /// Buffer a write of up to 8 little-endian bytes.
    pub fn write_u64(&mut self, addr: Addr, size: u32, value: u64) {
        assert!((1..=8).contains(&size));
        let (head, tail) = Self::fragments(addr, size);
        self.buffer_fragment(head, value);
        if let Some(frag) = tail {
            self.buffer_fragment(frag, value >> (8 * head.2));
        }
    }

    /// Overlay one fragment's buffered bytes onto `out` (little-endian view
    /// of the access), where the fragment's first byte is access byte
    /// `consumed`.
    #[inline]
    fn overlay_fragment(
        &self,
        (line, off, len): (LineAddr, usize, usize),
        consumed: usize,
        out: &mut u64,
    ) {
        if let Some(slot) = self.lines.get(&line) {
            if slot.epoch == self.epoch {
                for i in 0..len {
                    if slot.mask & (1 << (off + i)) != 0 {
                        let shift = 8 * (consumed + i);
                        *out = (*out & !(0xffu64 << shift))
                            | ((slot.bytes[off + i] as u64) << shift);
                    }
                }
            }
        }
    }

    /// Read up to 8 little-endian bytes, taking buffered bytes where present
    /// and falling back to `global` elsewhere (store-to-load forwarding).
    pub fn read_u64(&self, global: &GlobalMemory, addr: Addr, size: u32) -> u64 {
        assert!((1..=8).contains(&size));
        if self.log.is_empty() {
            return global.read_u64(addr, size);
        }
        // Read the committed bytes in one go, then overlay buffered bytes —
        // one map probe per line fragment.
        let mut out = global.read_u64(addr, size);
        let (head, tail) = Self::fragments(addr, size);
        self.overlay_fragment(head, 0, &mut out);
        if let Some(frag) = tail {
            self.overlay_fragment(frag, head.2, &mut out);
        }
        out
    }

    /// Does one fragment hit any buffered byte?
    #[inline]
    fn fragment_overlaps(&self, (line, off, len): (LineAddr, usize, usize)) -> bool {
        self.lines.get(&line).is_some_and(|slot| {
            slot.epoch == self.epoch && slot.mask & ((u64::MAX >> (64 - len)) << off) != 0
        })
    }

    /// Does the buffered set overlap `[addr, addr+size)`?
    #[inline]
    pub fn overlaps(&self, addr: Addr, size: u32) -> bool {
        // The isolation oracle asks this for every remote core on every
        // transactional access; most write sets are empty, and a non-empty
        // one answers with one map probe and a mask AND per line fragment.
        if self.log.is_empty() {
            return false;
        }
        let (head, tail) = Self::fragments(addr, size);
        self.fragment_overlaps(head) || tail.is_some_and(|f| self.fragment_overlaps(f))
    }

    /// Publish all buffered bytes into `global` and clear (commit).
    ///
    /// Iterates the line log — logged lines are distinct and bytes within a
    /// line are written mask-selected in one pass, so the final memory image
    /// is identical regardless of iteration order.
    pub fn publish(&mut self, global: &mut GlobalMemory) {
        for &line in &self.log {
            let slot = &self.lines[&line];
            debug_assert_eq!(slot.epoch, self.epoch, "logged line must be current-epoch");
            global.write_masked_line(line, slot.mask, &slot.bytes);
        }
        self.discard();
    }

    /// Drop all buffered bytes (abort). O(1) logical clear: bumps the epoch
    /// and truncates the log; the line map keeps its capacity for reuse.
    pub fn discard(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.log.clear();
        self.live_bytes = 0;
    }
}

/// A transaction's value-validation read log (DPTM WAR speculation):
/// byte-granular `addr → observed byte`, replayed at commit to detect a
/// conflicting committed write. Generation-tagged like [`WriteSet`] so
/// per-attempt teardown is O(1) with pooled storage.
#[derive(Clone, Debug, Default)]
pub struct ReadLog {
    /// addr → (epoch stamp, first byte observed this epoch).
    bytes: FxHashMap<u64, (u64, u8)>,
    /// Distinct addresses logged in the current epoch.
    log: Vec<u64>,
    epoch: u64,
}

impl ReadLog {
    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Record `byte` as the value observed at `addr`; a repeated address
    /// within an epoch keeps the *latest* observation (map-insert semantics,
    /// matching the plain hash-map log this replaces).
    pub fn record(&mut self, addr: u64, byte: u8) {
        let slot = self.bytes.entry(addr).or_insert((self.epoch.wrapping_sub(1), 0));
        if slot.0 != self.epoch {
            self.log.push(addr);
        }
        *slot = (self.epoch, byte);
    }

    /// Iterate the current epoch's `(addr, observed byte)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.log.iter().map(move |&a| {
            let (e, b) = self.bytes[&a];
            debug_assert_eq!(e, self.epoch, "logged address must be current-epoch");
            (a, b)
        })
    }

    /// O(1) logical clear; backing storage is pooled across attempts.
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let g = GlobalMemory::new();
        assert_eq!(g.read_u64(Addr(0x1234), 8), 0);
        assert_eq!(g.allocated_lines(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut g = GlobalMemory::new();
        g.write_u64(Addr(0x100), 8, 0xdead_beef_cafe_f00d);
        assert_eq!(g.read_u64(Addr(0x100), 8), 0xdead_beef_cafe_f00d);
        assert_eq!(g.read_u64(Addr(0x100), 4), 0xcafe_f00d);
        assert_eq!(g.read_u64(Addr(0x104), 4), 0xdead_beef);
    }

    #[test]
    fn straddling_line_boundary() {
        let mut g = GlobalMemory::new();
        g.write_u64(Addr(0x3c), 8, 0x1122_3344_5566_7788); // bytes 60..68
        assert_eq!(g.read_u64(Addr(0x3c), 8), 0x1122_3344_5566_7788);
        assert_eq!(g.allocated_lines(), 2);
    }

    #[test]
    fn writeset_forwarding() {
        let mut g = GlobalMemory::new();
        g.write_u64(Addr(0x40), 8, 0xaaaa_aaaa_aaaa_aaaa);
        let mut ws = WriteSet::default();
        // Buffer only the low 4 bytes.
        ws.write_u64(Addr(0x40), 4, 0x5555_5555);
        // Read 8 bytes: low half from write set, high half from global.
        assert_eq!(ws.read_u64(&g, Addr(0x40), 8), 0xaaaa_aaaa_5555_5555);
        // Global unchanged until publish.
        assert_eq!(g.read_u64(Addr(0x40), 8), 0xaaaa_aaaa_aaaa_aaaa);
        ws.publish(&mut g);
        assert_eq!(g.read_u64(Addr(0x40), 8), 0xaaaa_aaaa_5555_5555);
        assert!(ws.is_empty());
    }

    #[test]
    fn writeset_discard() {
        let mut g = GlobalMemory::new();
        let mut ws = WriteSet::default();
        ws.write_u64(Addr(8), 8, 42);
        assert!(ws.overlaps(Addr(8), 1));
        assert!(ws.overlaps(Addr(15), 4));
        assert!(!ws.overlaps(Addr(16), 8));
        ws.discard();
        assert!(ws.is_empty());
        ws.publish(&mut g);
        assert_eq!(g.read_u64(Addr(8), 8), 0);
    }

    #[test]
    fn last_write_wins() {
        let g = GlobalMemory::new();
        let mut ws = WriteSet::default();
        ws.write_u64(Addr(0), 8, 1);
        ws.write_u64(Addr(0), 8, 2);
        assert_eq!(ws.read_u64(&g, Addr(0), 8), 2);
        assert_eq!(ws.len(), 8);
    }

    #[test]
    fn writeset_epochs_stay_isolated() {
        // The O(1) discard must behave exactly like draining the map: no
        // byte buffered before the epoch bump may be visible after it.
        let mut g = GlobalMemory::new();
        let mut ws = WriteSet::default();
        for round in 0u64..50 {
            ws.write_u64(Addr(round * 8), 8, round + 1);
            assert_eq!(ws.len(), 8);
            assert!(ws.overlaps(Addr(round * 8), 1));
            ws.discard();
            assert!(ws.is_empty());
            assert!(!ws.overlaps(Addr(round * 8), 8));
            assert_eq!(ws.read_u64(&g, Addr(round * 8), 8), 0);
        }
        // Publish only writes current-epoch bytes.
        ws.write_u64(Addr(0), 4, 0xdead_beef);
        ws.publish(&mut g);
        assert_eq!(g.read_u64(Addr(0), 8), 0xdead_beef);
        assert_eq!(g.read_u64(Addr(8), 8), 0, "stale epochs must not publish");
    }

    #[test]
    fn read_log_epochs_and_last_observation() {
        let mut rl = ReadLog::default();
        assert!(rl.is_empty());
        rl.record(0x10, 1);
        rl.record(0x10, 2); // repeated address: latest observation wins
        rl.record(0x11, 9);
        let mut got: Vec<_> = rl.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0x10, 2), (0x11, 9)]);
        rl.clear();
        assert!(rl.is_empty());
        assert_eq!(rl.iter().count(), 0);
        rl.record(0x10, 7);
        assert_eq!(rl.iter().collect::<Vec<_>>(), vec![(0x10, 7)]);
    }
}
