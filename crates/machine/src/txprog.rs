//! Workload API: how benchmark kernels drive the simulator.
//!
//! A [`Workload`] spawns one [`ThreadProgram`] per core. A thread program is
//! an iterator of [`WorkItem`]s: transactions ([`TxAttempt`], a list of
//! [`TxOp`]s), non-transactional access sequences, or pure compute delays.
//! On abort the machine replays the same attempt after backoff — the usual
//! HTM retry model; data-dependent values are expressed with
//! [`TxOp::Update`] so replays recompute against current memory.

use asf_mem::addr::Addr;

/// One operation inside a transaction (or a non-transactional sequence).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxOp {
    /// Read `size` bytes at `addr` (size may span lines).
    Read {
        /// First byte.
        addr: Addr,
        /// Bytes read.
        size: u32,
    },
    /// Write an immediate `value` of `size` bytes (≤ 8) at `addr`.
    Write {
        /// First byte.
        addr: Addr,
        /// Bytes written (1..=8).
        size: u32,
        /// Little-endian immediate.
        value: u64,
    },
    /// Read-modify-write: load `size` bytes (≤ 8), add `delta`, store back.
    /// Replays recompute from current memory, so committed updates are
    /// exactly the increments that committed — the serializability oracle
    /// used by the test suite.
    Update {
        /// First byte.
        addr: Addr,
        /// Bytes (1..=8).
        size: u32,
        /// Value added.
        delta: u64,
    },
    /// Local computation for `cycles` cycles.
    Compute {
        /// Duration in cycles.
        cycles: u64,
    },
    /// Abort the transaction with probability `num`/`den` (evaluated with
    /// the core's RNG at execution time, so a retry may pass). Models
    /// labyrinth's user-level aborts.
    UserAbort {
        /// Numerator of the abort probability.
        num: u32,
        /// Denominator of the abort probability.
        den: u32,
    },
    /// Advance the local clock to at least `cycle` — scripted-interleaving
    /// support for protocol tests (Figures 6 and 7); workloads do not use
    /// it.
    WaitUntil {
        /// Absolute cycle to wait for.
        cycle: u64,
    },
}

/// A transaction attempt: the ops executed under speculation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TxAttempt {
    /// Operations, executed in order.
    pub ops: Vec<TxOp>,
}

impl TxAttempt {
    /// Build an attempt from ops.
    pub fn new(ops: Vec<TxOp>) -> TxAttempt {
        TxAttempt { ops }
    }
}

/// One unit of work a thread hands to the machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkItem {
    /// A transaction (retried until it commits or falls back to the lock).
    Tx(TxAttempt),
    /// Ordinary non-transactional accesses (coherent, can abort remote
    /// transactions, never aborts itself).
    Plain(Vec<TxOp>),
    /// Pure local compute.
    Compute {
        /// Duration in cycles.
        cycles: u64,
    },
}

/// A per-core instruction stream.
///
/// `Send` is a supertrait so a whole [`crate::machine::Machine`] (which
/// owns one boxed program per core) can be moved to a worker thread by the
/// shard-parallel engine ([`crate::shard::ShardEngine`]). Programs are
/// still driven strictly single-threaded — one shard runs on exactly one
/// worker per epoch — so no `Sync` is required.
pub trait ThreadProgram: Send {
    /// Next unit of work, or `None` when the thread is finished. Called
    /// only after the previous item fully completed (transactions: after
    /// commit or lock-fallback completion).
    fn next_item(&mut self) -> Option<WorkItem>;
}

/// A benchmark: names itself and spawns one program per core.
pub trait Workload {
    /// Benchmark name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// One-line description (Table III).
    fn description(&self) -> &'static str {
        ""
    }

    /// Natural data-structure word size in bytes (Figure 5 bucketing):
    /// 4 for kmeans, 8 for most others.
    fn word_size(&self) -> usize {
        8
    }

    /// Spawn the program for thread `tid` of `threads`, seeded
    /// deterministically.
    fn spawn(&self, tid: usize, threads: usize, seed: u64) -> Box<dyn ThreadProgram>;
}

/// A canned program that yields a fixed list of items — scripted tests and
/// simple workloads.
#[derive(Debug, Default)]
pub struct ScriptedProgram {
    items: std::vec::IntoIter<WorkItem>,
}

impl ScriptedProgram {
    /// Wrap a fixed item list.
    pub fn new(items: Vec<WorkItem>) -> ScriptedProgram {
        ScriptedProgram { items: items.into_iter() }
    }
}

impl ThreadProgram for ScriptedProgram {
    fn next_item(&mut self) -> Option<WorkItem> {
        self.items.next()
    }
}

/// A workload defined by explicit per-thread scripts (protocol tests).
pub struct ScriptedWorkload {
    /// Scripts, one per thread; threads beyond the list idle immediately.
    pub scripts: Vec<Vec<WorkItem>>,
    /// Name reported to the stats layer.
    pub name: &'static str,
}

impl Workload for ScriptedWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn spawn(&self, tid: usize, _threads: usize, _seed: u64) -> Box<dyn ThreadProgram> {
        Box::new(ScriptedProgram::new(
            self.scripts.get(tid).cloned().unwrap_or_default(),
        ))
    }
}

/// A workload whose per-thread programs are built by a closure — the
/// lightest way to define ad-hoc workloads in tests and examples.
pub struct FnWorkload<F> {
    /// Reported name.
    pub name: &'static str,
    /// `(tid, threads, seed) -> program` factory.
    pub spawn_fn: F,
}

impl<F> Workload for FnWorkload<F>
where
    F: Fn(usize, usize, u64) -> Box<dyn ThreadProgram>,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn spawn(&self, tid: usize, threads: usize, seed: u64) -> Box<dyn ThreadProgram> {
        (self.spawn_fn)(tid, threads, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_program_yields_in_order() {
        let mut p = ScriptedProgram::new(vec![
            WorkItem::Compute { cycles: 5 },
            WorkItem::Tx(TxAttempt::new(vec![TxOp::Read { addr: Addr(0), size: 8 }])),
        ]);
        assert!(matches!(p.next_item(), Some(WorkItem::Compute { cycles: 5 })));
        assert!(matches!(p.next_item(), Some(WorkItem::Tx(_))));
        assert!(p.next_item().is_none());
        assert!(p.next_item().is_none());
    }

    #[test]
    fn scripted_workload_pads_missing_threads() {
        let w = ScriptedWorkload {
            scripts: vec![vec![WorkItem::Compute { cycles: 1 }]],
            name: "t",
        };
        let mut t0 = w.spawn(0, 2, 0);
        let mut t1 = w.spawn(1, 2, 0);
        assert!(t0.next_item().is_some());
        assert!(t1.next_item().is_none());
        assert_eq!(w.name(), "t");
        assert_eq!(w.word_size(), 8);
    }
}

/// Ergonomic transaction construction — the equivalent of the paper's
/// software library that wraps the ASF instructions ("we chose to rely on
/// normal gcc compiler and put all TM-related ASF instructions in the
/// library"): build a transaction with method calls instead of assembling
/// `TxOp` vectors by hand.
///
/// ```
/// use asf_machine::txprog::TxBuilder;
/// use asf_mem::addr::Addr;
///
/// let attempt = TxBuilder::new()
///     .read(Addr(0x100), 8)
///     .update(Addr(0x100), 8, 1)
///     .compute(40)
///     .finish();
/// assert_eq!(attempt.ops.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct TxBuilder {
    ops: Vec<TxOp>,
}

impl TxBuilder {
    /// Start an empty transaction.
    pub fn new() -> TxBuilder {
        TxBuilder::default()
    }

    /// Speculative load of `size` bytes.
    #[must_use]
    pub fn read(mut self, addr: Addr, size: u32) -> Self {
        self.ops.push(TxOp::Read { addr, size });
        self
    }

    /// Speculative store of an immediate value (≤ 8 bytes).
    #[must_use]
    pub fn write(mut self, addr: Addr, size: u32, value: u64) -> Self {
        self.ops.push(TxOp::Write { addr, size, value });
        self
    }

    /// Speculative read-modify-write (`+= delta`, ≤ 8 bytes).
    #[must_use]
    pub fn update(mut self, addr: Addr, size: u32, delta: u64) -> Self {
        self.ops.push(TxOp::Update { addr, size, delta });
        self
    }

    /// In-transaction computation.
    #[must_use]
    pub fn compute(mut self, cycles: u64) -> Self {
        self.ops.push(TxOp::Compute { cycles });
        self
    }

    /// Probabilistic user abort (like labyrinth's re-route).
    #[must_use]
    pub fn user_abort(mut self, num: u32, den: u32) -> Self {
        self.ops.push(TxOp::UserAbort { num, den });
        self
    }

    /// Finish into an attempt.
    pub fn finish(self) -> TxAttempt {
        TxAttempt::new(self.ops)
    }

    /// Finish into a work item.
    pub fn into_item(self) -> WorkItem {
        WorkItem::Tx(self.finish())
    }
}

#[cfg(test)]
mod builder_tests {
    use super::*;

    #[test]
    fn builder_produces_ops_in_order() {
        let att = TxBuilder::new()
            .read(Addr(0), 8)
            .write(Addr(8), 4, 7)
            .update(Addr(16), 8, 1)
            .compute(5)
            .user_abort(1, 10)
            .finish();
        assert_eq!(att.ops.len(), 5);
        assert!(matches!(att.ops[0], TxOp::Read { .. }));
        assert!(matches!(att.ops[1], TxOp::Write { value: 7, .. }));
        assert!(matches!(att.ops[2], TxOp::Update { delta: 1, .. }));
        assert!(matches!(att.ops[3], TxOp::Compute { cycles: 5 }));
        assert!(matches!(att.ops[4], TxOp::UserAbort { num: 1, den: 10 }));
    }

    #[test]
    fn into_item_wraps_tx() {
        let item = TxBuilder::new().compute(1).into_item();
        assert!(matches!(item, WorkItem::Tx(_)));
    }
}
