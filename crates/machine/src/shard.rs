//! Shard-parallel execution: many [`Machine`]s as one big simulation.
//!
//! The sequential engine tops out at 64 cores (its dense per-line state is
//! a set of `u64` bitmask columns). To scale past the paper's 8-core
//! machine to hundreds of simulated cores, this module runs **K clusters of
//! ≤ 64 cores each as K independent `Machine`s** — each cluster is a snoop
//! domain with its own broadcast fabric — joined by the conservative
//! [`InterClusterDirectory`] of [`crate::hier`].
//!
//! ## Execution model: bulk-synchronous epochs
//!
//! Time is cut into fixed-length *coherence epochs* (`epoch_cycles`). Each
//! epoch, every shard runs its own calendar-queue scheduler up to the epoch
//! boundary — completely independently, touching no shared state — and then
//! the engine resolves cross-shard traffic at a single-threaded barrier:
//!
//! 1. every line that *gained speculative state* this epoch is noted in the
//!    inter-cluster directory (conservative: entries are never removed,
//!    mirroring HT-Assist's never-cleaned probe filter);
//! 2. every committed write footprint is routed through the directory to
//!    the other clusters holding (possibly stale) speculative state on the
//!    line, where it lands as an external invalidating probe and aborts
//!    conflicting transactions with the same detector mask check — and the
//!    same true/false-conflict taxonomy — as a local probe.
//!
//! ## Determinism
//!
//! The barrier runs on one thread and walks shards, commits, and probe
//! targets in a canonical order (ascending shard id → commit event order →
//! ascending target cluster), and intra-epoch shard execution shares no
//! state whatsoever. Worker threads therefore *cannot* affect any simulated
//! outcome: `worker_threads = N` is bit-identical to `worker_threads = 1`,
//! and a single-shard engine is bit-identical to a plain [`Machine`] run —
//! both invariants are pinned by tests (`tests/shard_equivalence.rs`).
//!
//! The price of the model is physical fidelity, stated plainly: conflicts
//! *within* a cluster are detected at exact cycle granularity as before,
//! while cross-cluster conflicts are detected only at epoch boundaries and
//! only in the committed-writer → speculative-reader direction. Plain
//! (non-speculative) data is not kept coherent across clusters — shard
//! workloads partition their plain data by cluster (see
//! `asf-workloads::streaming`). DESIGN.md §15 discusses the trade-off.

use crate::hier::{ClusterTopology, DirLatency, InterClusterDirectory};
use crate::machine::{EpochLog, Machine, SimConfig, SimOutput};
use crate::txprog::Workload;
use asf_stats::run::RunStats;
use std::time::{Duration, Instant};

use crate::error::SimError;

/// Shard-engine shape: how many cores, how they cluster, how often the
/// barrier runs, and how many OS threads drive the shards.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Total simulated cores across all shards; must be a multiple of
    /// `cores_per_cluster` (or equal to it).
    pub total_cores: usize,
    /// Cores per cluster = per shard (1..=64); 16 models four Opteron
    /// Istanbul sockets sharing one snoop domain.
    pub cores_per_cluster: usize,
    /// Epoch length in cycles: the cross-cluster conflict-detection
    /// granularity *and* the barrier frequency. Smaller = more faithful +
    /// more barrier overhead.
    pub epoch_cycles: u64,
    /// OS worker threads driving the shards (`shard s → thread s % N`).
    /// 1 = the sequential reference; any N is bit-identical to it.
    pub worker_threads: usize,
    /// Inter-cluster directory latency model (accounted, not simulated:
    /// the cycles accrue in [`ScaleStats`], not in any shard's clock).
    pub dir_latency: DirLatency,
}

impl ShardConfig {
    /// The `--scale huge` tier shape: 16-core clusters, 4096-cycle epochs,
    /// sequential driving unless the caller raises `worker_threads`.
    pub fn huge(total_cores: usize) -> ShardConfig {
        ShardConfig {
            total_cores,
            cores_per_cluster: 16,
            epoch_cycles: 4096,
            worker_threads: 1,
            dir_latency: DirLatency::opteron_like(),
        }
    }
}

/// Epochs recorded in the [`ScaleStats`] timeline before it stops growing
/// (a 512-core soak resolves tens of thousands of epochs; the timeline is
/// for tracing, not accounting, so it is capped and the totals keep going).
pub const TIMELINE_CAP: usize = 4096;

/// One resolved epoch, for timeline export (Chrome-trace shard tracks).
#[derive(Clone, Debug)]
pub struct EpochSpan {
    /// The epoch boundary this span ran up to (simulated cycles).
    pub until: u64,
    /// Wall-clock of the parallel execution phase.
    pub wall: Duration,
    /// Wall-clock of the single-threaded barrier that followed.
    pub barrier: Duration,
    /// Per-worker busy time within this epoch (index = worker id).
    pub busy: Vec<Duration>,
}

/// Cross-shard and engine-level statistics, kept *outside* [`RunStats`] so
/// shard-parallel runs stay field-for-field comparable with sequential
/// references (the equivalence tests compare whole `RunStats` values).
#[derive(Debug, Default)]
pub struct ScaleStats {
    /// Epochs resolved (barrier executions).
    pub epochs: u64,
    /// External probes delivered to shards (one per routed line × target).
    pub cross_probes: u64,
    /// Transactions aborted by external probes.
    pub cross_aborts: u64,
    /// Inter-cluster directory lookups (one per routed committed line).
    pub dir_lookups: u64,
    /// Directory-routed probe hops (targets across all lookups).
    pub dir_probes_routed: u64,
    /// Modelled directory latency: lookups and hops priced by
    /// [`DirLatency`]. Accounted cost, never added to a core clock.
    pub dir_latency_cycles: u64,
    /// Distinct lines the directory tracks at the end of the run.
    pub dir_lines: usize,
    /// Wall-clock spent inside shard execution, per worker thread.
    pub busy: Vec<Duration>,
    /// Wall-clock of the execution phases (max over workers, summed across
    /// epochs) — the parallel region's critical path.
    pub epoch_wall: Duration,
    /// Wall-clock of the single-threaded barriers.
    pub barrier_wall: Duration,
    /// Per-epoch spans, first [`TIMELINE_CAP`] epochs only.
    pub timeline: Vec<EpochSpan>,
    /// Epochs that ran after the timeline filled (totals still include
    /// them; only the per-epoch detail is dropped).
    pub timeline_dropped: u64,
}

impl ScaleStats {
    /// Fraction of the parallel region's thread-time lost to the epoch
    /// barrier (idle workers waiting on the slowest shard): `1 − Σbusy /
    /// (threads × Σ epoch_wall)`. 0 when nothing has run yet.
    pub fn barrier_stall_fraction(&self) -> f64 {
        let threads = self.busy.len().max(1) as f64;
        let wall = self.epoch_wall.as_secs_f64() * threads;
        if wall <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.busy.iter().map(|d| d.as_secs_f64()).sum();
        (1.0 - busy / wall).max(0.0)
    }

    /// Render the engine-level counters — plus a per-epoch barrier-stall
    /// gauge over the recorded timeline — as OpenMetrics text (DESIGN.md
    /// §18). The per-epoch series is naturally bounded by
    /// [`TIMELINE_CAP`], so exposition size cannot grow without bound on
    /// long soaks.
    pub fn to_openmetrics(&self) -> String {
        let mut r = asf_stats::openmetrics::Renderer::new();
        r.counter("asf_shard_epochs", "Epochs resolved (barrier executions)", &[], self.epochs);
        r.counter(
            "asf_shard_cross_probes",
            "External probes delivered to shards",
            &[],
            self.cross_probes,
        );
        r.counter(
            "asf_shard_cross_aborts",
            "Transactions aborted by external probes",
            &[],
            self.cross_aborts,
        );
        r.counter(
            "asf_shard_dir_lookups",
            "Inter-cluster directory lookups",
            &[],
            self.dir_lookups,
        );
        r.counter(
            "asf_shard_dir_probes_routed",
            "Directory-routed probe hops",
            &[],
            self.dir_probes_routed,
        );
        r.counter(
            "asf_shard_dir_latency_cycles",
            "Modelled directory latency, accounted cycles",
            &[],
            self.dir_latency_cycles,
        );
        r.gauge(
            "asf_shard_dir_lines",
            "Distinct lines the directory tracks",
            &[],
            self.dir_lines as f64,
        );
        r.gauge(
            "asf_shard_barrier_stall_fraction",
            "Fraction of parallel thread-time lost to the epoch barrier",
            &[],
            self.barrier_stall_fraction(),
        );
        r.counter(
            "asf_shard_timeline_dropped",
            "Epochs past the timeline cap (totals still include them)",
            &[],
            self.timeline_dropped,
        );
        for (i, span) in self.timeline.iter().enumerate() {
            let epoch = i.to_string();
            let wall = span.wall.as_secs_f64() * span.busy.len().max(1) as f64;
            let busy: f64 = span.busy.iter().map(|d| d.as_secs_f64()).sum();
            let stall = if wall > 0.0 { (1.0 - busy / wall).max(0.0) } else { 0.0 };
            r.gauge(
                "asf_shard_epoch_barrier_stall",
                "Per-epoch barrier-stall fraction over the recorded timeline",
                &[("epoch", &epoch)],
                stall,
            );
        }
        r.finish()
    }
}

/// Result of a shard-parallel run.
#[derive(Debug)]
pub struct ShardOutput {
    /// All shards' statistics merged ([`RunStats::merge`]), with `cycles`
    /// overridden to the *maximum* shard cycle count (the shards ran
    /// concurrently in simulated time; summing would double-count it).
    pub stats: RunStats,
    /// Per-shard end-of-run clocks, ascending shard id.
    pub per_shard_cycles: Vec<u64>,
    /// Cross-shard traffic and engine timing.
    pub scale: ScaleStats,
}

/// K machines + the inter-cluster directory, driven in lock-step epochs.
pub struct ShardEngine {
    shards: Vec<Machine>,
    topo: ClusterTopology,
    dir: InterClusterDirectory,
    cfg: ShardConfig,
    /// Parked per-shard log buffers, swapped against each machine's live
    /// outbox at the barrier (no allocation per epoch).
    logs: Vec<EpochLog>,
    scale: ScaleStats,
}

impl ShardEngine {
    /// Build one machine per cluster, each seeing the *global* thread space
    /// (`tid_base`, `system_cores`): shard `s`'s core `i` runs the exact
    /// program and RNG stream that core `s·k + i` of a monolithic machine
    /// would, so sharding changes scheduling, never workload content.
    pub fn new(workload: &dyn Workload, base: SimConfig, cfg: ShardConfig) -> ShardEngine {
        assert!(cfg.epoch_cycles > 0, "epoch length must be positive");
        assert!(cfg.worker_threads > 0, "need at least one worker thread");
        let topo = if cfg.total_cores <= cfg.cores_per_cluster {
            ClusterTopology::new(1, cfg.total_cores)
        } else {
            assert!(
                cfg.total_cores.is_multiple_of(cfg.cores_per_cluster),
                "total cores must be a multiple of the cluster size"
            );
            ClusterTopology::new(cfg.total_cores / cfg.cores_per_cluster, cfg.cores_per_cluster)
        };
        let shards: Vec<Machine> = (0..topo.clusters)
            .map(|s| {
                let mut c = base;
                c.machine.cores = topo.cores_per_cluster;
                c.tid_base = topo.base_core(s);
                c.system_cores = topo.total_cores();
                let mut m = Machine::new(workload, c);
                m.enable_epoch_log();
                m
            })
            .collect();
        let logs = (0..topo.clusters).map(|_| EpochLog::default()).collect();
        let workers = cfg.worker_threads.min(topo.clusters);
        ShardEngine {
            shards,
            topo,
            dir: InterClusterDirectory::default(),
            cfg,
            logs,
            scale: ScaleStats { busy: vec![Duration::ZERO; workers], ..ScaleStats::default() },
        }
    }

    /// Cluster layout in use.
    pub fn topology(&self) -> ClusterTopology {
        self.topo
    }

    /// Run every shard to completion, epoch by epoch.
    pub fn try_run(mut self) -> Result<ShardOutput, SimError> {
        // Next epoch boundary: one past the earliest scheduled event
        // anywhere, rounded up — empty epochs are skipped entirely, and
        // the boundary is a pure function of simulated state, so every
        // thread count computes the same schedule.
        while let Some(next) = self.shards.iter().filter_map(Machine::next_event_clock).min() {
            let until = (next / self.cfg.epoch_cycles + 1) * self.cfg.epoch_cycles;
            let busy_before = self.scale.busy.clone();
            let wall_before = self.scale.epoch_wall;
            self.run_epoch_all(until)?;
            let t0 = Instant::now();
            self.resolve_barrier(until);
            let barrier = t0.elapsed();
            self.scale.barrier_wall += barrier;
            self.scale.epochs += 1;
            if self.scale.timeline.len() < TIMELINE_CAP {
                let busy = self
                    .scale
                    .busy
                    .iter()
                    .zip(&busy_before)
                    .map(|(now, before)| now.saturating_sub(*before))
                    .collect();
                self.scale.timeline.push(EpochSpan {
                    until,
                    wall: self.scale.epoch_wall.saturating_sub(wall_before),
                    barrier,
                    busy,
                });
            } else {
                self.scale.timeline_dropped += 1;
            }
        }
        // Finalize each shard (no events left — this only folds counters).
        let mut outs: Vec<SimOutput> = Vec::with_capacity(self.shards.len());
        for m in &mut self.shards {
            outs.push(m.finish()?);
        }
        let per_shard_cycles: Vec<u64> = outs.iter().map(|o| o.stats.cycles).collect();
        let mut stats = RunStats::default();
        for o in &outs {
            stats.merge(&o.stats);
        }
        stats.cycles = per_shard_cycles.iter().copied().max().unwrap_or(0);
        self.scale.dir_lookups = self.dir.lookups;
        self.scale.dir_probes_routed = self.dir.probes_routed;
        self.scale.dir_latency_cycles = self.dir.latency_cycles;
        self.scale.dir_lines = self.dir.lines();
        Ok(ShardOutput { stats, per_shard_cycles, scale: self.scale })
    }

    /// Drive every shard to `until`, on 1..N worker threads. Shards share
    /// no state during this phase, so the thread count is invisible to the
    /// simulation; errors (watchdog trips) are reported for the lowest
    /// shard id, again independent of threading.
    fn run_epoch_all(&mut self, until: u64) -> Result<(), SimError> {
        let workers = self.scale.busy.len();
        let t0 = Instant::now();
        if workers <= 1 {
            let mut first_err = None;
            for m in &mut self.shards {
                if let Err(e) = m.run_epoch(until) {
                    first_err = first_err.or(Some(e));
                }
            }
            let dt = t0.elapsed();
            self.scale.busy[0] += dt;
            self.scale.epoch_wall += dt;
            return match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            };
        }
        // Partition &mut shards into per-worker buckets: shard s → worker
        // s % workers, a fixed map so shard-to-thread placement never
        // depends on runtime timing.
        let mut buckets: Vec<Vec<(usize, &mut Machine)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (s, m) in self.shards.iter_mut().enumerate() {
            buckets[s % workers].push((s, m));
        }
        let mut results: Vec<(usize, Result<(), SimError>)> = Vec::new();
        let mut busy: Vec<(usize, Duration)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .map(|(w, bucket)| {
                    scope.spawn(move || {
                        let t0 = Instant::now();
                        let rs: Vec<(usize, Result<(), SimError>)> = bucket
                            .into_iter()
                            .map(|(s, m)| (s, m.run_epoch(until).map(|_| ())))
                            .collect();
                        (w, rs, t0.elapsed())
                    })
                })
                .collect();
            for h in handles {
                let (w, rs, dt) = h.join().expect("shard worker panicked");
                busy.push((w, dt));
                results.extend(rs);
            }
        });
        self.scale.epoch_wall += t0.elapsed();
        for (w, dt) in busy {
            self.scale.busy[w] += dt;
        }
        // Lowest shard id wins the error report, whatever thread ran it.
        results.sort_by_key(|(s, _)| *s);
        for (_, r) in results {
            r?;
        }
        Ok(())
    }

    /// The single-threaded epoch barrier: drain outboxes, feed the
    /// directory, route committed write footprints as external probes.
    /// Canonical order throughout — ascending shard id, then each shard's
    /// own event order, then ascending target cluster — so the result is a
    /// pure function of the (deterministic) per-shard logs.
    fn resolve_barrier(&mut self, until: u64) {
        let mut logs = std::mem::take(&mut self.logs);
        for (s, log) in logs.iter_mut().enumerate() {
            self.shards[s].swap_epoch_log(log);
        }
        // Pass 1: register this epoch's new speculative lines *before* any
        // routing, so a commit in shard 0 sees speculative state shard 2
        // acquired in the same epoch (conservative ordering: the directory
        // may over-route, never under-route).
        for (s, log) in logs.iter().enumerate() {
            for &line in &log.spec_touched {
                self.dir.note(line, s);
            }
        }
        // Pass 2: route committed write footprints.
        for (s, log) in logs.iter().enumerate() {
            for rec in &log.commits {
                for &(line, wbits) in &log.commit_lines[rec.start..rec.start + rec.len] {
                    let mut targets = self.dir.route(line, s, self.cfg.dir_latency);
                    while targets != 0 {
                        let t = targets.trailing_zeros() as usize;
                        targets &= targets - 1;
                        self.scale.cross_probes += 1;
                        self.scale.cross_aborts +=
                            u64::from(self.shards[t].apply_external_probe(line, wbits, until));
                    }
                }
            }
        }
        for log in logs.iter_mut() {
            log.clear();
        }
        self.logs = logs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
    use asf_core::detector::DetectorKind;
    use asf_mem::addr::Addr;

    fn contention_workload(cores: usize) -> ScriptedWorkload {
        // Every core increments a shared counter a few times, plus touches
        // a private line — enough traffic to exercise commits, conflicts,
        // and retries.
        let scripts = (0..cores)
            .map(|tid| {
                (0..4)
                    .map(|i| {
                        WorkItem::Tx(TxAttempt::new(vec![
                            TxOp::Read { addr: Addr(0x1000), size: 8 },
                            TxOp::Write { addr: Addr(0x1000), size: 8, value: (tid + i) as u64 },
                            TxOp::Write {
                                addr: Addr(0x8000 + tid as u64 * 64),
                                size: 8,
                                value: i as u64,
                            },
                        ]))
                    })
                    .collect()
            })
            .collect();
        ScriptedWorkload { name: "contention", scripts }
    }

    #[test]
    fn single_shard_matches_plain_machine() {
        let w = contention_workload(4);
        let base = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 7);
        let mut plain_cfg = base;
        plain_cfg.machine.cores = 4;
        let plain = Machine::try_run(&w, plain_cfg).expect("plain run");
        let sharded = ShardEngine::new(
            &w,
            base,
            ShardConfig {
                total_cores: 4,
                cores_per_cluster: 4,
                epoch_cycles: 256,
                worker_threads: 1,
                dir_latency: DirLatency::opteron_like(),
            },
        )
        .try_run()
        .expect("sharded run");
        assert_eq!(plain.stats, sharded.stats, "one shard must equal the plain machine");
        assert_eq!(sharded.scale.cross_probes, 0, "a single cluster routes nothing");
    }

    #[test]
    fn worker_thread_count_is_invisible() {
        let w = contention_workload(8);
        let base = SimConfig::paper_seeded(DetectorKind::Baseline, 11);
        let cfg = ShardConfig {
            total_cores: 8,
            cores_per_cluster: 2,
            epoch_cycles: 512,
            worker_threads: 1,
            dir_latency: DirLatency::opteron_like(),
        };
        let seq = ShardEngine::new(&w, base, cfg).try_run().expect("seq");
        let par = ShardEngine::new(&w, base, ShardConfig { worker_threads: 4, ..cfg })
            .try_run()
            .expect("par");
        assert_eq!(seq.stats, par.stats, "threads must be bit-invisible");
        assert_eq!(seq.per_shard_cycles, par.per_shard_cycles);
        assert_eq!(seq.scale.epochs, par.scale.epochs);
        assert_eq!(seq.scale.cross_probes, par.scale.cross_probes);
        assert_eq!(seq.scale.cross_aborts, par.scale.cross_aborts);
        assert_eq!(seq.scale.dir_lookups, par.scale.dir_lookups);
        // The timeline records every epoch (well under the cap here), and
        // its `until` sequence — pure simulated state — matches too.
        assert_eq!(seq.scale.timeline.len(), seq.scale.epochs as usize);
        assert_eq!(seq.scale.timeline_dropped, 0);
        let seq_untils: Vec<u64> = seq.scale.timeline.iter().map(|e| e.until).collect();
        let par_untils: Vec<u64> = par.scale.timeline.iter().map(|e| e.until).collect();
        assert_eq!(seq_untils, par_untils);
    }

    #[test]
    fn cross_shard_commit_aborts_remote_speculative_reader() {
        // Shard 0 (core 0) commits a write to line L early; shard 1
        // (core 1) holds a speculative read of L across the epoch boundary
        // inside a long transaction. The barrier must route the committed
        // footprint and abort the reader with a *true* WAR conflict.
        let scripts = vec![
            vec![WorkItem::Tx(TxAttempt::new(vec![TxOp::Write {
                addr: Addr(0x1000),
                size: 8,
                value: 1,
            }]))],
            vec![WorkItem::Tx(TxAttempt::new(vec![
                TxOp::Read { addr: Addr(0x1000), size: 8 },
                TxOp::Compute { cycles: 1_000_000 },
            ]))],
        ];
        let w = ScriptedWorkload { name: "cross", scripts };
        let base = SimConfig::paper_seeded(DetectorKind::SubBlock(4), 3);
        let out = ShardEngine::new(
            &w,
            base,
            ShardConfig {
                total_cores: 2,
                cores_per_cluster: 1,
                epoch_cycles: 4096,
                worker_threads: 1,
                dir_latency: DirLatency::opteron_like(),
            },
        )
        .try_run()
        .expect("run");
        assert_eq!(out.scale.cross_aborts, 1, "the remote reader must abort once");
        assert!(out.scale.cross_probes >= 1);
        assert!(out.scale.dir_lookups >= 1);
        assert_eq!(out.stats.tx_committed, 2, "both transactions commit in the end");
        assert!(out.stats.tx_aborted >= 1);
        // Accounted directory latency: every lookup pays, every hop pays.
        assert!(out.scale.dir_latency_cycles >= out.scale.dir_lookups * 60);
    }

    #[test]
    fn barrier_stall_fraction_is_bounded() {
        let s = ScaleStats::default();
        assert_eq!(s.barrier_stall_fraction(), 0.0);
        let s = ScaleStats {
            busy: vec![Duration::from_millis(30), Duration::from_millis(10)],
            epoch_wall: Duration::from_millis(40),
            ..ScaleStats::default()
        };
        let f = s.barrier_stall_fraction();
        assert!(f > 0.49 && f < 0.51, "2 threads × 40ms wall, 40ms busy → 50%: {f}");
    }

    #[test]
    fn scale_stats_render_as_valid_openmetrics() {
        let s = ScaleStats {
            epochs: 7,
            cross_probes: 12,
            cross_aborts: 3,
            busy: vec![Duration::from_millis(30), Duration::from_millis(10)],
            epoch_wall: Duration::from_millis(40),
            timeline: vec![EpochSpan {
                until: 4096,
                wall: Duration::from_millis(40),
                barrier: Duration::from_millis(2),
                busy: vec![Duration::from_millis(30), Duration::from_millis(10)],
            }],
            ..ScaleStats::default()
        };
        let text = s.to_openmetrics();
        let exp = asf_stats::openmetrics::parse_exposition(&text).expect("parses");
        assert_eq!(exp.value("asf_shard_epochs_total", &[]), Some(7.0));
        let stall = exp
            .value("asf_shard_epoch_barrier_stall", &[("epoch", "0")])
            .expect("per-epoch stall gauge present");
        assert!(stall > 0.49 && stall < 0.51, "{stall}");
    }
}
