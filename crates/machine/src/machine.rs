//! The simulator engine: scheduler, coherence fabric, HTM execution.

use crate::arena::ProbeArena;
use crate::error::{CoreReport, ProgressReport, SimError};
use crate::fault::FaultPlan;
use crate::hier::{CoreCaches, LineMeta};
use crate::obs::{Obs, ObsConfig, ObsReport, Phases};
use crate::sched::CalendarQueue;
use crate::trace::{RingTrace, TraceEvent, TraceSink};
use crate::txprog::{ThreadProgram, TxAttempt, TxOp, WorkItem, Workload};
use crate::value::{GlobalMemory, ReadLog, WriteSet};
use asf_core::backoff::ExponentialBackoff;
use asf_core::detector::{DetectorKind, ProbeKind, ProbeOutcome};
use asf_core::progress::{scaled_window, ProgressMonitor};
use asf_core::signature::Signature;
use asf_core::spec::SpecState;
use asf_mem::addr::{Access, Addr, CoreId, LineAddr};
use asf_mem::config::MachineConfig;
use asf_mem::intern::{LineId, LineInterner};
use asf_mem::latency::AccessLevel;
use asf_mem::mask::AccessMask;
use asf_mem::moesi::{CoherenceKind, MoesiState};
use asf_mem::rng::SimRng;
use asf_stats::metrics::PhaseId;
use asf_stats::run::{AbortCause, RunStats};
use std::time::Instant;

/// Which transaction survives a detected conflict.
///
/// ASF (and the paper) use requester-wins: the core whose probe detects the
/// conflict proceeds and the probed transaction aborts. Victim-wins is the
/// opposite ablation — the requester aborts its own transaction and retries
/// — exposing how much of the results depend on the resolution policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResolutionPolicy {
    /// The probing core wins; the probed transaction aborts (ASF).
    RequesterWins,
    /// The probed transaction survives; the requester aborts (ablation).
    VictimWins,
}

/// Adaptive sub-blocking (future-work extension): lines start at *line*
/// granularity (2 state bits) and are promoted to `fine` sub-blocks only
/// after `promote_after` false conflicts hit them — a predictor-table
/// design that spends the paper's §IV-E state bits only where false
/// sharing actually occurs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AdaptiveConfig {
    /// False conflicts on a line before it is promoted.
    pub promote_after: u32,
    /// Sub-block count used for promoted lines (power of two in 2..=64).
    pub fine: usize,
}

impl AdaptiveConfig {
    /// The configuration used by the `adaptive` experiment: promote after
    /// two false conflicts, track promoted lines at 8 sub-blocks.
    pub fn standard() -> AdaptiveConfig {
        AdaptiveConfig { promote_after: 2, fine: 8 }
    }
}

/// How coherence probes find their targets.
///
/// Opteron-era AMD systems broadcast probes over HyperTransport; later
/// parts added a probe filter ("HT Assist") that tracks which caches may
/// hold a line and probes only those. The filter is conservative (stale
/// entries from silent evictions are only cleaned by invalidations), so
/// every outcome is identical to broadcast — only
/// [`asf_stats::run::RunStats::probe_targets`] shrinks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FabricKind {
    /// Probe every other core (the paper's setting).
    Broadcast,
    /// Probe only cores the directory says may hold the line (or retain
    /// speculative metadata for it).
    ProbeFilter,
}

/// Signature-based conflict detection (LogTM-SE style, paper §II): each
/// core summarises its read and write sets in Bloom filters over line
/// addresses. Footprints become unbounded (no capacity aborts), but hash
/// aliasing adds a new source of false conflicts, and detection is
/// line-granular (no sub-blocking).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SignatureConfig {
    /// Filter size in bits (per set, per core).
    pub bits: usize,
    /// Number of partitioned hash functions.
    pub hashes: u32,
}

impl SignatureConfig {
    /// The LogTM-SE hardware-typical configuration (1024 bits, 4 hashes).
    pub fn logtm_se() -> SignatureConfig {
        SignatureConfig { bits: 1024, hashes: 4 }
    }
}

/// Full configuration of one simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Physical machine (cores, caches, latencies).
    pub machine: MachineConfig,
    /// Conflict-detection system under test.
    pub detector: DetectorKind,
    /// Base window of the software exponential backoff, in cycles.
    pub backoff_base: u64,
    /// Exponent cap of the backoff window.
    pub backoff_cap_exp: u32,
    /// Consecutive aborts after which a transaction falls back to the
    /// global software lock.
    pub max_retries: u32,
    /// Model the dirty-state mechanism (§IV-C). Disabling it is an ablation
    /// that reproduces the Figure 6 atomicity hazards, visible as
    /// `isolation_violations` in the run statistics.
    pub enable_dirty: bool,
    /// Conflict-resolution policy (ASF: requester wins).
    pub resolution: ResolutionPolicy,
    /// Probe-target selection (broadcast vs probe filter); outcomes are
    /// identical, probe traffic differs.
    pub fabric: FabricKind,
    /// Signature-based (LogTM-SE style) conflict detection instead of the
    /// per-line/per-sub-block state machines. When set, `detector` is only
    /// used for the oracle's false/true classification granularity and
    /// conflicts come from Bloom-filter membership; speculative lines are
    /// not pinned (no capacity aborts).
    pub signatures: Option<SignatureConfig>,
    /// Coherence protocol family: MOESI (the paper) or MESI (ablation —
    /// dirty lines write back instead of staying Owned, shifting some data
    /// supplies from remote caches to the local hierarchy).
    pub coherence: CoherenceKind,
    /// Adaptive sub-blocking: when set, `detector` gives the *cold* (default
    /// line-granularity is `DetectorKind::Baseline`) granularity and lines
    /// with repeated false conflicts are promoted to `adaptive.fine`
    /// sub-blocks. Dirty/piggy-back machinery follows the per-line
    /// granularity automatically (all state is byte-exact).
    pub adaptive: Option<AdaptiveConfig>,
    /// DPTM-style WAR speculation (the related-work mode of paper §II):
    /// invalidating probes that would only WAR-conflict do *not* abort the
    /// victim; instead the victim validates its read values at commit and
    /// aborts on mismatch. Handles WAR false conflicts only — RAW and WAW
    /// behave as in the baseline — and imposes lazy detection, exactly the
    /// shortcomings the paper describes. Requires requester-wins.
    pub war_speculation: bool,
    /// Uniform per-access latency jitter in cycles (0 = the paper's fixed
    /// Table II latencies). Drawn from the core's deterministic RNG, so
    /// runs remain reproducible; useful for checking that results are not
    /// artifacts of perfectly regular timing.
    pub latency_jitter: u64,
    /// Master seed; every core derives an independent stream.
    pub seed: u64,
    /// Watchdog: fail the run (typed [`SimError::Watchdog`] from
    /// [`Machine::try_run_to_completion`], panic from the infallible
    /// [`Machine::run_to_completion`]) if the scheduler exceeds this many
    /// steps — guards the test suite against livelock regressions.
    pub max_steps: u64,
    /// Deterministic fault-injection plan. The default
    /// ([`FaultPlan::none`]) disables every class and is bit-transparent:
    /// no RNG draw, no timing change, no statistic moves (the golden-stats
    /// fence pins this). Injection decisions come from a dedicated RNG
    /// stream derived from `seed`, never from the cores' streams.
    pub faults: FaultPlan,
    /// Disable the exact residency index and walk every fabric-selected
    /// core on each probe, as pre-index builds did. Outcomes and statistics
    /// must be identical either way (the index only skips provably-empty
    /// cache walks); equivalence tests flip this to prove it.
    pub exhaustive_probe_walk: bool,
    /// Cross-check the residency index against a full walk of every core's
    /// caches on *every* probe (instead of the periodic debug-build
    /// sampling). Slow; meant for the property/soak suites, where a stale
    /// or leaked index entry should fail loudly rather than silently skip a
    /// conflict check.
    pub verify_residency: bool,
    /// Disable the speculative-state directory for conflict *resolution*
    /// and walk each candidate victim's L1 + retained table per probe, as
    /// pre-directory builds did. Outcomes and statistics must be identical
    /// either way (the directory is a read-path index over the same
    /// metadata); equivalence tests flip this to prove it.
    pub exhaustive_spec_walk: bool,
    /// Cross-check the speculative-state directory against the per-core
    /// ground truth (live L1 metadata + retained table) on *every* probe,
    /// mirroring `verify_residency`. On in every property suite; sampled in
    /// debug builds otherwise.
    pub verify_spec_directory: bool,
    /// Resolve probe conflicts victim-by-victim from a per-probe snapshot
    /// (the pre-batching code path) instead of the default two-phase
    /// batched pass over the spec-directory row. Outcomes and statistics
    /// must be identical either way — the batched pass evaluates the same
    /// per-victim checks against the same state, it only hoists the
    /// mask-coarsening and the row lookup out of the victim loop;
    /// equivalence tests flip this to prove it.
    pub sequential_probe_resolution: bool,
    /// First *global* thread id of this machine's cores. 0 for a
    /// standalone machine; the shard-parallel engine sets it to the
    /// shard's base core so workload spawning and per-core RNG stream
    /// derivation see system-wide ids — a shard's cores behave exactly
    /// like the same-numbered cores of one big machine.
    pub tid_base: usize,
    /// Total cores of the *system* this machine is part of; 0 means "this
    /// machine is the whole system" (`machine.cores`). Drives workload
    /// spawning (`threads` argument) and the core-count scaling of the
    /// forward-progress watchdog thresholds.
    pub system_cores: usize,
}

impl SimConfig {
    /// Paper-standard configuration for a given detector.
    pub fn paper(detector: DetectorKind) -> SimConfig {
        SimConfig {
            machine: MachineConfig::opteron_8core(),
            detector,
            backoff_base: 64,
            backoff_cap_exp: 10,
            max_retries: 64,
            enable_dirty: true,
            resolution: ResolutionPolicy::RequesterWins,
            fabric: FabricKind::Broadcast,
            coherence: CoherenceKind::Moesi,
            signatures: None,
            adaptive: None,
            war_speculation: false,
            latency_jitter: 0,
            seed: 0x05ee_da5f_2013,
            max_steps: 2_000_000_000,
            faults: FaultPlan::none(),
            exhaustive_probe_walk: false,
            verify_residency: false,
            exhaustive_spec_walk: false,
            verify_spec_directory: false,
            sequential_probe_resolution: false,
            tid_base: 0,
            system_cores: 0,
        }
    }

    /// Same, with an explicit seed.
    pub fn paper_seeded(detector: DetectorKind, seed: u64) -> SimConfig {
        SimConfig { seed, ..SimConfig::paper(detector) }
    }

    /// Total cores of the system this configuration belongs to (the local
    /// machine when `system_cores` is unset).
    pub fn system_total(&self) -> usize {
        if self.system_cores == 0 {
            self.machine.cores
        } else {
            self.system_cores
        }
    }
}

/// What a finished run returns.
#[derive(Debug)]
pub struct SimOutput {
    /// All measurements.
    pub stats: RunStats,
    /// Final committed memory (tests verify serializability against it).
    pub memory: GlobalMemory,
    /// The event log, when tracing was enabled before the run.
    pub trace: Option<RingTrace>,
    /// Adaptive mode: lines promoted to fine-grained tracking (0 otherwise).
    pub promoted_lines: usize,
    /// The observability report, when
    /// [`Machine::enable_observability`] was called before the run.
    /// Deliberately *outside* [`RunStats`]: phase timings are wall-clock
    /// and therefore nondeterministic, and the whole layer is contracted
    /// never to perturb the digest-pinned statistics.
    pub obs: Option<ObsReport>,
}

/// Control state of one core.
#[derive(Debug)]
enum CoreState {
    /// Ready to fetch the next work item. (There is deliberately no
    /// `Compute` state: a compute work item advances the core's clock at
    /// dispatch time — the event-ordered scheduler re-queues the core at
    /// the finish cycle, so a dedicated "advance the clock" turn would be
    /// pure double dispatch.)
    Idle,
    /// Executing a transaction attempt.
    InTx { attempt: TxAttempt, pc: usize },
    /// Waiting out backoff before retrying `attempt`.
    Backoff { until: u64, attempt: TxAttempt },
    /// Spinning on the global fallback lock.
    AwaitLock { attempt: TxAttempt },
    /// Holding the fallback lock, executing `attempt` non-transactionally.
    Fallback { attempt: TxAttempt, pc: usize },
    /// Executing a non-transactional op sequence.
    Plain { ops: Vec<TxOp>, pc: usize },
    /// Program exhausted.
    Done,
}

struct Core {
    clock: u64,
    caches: CoreCaches,
    program: Box<dyn ThreadProgram>,
    state: CoreState,
    pending: Option<WorkItem>,
    writeset: WriteSet,
    backoff: ExponentialBackoff,
    rng: SimRng,
    /// Set (with its cause) when a remote probe or self-detected condition
    /// aborted the running attempt; consumed at the core's next step.
    abort_pending: Option<AbortCause>,
    consec_aborts: u32,
    /// Signature mode: Bloom summaries of the running attempt's sets.
    read_sig: Option<Signature>,
    write_sig: Option<Signature>,
    /// DPTM mode: byte values observed by this attempt's reads
    /// (generation-tagged: cleared in O(1) at commit/abort).
    read_log: ReadLog,
    /// DPTM mode: a WAR probe was speculated through; commit must validate.
    needs_validation: bool,
}

impl Core {
    fn in_running_tx(&self) -> bool {
        matches!(self.state, CoreState::InTx { .. }) && self.abort_pending.is_none()
    }
}

/// Result of broadcasting one probe.
#[derive(Debug, Default, Clone, Copy)]
struct ProbeSummary {
    others_had_copy: bool,
    owner_supplied: bool,
    piggyback: AccessMask,
}

/// One committed transaction's write footprint in an [`EpochLog`]: a range
/// of `(line, write mask)` entries in the log's flat `commit_lines` store
/// (flattened so a million-commit epoch makes zero per-commit allocations).
#[derive(Clone, Copy, Debug)]
pub struct CommitRecord {
    /// Commit cycle (shard-local clock).
    pub cycle: u64,
    /// Committing core (machine-local id).
    pub core: usize,
    /// First entry in [`EpochLog::commit_lines`].
    pub start: usize,
    /// Number of written lines.
    pub len: usize,
}

/// Per-epoch outbox a machine fills when epoch logging is enabled
/// ([`Machine::enable_epoch_log`]) — the raw material of the shard engine's
/// epoch barrier (DESIGN.md §15).
///
/// Two streams, both in exact event order (the scheduler's ascending
/// `(clock, core)` order, which makes barrier resolution deterministic):
/// lines that *gained speculative state* (feeding the inter-cluster
/// directory's conservative sharer map) and committed write footprints
/// (routed to sharing clusters as external probes). Logging is gated on
/// one hoisted bool, records no RNG draws and no timing, and is therefore
/// bit-transparent to every statistic — the golden fence pins this.
#[derive(Debug, Default)]
pub struct EpochLog {
    /// Lines whose speculative state went empty→present this epoch, in
    /// event order (duplicates possible across attempts; the directory
    /// insert is idempotent).
    pub spec_touched: Vec<LineAddr>,
    /// Commit footprints, in commit order (non-decreasing cycle).
    pub commits: Vec<CommitRecord>,
    /// Flat `(line, write-mask bits)` store the commit records index.
    pub commit_lines: Vec<(LineAddr, u64)>,
}

impl EpochLog {
    /// Forget all records, keeping buffer capacity for the next epoch.
    pub fn clear(&mut self) {
        self.spec_touched.clear();
        self.commits.clear();
        self.commit_lines.clear();
    }

    /// Nothing recorded this epoch?
    pub fn is_empty(&self) -> bool {
        self.spec_touched.is_empty() && self.commits.is_empty()
    }
}

/// The simulator.
pub struct Machine {
    cfg: SimConfig,
    cores: Vec<Core>,
    memory: GlobalMemory,
    stats: RunStats,
    fallback_owner: Option<usize>,
    steps: u64,
    trace: Option<RingTrace>,
    /// Streaming timeline sink (Chrome trace, or anything implementing
    /// [`TraceSink`]); fed the same events as `trace`.
    sink: Option<Box<dyn TraceSink>>,
    /// The observability layer (metrics registry + phase profiler);
    /// `None` unless [`Machine::enable_observability`] was called.
    obs: Option<Box<Obs>>,
    /// `obs.is_some()`, hoisted: like `faults_on`, every instrumentation
    /// site gates on this bool so the disabled layer costs one predictable
    /// branch and the run stays bit-identical.
    obs_on: bool,
    /// Line-address intern table: every per-line global structure below is
    /// a dense array indexed by [`LineId`]. One hash probe per line
    /// fragment at access time replaces one per structure per touch.
    intern: LineInterner,
    /// Adaptive mode: per-line false-conflict heat (the predictor table),
    /// indexed by line id.
    line_heat: Vec<u32>,
    /// Probe-filter directory: cores that may hold each line (bitmask),
    /// indexed by line id.
    ///
    /// Distinct from `residency`: the directory models HT-Assist hardware —
    /// conservative (stale entries survive silent evictions) and consulted
    /// only under [`FabricKind::ProbeFilter`], where it defines the
    /// *accounted* probe traffic. The residency index is a simulator-side
    /// exactness structure that never changes any reported number.
    directory: Vec<u64>,
    /// Exact residency index, indexed by line id: bit `v` is set iff core
    /// `v` holds the line in L1, L2, or L3, or retains speculative metadata
    /// for it. Maintained at every fill, eviction, invalidation,
    /// retained-metadata insert/drop, and commit/abort teardown; probes
    /// walk only these cores (plus, in signature mode, every
    /// in-transaction core — Bloom state is decoupled from the caches).
    /// Purely an optimisation: broadcast *accounting* still charges all
    /// remote cores, so stats stay bit-identical.
    residency: Vec<u64>,
    /// Event-ordered run queue: one `(clock, core)` entry per non-`Done`
    /// core, popped in exactly the `(clock, core_id)` order the old
    /// linear `min_by_key` scan (and the binary heap that replaced it)
    /// produced. Valid because a core's clock only ever changes during its
    /// own turn, and never moves backwards — the calendar queue's
    /// monotone-push contract.
    runq: CalendarQueue,
    /// Global speculative-state directory, struct-of-arrays: bit `v` of
    /// `spec_cores[lid]` iff core `v` holds live-or-retained speculative
    /// state for the line, with its raw byte `(read, write)` masks at
    /// `spec_masks[lid * n_cores + v]`. Written only on a line's
    /// speculative mask growth ([`Self::mark_spec`]) and cleared
    /// column-wise at commit/abort teardown — every other metadata
    /// movement (invalidate with retention, signature-mode L1 eviction to
    /// `retained`, fold-back on refetch) preserves the per-(line, core)
    /// union, so no update is needed there. Purely a read-path index: all
    /// reported statistics are bit-identical with `exhaustive_spec_walk`.
    spec_cores: Vec<u64>,
    /// Per-(line, core) raw `(read_bits, write_bits)` masks; see
    /// [`Machine::spec_cores`]. Dirty bits are deliberately absent: they
    /// are local-only state, invisible to remote conflict checks.
    spec_masks: Vec<(u64, u64)>,
    /// Pooled scratch buffers for the probe and teardown hot paths.
    arena: ProbeArena,
    /// Fault-injection RNG: a dedicated stream derived from the seed, so
    /// enabling faults never perturbs the cores' own streams (and a
    /// zero-rate plan never draws from this one either).
    fault_rng: SimRng,
    /// `cfg.faults.enabled()`, hoisted: every injection site is gated on
    /// this bool so the disabled layer costs one predictable branch.
    faults_on: bool,
    /// Per-core end cycle of the current capacity-pressure spike window
    /// (way pinning); 0 = no window.
    spike_until: Vec<u64>,
    /// Forward-progress bookkeeping (commit age, abort streaks) feeding
    /// the watchdog's livelock/starvation verdict. Passive: no RNG, no
    /// scheduling influence.
    monitor: ProgressMonitor,
    /// Epoch outbox for the shard-parallel engine; filled only when
    /// `epoch_on` (hoisted gate, like `faults_on`), so standalone runs pay
    /// one predictable branch and stay bit-identical.
    epoch: EpochLog,
    /// [`Machine::enable_epoch_log`] was called.
    epoch_on: bool,
    /// Shared progress snapshot, refreshed every
    /// [`crate::snapshot::PUBLISH_EVERY_STEPS`] steps when attached
    /// (hoisted-`Option` pattern like `faults_on`): the serve layer's
    /// status endpoint reads it from another thread. Publishing copies
    /// already-maintained counters into relaxed atomics and is therefore
    /// bit-transparent to the run.
    progress_probe: Option<std::sync::Arc<crate::snapshot::ProgressProbe>>,

    /// Cooperative cancellation flag, checked at the probe-publish cadence
    /// (see [`Machine::attach_cancel_token`]). `None` costs one branch per
    /// publish window; an attached-but-unfired token is bit-transparent.
    cancel: Option<std::sync::Arc<crate::snapshot::CancelToken>>,
}

/// RNG stream id for fault injection; far outside the per-core streams
/// (`1..=cores`, cores ≤ 64).
const FAULT_RNG_STREAM: u64 = 0xFA17_0001;

impl Machine {
    /// Build a machine running `workload` on every core.
    pub fn new(workload: &dyn Workload, cfg: SimConfig) -> Machine {
        cfg.detector.validate().expect("invalid detector configuration");
        assert!(
            !(cfg.war_speculation && cfg.resolution == ResolutionPolicy::VictimWins),
            "WAR speculation requires requester-wins resolution"
        );
        assert!(
            cfg.fabric == FabricKind::Broadcast || cfg.machine.cores <= 64,
            "the probe-filter directory supports at most 64 cores"
        );
        assert!(
            !(cfg.signatures.is_some() && (cfg.adaptive.is_some() || cfg.war_speculation)),
            "signature detection does not compose with adaptive or WAR-speculation modes"
        );
        assert!(
            !(cfg.signatures.is_some() && cfg.resolution == ResolutionPolicy::VictimWins),
            "signature detection is implemented for requester-wins only"
        );
        if let Some(a) = cfg.adaptive {
            DetectorKind::SubBlock(a.fine)
                .validate()
                .expect("invalid adaptive fine granularity");
            assert!(a.promote_after >= 1, "promotion threshold must be positive");
        }
        assert!(cfg.machine.cores <= 64, "the residency index supports at most 64 cores");
        let n = cfg.machine.cores;
        // Shard-parallel support: cores identify as `tid_base + local` out
        // of `system_total()` threads, and RNG streams derive from the
        // *global* id — so shard `s`'s core `i` runs the identical program
        // on the identical stream as core `s*k + i` of one big machine.
        // Standalone machines have `tid_base = 0`, `system = n`: exactly
        // the old behaviour, bit for bit.
        let system = cfg.system_total();
        let cores = (0..n)
            .map(|tid| Core {
                clock: 0,
                caches: CoreCaches::new(&cfg.machine),
                program: workload.spawn(cfg.tid_base + tid, system, cfg.seed),
                state: CoreState::Idle,
                pending: None,
                writeset: WriteSet::default(),
                backoff: ExponentialBackoff::new(cfg.backoff_base, cfg.backoff_cap_exp),
                rng: SimRng::derive(cfg.seed, (cfg.tid_base + tid) as u64 + 1),
                abort_pending: None,
                consec_aborts: 0,
                read_sig: cfg.signatures.map(|sc| Signature::new(sc.bits, sc.hashes)),
                write_sig: cfg.signatures.map(|sc| Signature::new(sc.bits, sc.hashes)),
                read_log: ReadLog::default(),
                needs_validation: false,
            })
            .collect();
        // All cores start at clock 0; ties pop in core-id order, the same
        // order the linear scan used.
        let mut runq = CalendarQueue::new();
        for i in 0..n {
            runq.push(0, i);
        }
        Machine {
            cfg,
            cores,
            memory: GlobalMemory::new(),
            stats: RunStats::default(),
            fallback_owner: None,
            steps: 0,
            trace: None,
            sink: None,
            obs: None,
            obs_on: false,
            intern: LineInterner::new(),
            line_heat: Vec::new(),
            directory: Vec::new(),
            residency: Vec::new(),
            runq,
            spec_cores: Vec::new(),
            spec_masks: Vec::new(),
            arena: ProbeArena::new(),
            fault_rng: SimRng::derive(cfg.seed, FAULT_RNG_STREAM + cfg.tid_base as u64),
            faults_on: cfg.faults.enabled(),
            spike_until: vec![0; n],
            monitor: ProgressMonitor::with_system_cores(n, system),
            epoch: EpochLog::default(),
            epoch_on: false,
            progress_probe: None,
            cancel: None,
        }
    }

    /// Intern `line`, growing every dense per-line table on first sight so
    /// all downstream lookups are plain in-bounds array indexing.
    #[inline]
    fn intern_line(&mut self, line: LineAddr) -> LineId {
        let lid = self.intern.intern(line);
        if lid as usize >= self.line_heat.len() {
            self.line_heat.push(0);
            self.directory.push(0);
            self.residency.push(0);
            self.spec_cores.push(0);
            self.spec_masks
                .resize(self.spec_masks.len() + self.cores.len(), (0, 0));
        }
        lid
    }

    // ------------------------------------------------------------------
    // Residency index maintenance
    // ------------------------------------------------------------------

    /// Note that `who` now holds the line somewhere (fill into any level).
    #[inline]
    fn res_add(&mut self, lid: LineId, who: usize) {
        self.residency[lid as usize] |= 1 << who;
    }

    /// `who` may have stopped holding `line`: re-check the ground truth and
    /// clear the bit if the line is gone from every level and the retained
    /// table. (Re-checking keeps the index exact across partial removals —
    /// an L1 eviction of a line still sitting in L2, say.)
    fn res_drop_if_absent(&mut self, line: LineAddr, lid: LineId, who: usize) {
        if self.cores[who].caches.holds(line) {
            return;
        }
        self.residency[lid as usize] &= !(1 << who);
    }

    // ------------------------------------------------------------------
    // Speculative-state directory maintenance
    // ------------------------------------------------------------------

    /// OR `mask` into `who`'s directory column for the line. Called only
    /// when the core's *live* mask actually grows (the caller pre-checks),
    /// so most marks on warm lines skip even the array store.
    #[inline]
    fn spec_dir_mark(&mut self, lid: LineId, who: usize, mask: AccessMask, is_write: bool) {
        self.spec_cores[lid as usize] |= 1 << who;
        let slot = &mut self.spec_masks[lid as usize * self.cores.len() + who];
        if is_write {
            slot.1 |= mask.0;
        } else {
            slot.0 |= mask.0;
        }
    }

    /// Retire `who`'s directory column for the line (commit/abort
    /// teardown).
    #[inline]
    fn spec_dir_clear(&mut self, lid: LineId, who: usize) {
        let row = &mut self.spec_cores[lid as usize];
        if *row & (1 << who) != 0 {
            *row &= !(1 << who);
            self.spec_masks[lid as usize * self.cores.len() + who] = (0, 0);
        }
    }

    /// Probe-filter: note that `who` may now cache the line.
    #[inline]
    fn dir_add(&mut self, lid: LineId, who: usize) {
        if self.cfg.fabric == FabricKind::ProbeFilter {
            self.directory[lid as usize] |= 1 << who;
        }
    }

    /// Cores a probe for the line from `who` must actually *visit*, as a
    /// bitmask walked in ascending core-id order. The walk set is the
    /// fabric's target set narrowed by the exact residency index: a core
    /// holding neither a copy of the line at any level nor retained
    /// speculative metadata for it contributes nothing to conflict
    /// detection, data supply, or coherence updates, so its cache walk is
    /// skipped. Signature (LogTM-SE) detection is the one exception —
    /// Bloom state is decoupled from the caches, so every in-transaction
    /// core stays in the walk set there.
    ///
    /// Accounting is separate (see [`Self::accounted_probe_targets`]):
    /// under broadcast the fabric still pays for all remote cores, and the
    /// probe-filter directory still defines its own (conservative) target
    /// count, so all reported numbers are bit-identical to a full walk.
    fn probe_target_bits(&self, who: usize, lid: LineId) -> u64 {
        let n = self.cores.len();
        let mut bits: u64 = if self.cfg.exhaustive_probe_walk {
            u64::MAX
        } else {
            let res = self.residency[lid as usize];
            if self.cfg.signatures.is_some() {
                let mut b = res;
                for (v, core) in self.cores.iter().enumerate() {
                    if core.in_running_tx() {
                        b |= 1 << v;
                    }
                }
                b
            } else {
                res
            }
        };
        if self.cfg.fabric == FabricKind::ProbeFilter {
            bits &= self.directory[lid as usize];
        }
        if n < 64 {
            bits &= (1 << n) - 1;
        }
        bits & !(1 << who)
    }

    /// Probe targets the *fabric* charges for — what
    /// [`asf_stats::run::RunStats::probe_targets`] counts, independent of
    /// how many cache walks the residency index let us skip.
    #[inline]
    fn accounted_probe_targets(&self, who: usize, lid: LineId) -> u64 {
        match self.cfg.fabric {
            FabricKind::Broadcast => self.cores.len() as u64 - 1,
            FabricKind::ProbeFilter => {
                (self.directory[lid as usize] & !(1 << who)).count_ones() as u64
            }
        }
    }

    /// The detector effective for the line (adaptive mode promotes hot
    /// lines).
    #[inline]
    fn effective_detector(&self, lid: LineId) -> DetectorKind {
        match self.cfg.adaptive {
            None => self.cfg.detector,
            Some(a) => {
                if self.line_heat[lid as usize] >= a.promote_after {
                    DetectorKind::SubBlock(a.fine)
                } else {
                    self.cfg.detector
                }
            }
        }
    }

    /// Adaptive mode: account a false conflict against the line.
    #[inline]
    fn heat_line(&mut self, lid: LineId) {
        if self.cfg.adaptive.is_some() {
            self.line_heat[lid as usize] += 1;
        }
    }

    /// Lines promoted to fine granularity so far (adaptive mode; the
    /// "state bits actually spent" metric of the adaptive experiment).
    pub fn promoted_lines(&self) -> usize {
        match self.cfg.adaptive {
            None => 0,
            Some(a) => self
                .line_heat
                .iter()
                .filter(|&&h| h >= a.promote_after)
                .count(),
        }
    }

    /// Enable event tracing with a ring buffer of `cap` events. Call before
    /// running; the log is returned in [`SimOutput::trace`].
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(RingTrace::new(cap));
    }

    /// Attach a streaming [`TraceSink`] (e.g.
    /// [`crate::trace::ChromeTraceSink`]). The sink sees every event the
    /// ring trace would, as it happens — nothing is dropped. Call before
    /// running; recover the sink with [`Machine::take_trace_sink`] after.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detach the streaming sink installed by [`Machine::set_trace_sink`]
    /// (downcast via [`TraceSink::as_any`] to recover the concrete writer).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Enable the observability layer (DESIGN.md §13): named counters,
    /// cycle-bucketed interval gauges, and (when `cfg.profile`) wall-time
    /// phase histograms. Call before running; the report is returned in
    /// [`SimOutput::obs`]. The layer never touches [`RunStats`], any RNG
    /// stream, or any clock — enabling it is bit-transparent to every
    /// reported statistic.
    pub fn enable_observability(&mut self, cfg: ObsConfig) {
        self.obs = Some(Box::new(Obs::new(cfg)));
        self.obs_on = true;
    }

    /// Attach a shared progress snapshot
    /// ([`crate::snapshot::ProgressProbe`]): the run refreshes it every
    /// [`crate::snapshot::PUBLISH_EVERY_STEPS`] scheduler steps and at
    /// completion, so another thread (the serve layer's status endpoint)
    /// can watch a long simulation without touching it. Bit-transparent:
    /// publishing only copies already-maintained counters into relaxed
    /// atomics.
    pub fn attach_progress_probe(
        &mut self,
        probe: std::sync::Arc<crate::snapshot::ProgressProbe>,
    ) {
        self.progress_probe = Some(probe);
    }

    /// Attach a cooperative cancellation token
    /// ([`crate::snapshot::CancelToken`]). The run checks it every
    /// [`crate::snapshot::PUBLISH_EVERY_STEPS`] scheduler steps — the same
    /// cadence as the progress probe — and, when it finds the token fired,
    /// stops cleanly with [`SimError::Cancelled`] instead of running to
    /// completion. A token that never fires is bit-transparent: the check
    /// is one relaxed load, no RNG, no clock, no scheduling influence.
    pub fn attach_cancel_token(
        &mut self,
        token: std::sync::Arc<crate::snapshot::CancelToken>,
    ) {
        self.cancel = Some(token);
    }

    /// Refresh the attached progress probe, if any.
    fn publish_progress(&self) {
        if let Some(p) = &self.progress_probe {
            p.publish(
                self.steps,
                self.cores.iter().map(|c| c.clock).max().unwrap_or(0),
                self.stats.tx_started,
                self.stats.tx_committed,
                self.stats.tx_aborted,
                &self.monitor,
            );
        }
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(ev);
        }
        if let Some(s) = self.sink.as_mut() {
            s.record(ev);
        }
    }

    // ------------------------------------------------------------------
    // Observability hooks (all no-ops unless `obs_on`)
    // ------------------------------------------------------------------

    /// Start a wall-clock sample if profiling is live. The `Option` is the
    /// gate: disabled runs take one branch, no clock read.
    #[inline]
    fn obs_timer(&self) -> Option<Instant> {
        match &self.obs {
            Some(o) if o.profile => Some(Instant::now()),
            _ => None,
        }
    }

    /// Close a wall-clock sample opened by [`Self::obs_timer`].
    #[inline]
    fn obs_phase(&mut self, t0: Option<Instant>, sel: impl FnOnce(&Phases) -> PhaseId) {
        if let (Some(t0), Some(o)) = (t0, self.obs.as_deref_mut()) {
            let id = sel(&o.ph);
            o.phases.record(id, t0.elapsed());
        }
    }

    /// Run `f` against the live observability state (no-op when disabled).
    #[inline]
    fn obs_with(&mut self, f: impl FnOnce(&mut Obs)) {
        if let Some(o) = self.obs.as_deref_mut() {
            f(o);
        }
    }

    /// Count one detected conflict (and its interval-gauge bucket).
    #[inline]
    fn obs_conflict(&mut self, now: u64, is_true: bool) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.registry.inc(o.c.conflicts);
            o.registry.bump(o.g.conflicts, now);
            if !is_true {
                o.registry.inc(o.c.false_conflicts);
                o.registry.bump(o.g.false_conflicts, now);
            }
        }
    }

    /// Convenience: build and run to completion (panics on watchdog trip;
    /// see [`Machine::try_run`] for the fallible form).
    pub fn run(workload: &dyn Workload, cfg: SimConfig) -> SimOutput {
        let mut m = Machine::new(workload, cfg);
        m.run_to_completion()
    }

    /// Convenience: build and run to completion, returning a typed
    /// [`SimError`] (with its forward-progress diagnosis) instead of
    /// panicking when the watchdog trips.
    pub fn try_run(workload: &dyn Workload, cfg: SimConfig) -> Result<SimOutput, SimError> {
        let mut m = Machine::new(workload, cfg);
        m.try_run_to_completion()
    }

    /// Drive the scheduler until every program finishes. Panics with the
    /// full diagnostic dump if the watchdog trips; callers that want to
    /// degrade instead of die use [`Machine::try_run_to_completion`].
    pub fn run_to_completion(&mut self) -> SimOutput {
        match self.try_run_to_completion() {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Drive the scheduler until every program finishes, or until the step
    /// budget (`SimConfig::max_steps`) runs out — in which case the run
    /// ends with [`SimError::Watchdog`] carrying per-core progress state,
    /// the fallback-lock owner, the hottest conflict lines, and the
    /// monitor's livelock/starvation verdict.
    pub fn try_run_to_completion(&mut self) -> Result<SimOutput, SimError> {
        while self.step() {
            self.steps += 1;
            if self.steps >= self.cfg.max_steps {
                self.publish_progress();
                if let Some(p) = &self.progress_probe {
                    p.finish();
                }
                return Err(SimError::Watchdog(self.progress_report()));
            }
            if (self.progress_probe.is_some() || self.cancel.is_some())
                && self.steps.is_multiple_of(crate::snapshot::PUBLISH_EVERY_STEPS)
            {
                self.publish_progress();
                // Cooperative cancellation shares the publish cadence: one
                // relaxed load per window, and a clean typed exit (no
                // partial stats escape) when a supervisor fired the token.
                if let Some(kind) = self.cancel.as_ref().and_then(|t| t.kind()) {
                    if let Some(p) = &self.progress_probe {
                        p.finish();
                    }
                    return Err(SimError::Cancelled(kind));
                }
            }
        }
        self.publish_progress();
        if let Some(p) = &self.progress_probe {
            p.finish();
        }
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = self.cores.iter().map(|c| c.clock).max().unwrap_or(0);
        let promoted_lines = self.promoted_lines();
        // Fold the caches' passive fill/eviction counters into the report
        // at the end of the run (the mem crate cannot depend on stats, so
        // the counters live with the arrays and are read out here).
        let obs = self.obs.take().map(|mut o| {
            self.obs_on = false;
            for core in &self.cores {
                o.registry.add(o.c.l1_evictions, core.caches.l1.evictions());
                o.registry.add(o.c.l2_evictions, core.caches.l2.evictions());
                o.registry.add(o.c.l3_evictions, core.caches.l3.evictions());
            }
            o.into_report()
        });
        Ok(SimOutput {
            stats,
            memory: std::mem::take(&mut self.memory),
            trace: self.trace.take(),
            promoted_lines,
            obs,
        })
    }

    // ------------------------------------------------------------------
    // Epoch-parallel driving (the shard engine's per-shard interface)
    // ------------------------------------------------------------------

    /// Clock of the next scheduled event, `None` when every core is done.
    /// The shard engine uses this to pick (and skip to) the next epoch
    /// boundary without stepping anything.
    pub fn next_event_clock(&self) -> Option<u64> {
        self.runq.peek().map(|(clock, _)| clock)
    }

    /// Start filling the per-epoch outbox ([`EpochLog`]). Called once by
    /// the shard engine right after construction; standalone machines never
    /// enable it and pay one predictable branch per site.
    pub fn enable_epoch_log(&mut self) {
        self.epoch_on = true;
    }

    /// Hand the filled epoch outbox to the caller (swapping in `out`'s
    /// buffers, cleared, for the next epoch) — the barrier reads it while
    /// the machine is parked.
    pub fn swap_epoch_log(&mut self, out: &mut EpochLog) {
        std::mem::swap(&mut self.epoch, out);
        self.epoch.clear();
    }

    /// Drive the scheduler up to (but not into) cycle `until`: steps run
    /// while the next event's clock is `< until`, so after returning every
    /// local event before the epoch boundary has executed. Shares the
    /// step budget and watchdog of [`Machine::try_run_to_completion`].
    ///
    /// Returns `Ok(true)` while the machine still has scheduled work at or
    /// past `until`, `Ok(false)` once every core is done.
    pub fn run_epoch(&mut self, until: u64) -> Result<bool, SimError> {
        loop {
            match self.runq.peek() {
                None => return Ok(false),
                Some((clock, _)) if clock >= until => return Ok(true),
                Some(_) => {}
            }
            let stepped = self.step();
            debug_assert!(stepped, "peek returned an event but step found none");
            self.steps += 1;
            if self.steps >= self.cfg.max_steps {
                return Err(SimError::Watchdog(self.progress_report()));
            }
        }
    }

    /// Finalize after the shard engine has driven every epoch: identical to
    /// finishing [`Machine::try_run_to_completion`] (the run queue is empty,
    /// so no further steps execute — only the end-of-run folds).
    pub fn finish(&mut self) -> Result<SimOutput, SimError> {
        debug_assert!(self.runq.peek().is_none(), "finish() with events still queued");
        self.try_run_to_completion()
    }

    /// Apply one *external* (cross-cluster) probe: a transaction in another
    /// shard committed a write to `line` covering the sub-block bytes in
    /// `wmask`. Any local core holding conflicting speculative state aborts
    /// — same detector mask check, same true/false-conflict taxonomy, and
    /// same WAR-speculation escape as the local probe path, so the abort
    /// statistics stay comparable across shard counts. Returns the number
    /// of victims aborted here.
    ///
    /// Differences from a local probe, by design (DESIGN.md §15): no
    /// `TraceEvent::Probe`/`Conflict` is emitted (those name a local
    /// requester core, and the requester lives in another shard), the
    /// `probes` counter is untouched (cross-cluster traffic is accounted by
    /// the inter-cluster directory instead), and plain (non-speculative)
    /// cached copies are left alone — shards own disjoint address regions
    /// for plain data, so only speculative state crosses clusters.
    pub fn apply_external_probe(&mut self, line: LineAddr, wmask: u64, now: u64) -> u32 {
        let Some(lid) = self.intern.get(line) else {
            return 0; // line never touched here — nothing speculative to hit
        };
        let detector = self.effective_detector(lid);
        let mask = AccessMask(wmask);
        let kind = ProbeKind::Invalidating;
        let probe_coarse = detector.coarsen(mask).0;
        let n = self.cores.len();
        // Two-phase, like `probe_others`: read-only verdict pass over the
        // spec-directory row, then application in ascending core order.
        let mut verdicts = self.arena.checkout_verdicts();
        let mut bits = self.spec_cores[lid as usize];
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if !self.cores[v].in_running_tx() {
                continue;
            }
            let (r, w) = self.spec_masks[lid as usize * n + v];
            verdicts.push((v, detector.check_probe_masks(r, w, kind, mask, probe_coarse)));
        }
        let mut aborted = 0;
        for &(v, outcome) in verdicts.iter() {
            match outcome {
                ProbeOutcome::Conflict { kind: ck, is_true }
                    if self.cfg.war_speculation
                        && ck == asf_core::detector::ConflictType::WriteAfterRead =>
                {
                    self.stats.war_speculations += 1;
                    let _ = is_true;
                    self.cores[v].needs_validation = true;
                }
                ProbeOutcome::Conflict { kind: ck, is_true } => {
                    self.stats.on_conflict(ck, is_true, now, line);
                    self.obs_conflict(now, is_true);
                    if !is_true {
                        self.heat_line(lid);
                    }
                    self.abort_victim(v, AbortCause::Conflict { kind: ck, is_true });
                    aborted += 1;
                }
                ProbeOutcome::NoConflict { .. } => {}
            }
        }
        self.arena.checkin_verdicts(verdicts);
        aborted
    }

    /// Assemble the watchdog's diagnostic dump from the progress monitor,
    /// the cores' control state, and the run statistics so far.
    fn progress_report(&self) -> ProgressReport {
        // "Recently" = within the last eighth of the budget (floored so
        // tiny test budgets still have a meaningful window), stretched for
        // large systems where each core is scheduled proportionally less
        // often per step. At ≤ 8 system cores this is the base window.
        let window = scaled_window((self.cfg.max_steps / 8).max(1024), self.cfg.system_total());
        let active: Vec<bool> = self
            .cores
            .iter()
            .map(|c| !matches!(c.state, CoreState::Done))
            .collect();
        let verdict = self.monitor.classify(&active, self.steps, window);
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let state = match &c.state {
                    CoreState::Idle => "Idle".to_string(),
                    CoreState::InTx { pc, .. } => format!("InTx(pc={pc})"),
                    CoreState::Backoff { until, .. } => format!("Backoff(until={until})"),
                    CoreState::AwaitLock { .. } => "AwaitLock".to_string(),
                    CoreState::Fallback { pc, .. } => format!("Fallback(pc={pc})"),
                    CoreState::Plain { pc, .. } => format!("Plain(pc={pc})"),
                    CoreState::Done => "Done".to_string(),
                };
                let p = self.monitor.core(i);
                CoreReport {
                    core: i,
                    state,
                    clock: c.clock,
                    commits: p.commits,
                    streak: p.streak,
                    last_commit_step: p.last_commit_step,
                    attempts_since_commit: p.attempts_since_commit,
                }
            })
            .collect();
        ProgressReport {
            steps: self.steps,
            verdict,
            fallback_owner: self.fallback_owner,
            cores,
            hottest_lines: self.stats.false_by_line.hottest(4),
            total_commits: self.stats.tx_committed,
            total_aborts: self.stats.tx_aborted,
        }
    }

    /// Execute one scheduler step; false when all cores are done.
    ///
    /// The run queue holds exactly one `(clock, core)` entry per non-`Done`
    /// core, so popping the minimum reproduces the retired linear scan's
    /// `min_by_key((clock, id))` choice — including its tie-break on the
    /// smaller core id (see [`crate::sched::CalendarQueue`] for the pop
    /// order the golden digests pin). The entry's key can never go stale: a
    /// core's clock changes only during its own turn, the turn ends by
    /// re-queueing it at the new clock, and clocks never move backwards —
    /// the queue's monotone-push contract.
    fn step(&mut self) -> bool {
        let who = match self.runq.pop() {
            Some((clock, who)) => {
                debug_assert_eq!(
                    clock, self.cores[who].clock,
                    "run-queue entry went stale for core {who}"
                );
                who
            }
            None => return false,
        };
        if self.obs_on {
            self.obs_with(|o| {
                let id = o.c.sched_pops;
                o.registry.inc(id);
            });
            let t0 = self.obs_timer();
            self.step_core(who);
            self.obs_phase(t0, |ph| ph.sched);
        } else {
            // Disabled path: one predictable branch, no clock reads.
            self.step_core(who);
        }
        if !matches!(self.cores[who].state, CoreState::Done) {
            self.runq.push(self.cores[who].clock, who);
        }
        true
    }

    fn step_core(&mut self, who: usize) {
        // A pending abort always takes priority: the attempt is already
        // dead (its speculative state was torn down at probe time).
        if let Some(cause) = self.cores[who].abort_pending.take() {
            if let CoreState::InTx { attempt, .. } =
                std::mem::replace(&mut self.cores[who].state, CoreState::Idle)
            {
                self.after_abort(who, cause, attempt);
            }
            return;
        }

        match std::mem::replace(&mut self.cores[who].state, CoreState::Idle) {
            CoreState::Idle => self.dispatch_next_item(who),
            CoreState::InTx { attempt, pc } => self.step_tx(who, attempt, pc),
            // Unlike Compute, the Backoff arm keeps its own turn: it is not
            // a pure clock bump — it re-enters `InTx`, and the cycle at
            // which that happens relative to equal-clock cores decides who
            // a fallback-lock acquisition or a probe can abort. Fusing it
            // into `after_abort` would change those races (and outcomes).
            CoreState::Backoff { until, attempt } => {
                self.cores[who].clock = self.cores[who].clock.max(until);
                self.stats.on_attempt();
                self.monitor.note_attempt(who);
                let (cycle, retry) = (self.cores[who].clock, self.cores[who].consec_aborts);
                self.emit(TraceEvent::TxBegin { core: who, cycle, retry });
                self.obs_with(|o| {
                    o.registry.inc(o.c.tx_begins);
                    o.registry.inc(o.c.tx_retries);
                });
                self.cores[who].state = CoreState::InTx { attempt, pc: 0 };
            }
            CoreState::AwaitLock { attempt } => {
                if self.fallback_owner.is_none() {
                    self.acquire_fallback(who);
                    self.cores[who].state = CoreState::Fallback { attempt, pc: 0 };
                } else {
                    // Spin; re-check in a little while.
                    self.cores[who].clock += 64;
                    self.cores[who].state = CoreState::AwaitLock { attempt };
                }
            }
            CoreState::Fallback { attempt, pc } => self.step_fallback(who, attempt, pc),
            CoreState::Plain { ops, pc } => self.step_plain(who, ops, pc),
            CoreState::Done => unreachable!("done cores are never scheduled"),
        }
    }

    fn dispatch_next_item(&mut self, who: usize) {
        let item = match self.cores[who].pending.take() {
            Some(it) => Some(it),
            None => self.cores[who].program.next_item(),
        };
        match item {
            None => self.cores[who].state = CoreState::Done,
            Some(WorkItem::Compute { cycles }) => {
                // Local compute has no shared-state interaction: advance the
                // clock here and stay `Idle`. The scheduler re-queues this
                // core at the finish cycle, so the *next* item is still
                // dispatched at exactly the cycle (and queue position) the
                // old dedicated-Compute-turn code dispatched it.
                self.cores[who].clock += cycles;
            }
            Some(WorkItem::Plain(ops)) => {
                self.cores[who].state = CoreState::Plain { ops, pc: 0 };
            }
            Some(WorkItem::Tx(attempt)) => {
                // Transactions subscribe to the fallback lock: they cannot
                // start while it is held.
                if self.fallback_owner.is_some() {
                    self.cores[who].clock += 64;
                    self.cores[who].pending = Some(WorkItem::Tx(attempt));
                    return;
                }
                let now = self.cores[who].clock;
                self.stats.on_tx_start(now);
                self.stats.on_attempt();
                self.monitor.note_attempt(who);
                self.emit(TraceEvent::TxBegin { core: who, cycle: now, retry: 0 });
                self.obs_with(|o| {
                    let id = o.c.tx_begins;
                    o.registry.inc(id);
                });
                self.cores[who].state = CoreState::InTx { attempt, pc: 0 };
            }
        }
    }

    fn step_tx(&mut self, who: usize, attempt: TxAttempt, pc: usize) {
        if pc >= attempt.ops.len() {
            self.commit(who, attempt);
            return;
        }
        // Fault layer: a spurious abort can strike before any operation
        // (ASF's transient-abort class — interrupts, TLB misses, …).
        if self.faults_on && self.cfg.faults.spurious_abort.fires(&mut self.fault_rng) {
            self.stats.faults.spurious_op_aborts += 1;
            self.obs_with(|o| {
                let id = o.c.fault_injections;
                o.registry.inc(id);
            });
            self.teardown_tx(who);
            self.after_abort(who, AbortCause::Spurious, attempt);
            return;
        }
        let op = attempt.ops[pc];
        match self.exec_op(who, op, true) {
            Ok(()) => {
                // The op itself may have triggered a self-abort via a remote
                // probe racing us? No — sequential engine; but capacity/user
                // aborts surface through Err. Continue.
                self.cores[who].state = CoreState::InTx { attempt, pc: pc + 1 };
            }
            Err(cause) => {
                // Self-detected abort: tear down speculative state now.
                self.teardown_tx(who);
                self.after_abort(who, cause, attempt);
            }
        }
    }

    fn step_fallback(&mut self, who: usize, attempt: TxAttempt, pc: usize) {
        if pc >= attempt.ops.len() {
            self.fallback_owner = None;
            let cycle = self.cores[who].clock;
            self.emit(TraceEvent::FallbackRelease { core: who, cycle });
            self.stats.on_commit();
            self.monitor.note_commit(who, self.steps);
            self.stats.fallback_commits += 1;
            self.obs_with(|o| {
                let id = o.c.fallback_commits;
                o.registry.inc(id);
            });
            self.stats.on_final_retries(self.cores[who].consec_aborts);
            self.cores[who].consec_aborts = 0;
            self.cores[who].backoff.on_commit();
            self.cores[who].state = CoreState::Idle;
            return;
        }
        let op = attempt.ops[pc];
        // Non-transactional execution: UserAbort is a no-op here (the
        // fallback path of a user-abortable region simply runs it).
        let op = match op {
            TxOp::UserAbort { .. } => TxOp::Compute { cycles: 1 },
            other => other,
        };
        self.exec_op(who, op, false).expect("non-tx ops cannot abort");
        self.cores[who].state = CoreState::Fallback { attempt, pc: pc + 1 };
    }

    fn step_plain(&mut self, who: usize, ops: Vec<TxOp>, pc: usize) {
        if pc >= ops.len() {
            self.cores[who].state = CoreState::Idle;
            return;
        }
        let op = match ops[pc] {
            TxOp::UserAbort { .. } => TxOp::Compute { cycles: 1 },
            other => other,
        };
        self.exec_op(who, op, false).expect("non-tx ops cannot abort");
        self.cores[who].state = CoreState::Plain { ops, pc: pc + 1 };
    }

    fn acquire_fallback(&mut self, who: usize) {
        let cycle = self.cores[who].clock;
        self.emit(TraceEvent::FallbackAcquire { core: who, cycle });
        self.obs_with(|o| {
            let id = o.c.fallback_acquires;
            o.registry.inc(id);
        });
        self.fallback_owner = Some(who);
        // Writing the lock word aborts every subscribed (running) txn.
        for v in 0..self.cores.len() {
            if v != who && self.cores[v].in_running_tx() {
                self.abort_victim(v, AbortCause::LockFallback);
            }
        }
    }

    // ------------------------------------------------------------------
    // Commit / abort machinery
    // ------------------------------------------------------------------

    fn commit(&mut self, who: usize, attempt: TxAttempt) {
        let t0 = self.obs_timer();
        // DPTM mode: validate speculated reads before committing.
        if self.cfg.war_speculation && self.cores[who].needs_validation {
            let stale = {
                let core = &self.cores[who];
                // `any` over distinct addresses: iteration order (the log's
                // first-write order vs. the old map order) cannot change
                // the verdict.
                core.read_log.iter().any(|(addr, logged)| {
                    !core.writeset.overlaps(Addr(addr), 1)
                        && (self.memory.read_u64(Addr(addr), 1) & 0xff) as u8 != logged
                })
            };
            if stale {
                self.teardown_tx(who);
                self.after_abort(who, AbortCause::Validation, attempt);
                self.obs_phase(t0, |ph| ph.commit);
                return;
            }
        }
        let cycle = self.cores[who].clock;
        self.emit(TraceEvent::TxCommit { core: who, cycle });
        self.cores[who].writeset.publish(&mut self.memory);
        if self.epoch_on {
            self.log_commit_footprint(who, cycle);
        }
        self.clear_spec_state(who, false);
        self.monitor.note_commit(who, self.steps);
        let core = &mut self.cores[who];
        core.backoff.on_commit();
        self.stats.on_commit();
        self.stats.on_final_retries(core.consec_aborts);
        core.consec_aborts = 0;
        core.state = CoreState::Idle;
        // Commit is a local gang-clear; charge a small fixed cost.
        core.clock += 3;
        self.obs_with(|o| {
            let id = o.c.tx_commits;
            o.registry.inc(id);
        });
        self.obs_phase(t0, |ph| ph.commit);
    }

    /// Record the committing attempt's written lines into the epoch outbox
    /// (shard mode only). The write footprint is exactly the speculative
    /// write masks `clear_spec_state` is about to retire — captured here,
    /// one entry per written line, so the shard barrier can route it to
    /// other clusters as external probes. Pure logging: no stats, no
    /// clocks, no RNG.
    fn log_commit_footprint(&mut self, who: usize, cycle: u64) {
        let n = self.cores.len();
        let start = self.epoch.commit_lines.len();
        for i in 0..self.cores[who].caches.spec_lines.len() {
            let (line, lid) = self.cores[who].caches.spec_lines[i];
            let (_r, w) = self.spec_masks[lid as usize * n + who];
            if w != 0 {
                self.epoch.commit_lines.push((line, w));
            }
        }
        let len = self.epoch.commit_lines.len() - start;
        if len != 0 {
            self.epoch.commits.push(CommitRecord { cycle, core: who, start, len });
        }
    }

    /// Tear down the speculative state of `who`'s running attempt (used for
    /// both remote-probe aborts and self-detected aborts).
    fn teardown_tx(&mut self, who: usize) {
        self.cores[who].writeset.discard();
        self.clear_spec_state(who, true);
    }

    /// End-of-attempt speculative-state teardown, shared by commit and
    /// abort: O(1) logical clears of the generation-tagged read log,
    /// signatures, and write set (done by the callers / here), plus one
    /// O(|own spec lines|) walk that simultaneously clears the L1 records,
    /// drains the retained table, retires this core's spec-directory
    /// columns, and feeds the residency index — every buffer involved is
    /// pooled across attempts.
    fn clear_spec_state(&mut self, who: usize, invalidate_written: bool) {
        let t0 = self.obs_timer();
        let mut lines = std::mem::take(&mut self.cores[who].caches.spec_lines);
        let mut dropped = self.arena.checkout_dropped();
        self.obs_with(|o| {
            o.registry.inc(o.c.teardown_walks);
            o.registry.add(o.c.teardown_lines, lines.len() as u64);
        });
        for &(line, lid) in &lines {
            self.spec_dir_clear(lid, who);
            self.cores[who]
                .caches
                .clear_spec_line(line, lid, invalidate_written, &mut dropped);
        }
        debug_assert!(
            self.cores[who].caches.retained.is_empty(),
            "retained entries must all be tracked spec lines"
        );
        lines.clear();
        self.cores[who].caches.spec_lines = lines;
        let core = &mut self.cores[who];
        if let Some(sig) = core.read_sig.as_mut() {
            sig.clear();
        }
        if let Some(sig) = core.write_sig.as_mut() {
            sig.clear();
        }
        core.read_log.clear();
        core.needs_validation = false;
        for &(line, lid) in &dropped {
            self.res_drop_if_absent(line, lid, who);
        }
        self.arena.checkin_dropped(dropped);
        self.obs_phase(t0, |ph| ph.teardown);
    }

    /// Abort a remote victim at probe time.
    fn abort_victim(&mut self, victim: usize, cause: AbortCause) {
        self.teardown_tx(victim);
        self.cores[victim].abort_pending = Some(cause);
    }

    /// Book-keeping after an abort: backoff or fall back to the lock.
    fn after_abort(&mut self, who: usize, cause: AbortCause, attempt: TxAttempt) {
        self.stats.on_abort(cause);
        let cycle = self.cores[who].clock;
        self.emit(TraceEvent::TxAbort { core: who, cycle, cause });
        self.obs_with(|o| {
            let id = o.abort_counter(cause);
            o.registry.inc(id);
            o.registry.bump(o.g.aborts, cycle);
        });
        self.monitor.note_abort(who);
        let core = &mut self.cores[who];
        // Saturating: with `max_retries = u32::MAX` (a deliberate
        // no-fallback configuration used by the livelock tests) the streak
        // would otherwise overflow long before the watchdog fires.
        core.consec_aborts = core.consec_aborts.saturating_add(1);
        if core.consec_aborts > self.cfg.max_retries {
            core.state = CoreState::AwaitLock { attempt };
            return;
        }
        let delay = core.backoff.on_abort(&mut core.rng);
        self.stats.backoff_cycles += delay;
        core.state = CoreState::Backoff { until: core.clock + delay, attempt };
    }

    // ------------------------------------------------------------------
    // Memory operations
    // ------------------------------------------------------------------

    /// Execute one op for `who`. `transactional` selects speculative
    /// bookkeeping. Returns `Err(cause)` for self-detected aborts.
    fn exec_op(&mut self, who: usize, op: TxOp, transactional: bool) -> Result<(), AbortCause> {
        match op {
            TxOp::Compute { cycles } => {
                self.cores[who].clock += cycles;
                Ok(())
            }
            TxOp::WaitUntil { cycle } => {
                let c = &mut self.cores[who];
                c.clock = c.clock.max(cycle);
                Ok(())
            }
            TxOp::UserAbort { num, den } => {
                debug_assert!(transactional, "UserAbort outside tx is filtered by callers");
                if self.cores[who].rng.chance(num as u64, den as u64) {
                    Err(AbortCause::User)
                } else {
                    Ok(())
                }
            }
            TxOp::Read { addr, size } => {
                self.access(who, Access::read(addr, size), transactional)?;
                if transactional {
                    self.isolation_check(who, addr, size);
                    self.log_read(who, addr, size);
                }
                Ok(())
            }
            TxOp::Write { addr, size, value } => {
                self.access(who, Access::write(addr, size), transactional)?;
                if transactional {
                    self.cores[who].writeset.write_u64(addr, size, value);
                } else {
                    self.memory.write_u64(addr, size, value);
                }
                Ok(())
            }
            TxOp::Update { addr, size, delta } => {
                self.access(who, Access::read(addr, size), transactional)?;
                if transactional {
                    self.isolation_check(who, addr, size);
                    self.log_read(who, addr, size);
                }
                self.access(who, Access::write(addr, size), transactional)?;
                if transactional {
                    let v = self.cores[who].writeset.read_u64(&self.memory, addr, size);
                    self.cores[who]
                        .writeset
                        .write_u64(addr, size, v.wrapping_add(delta));
                } else {
                    let v = self.memory.read_u64(addr, size);
                    self.memory.write_u64(addr, size, v.wrapping_add(delta));
                }
                Ok(())
            }
        }
    }

    /// DPTM mode: log the byte values a transactional read observed (own
    /// write-set bytes take precedence, as the hardware forwards them).
    fn log_read(&mut self, who: usize, addr: Addr, size: u32) {
        if !self.cfg.war_speculation {
            return;
        }
        for i in 0..size as u64 {
            let a = Addr(addr.0 + i);
            let byte = if self.cores[who].writeset.overlaps(a, 1) {
                (self.cores[who].writeset.read_u64(&self.memory, a, 1) & 0xff) as u8
            } else {
                (self.memory.read_u64(a, 1) & 0xff) as u8
            };
            self.cores[who].read_log.record(a.0, byte);
        }
    }

    /// The isolation oracle: a transactional read overlapping a live remote
    /// write set means a conflict went undetected (Figure 6 hazard).
    ///
    /// Under DPTM-style WAR speculation the invariant is intentionally
    /// relaxed (reads may overlap remote writes and validate later), so the
    /// oracle is disabled in that mode.
    fn isolation_check(&mut self, who: usize, addr: Addr, size: u32) {
        if self.cfg.war_speculation {
            return;
        }
        for v in 0..self.cores.len() {
            if v != who
                && self.cores[v].in_running_tx()
                && self.cores[v].writeset.overlaps(addr, size)
            {
                self.stats.isolation_violations += 1;
            }
        }
    }

    /// Perform a (possibly multi-line) access, charging latency and doing
    /// all coherence + HTM work per line fragment.
    fn access(&mut self, who: usize, acc: Access, transactional: bool) -> Result<(), AbortCause> {
        for (line, off, len) in acc.line_fragments() {
            let mask = AccessMask::from_range(off, len);
            let latency = self.access_line(who, line, mask, acc.is_write, transactional)?;
            let jitter = if self.cfg.latency_jitter > 0 {
                self.cores[who].rng.below(self.cfg.latency_jitter + 1)
            } else {
                0
            };
            self.cores[who].clock += latency + jitter;
            if transactional {
                self.stats.on_access(off, len);
            }
        }
        Ok(())
    }

    /// One line-fragment access. Returns the charged latency.
    fn access_line(
        &mut self,
        who: usize,
        line: LineAddr,
        mask: AccessMask,
        is_write: bool,
        transactional: bool,
    ) -> Result<u64, AbortCause> {
        let lat = self.cfg.machine.latency;
        let probe_kind = ProbeKind::for_access(is_write);
        let lid = self.intern_line(line);

        // Classify the local L1 state. Classification deliberately uses
        // `peek` (no LRU touch): a miss-classified access must leave the
        // replacement order exactly as the probe path expects to find it.
        let (present, readable, writable, dirty_hit) = {
            let core = &self.cores[who];
            match core.caches.l1.peek(line) {
                Some(meta) => (
                    true,
                    meta.moesi.readable(),
                    meta.moesi.writable(),
                    transactional
                        && self.cfg.enable_dirty
                        && meta.spec.hits_dirty(mask),
                ),
                None => (false, false, false, false),
            }
        };

        // Fast path: plain L1 hit with sufficient permission and no dirty
        // bytes under a transactional access. Spec marking is inlined on
        // the same `get` borrow (one LRU-touching set scan, not two).
        let plain_hit = present && !dirty_hit && if is_write { writable } else { readable };
        if plain_hit {
            self.stats.l1_hits += 1;
            let core = &mut self.cores[who];
            let meta = core.caches.l1.get(line).expect("present line");
            if is_write {
                meta.moesi = meta.moesi.after_local_write();
            }
            if transactional {
                let was_spec = meta.spec.is_speculative();
                let grows;
                if is_write {
                    grows = mask.0 & !meta.spec.write_mask.0 != 0;
                    meta.spec.mark_write(mask);
                    if let Some(sig) = core.write_sig.as_mut() {
                        sig.insert(line);
                    }
                } else {
                    grows = mask.0 & !meta.spec.read_mask.0 != 0;
                    meta.spec.mark_read(mask);
                    if let Some(sig) = core.read_sig.as_mut() {
                        sig.insert(line);
                    }
                }
                if !was_spec {
                    core.caches.note_spec_line(line, lid);
                }
                if grows {
                    self.spec_dir_mark(lid, who, mask, is_write);
                }
                if self.epoch_on && !was_spec {
                    self.epoch.spec_touched.push(line);
                }
            }
            return Ok(lat.l1);
        }

        // Everything else broadcasts a probe.
        self.stats.l1_misses += 1;
        if dirty_hit {
            self.stats.dirty_refetches += 1;
            let cycle = self.cores[who].clock;
            self.emit(TraceEvent::DirtyRefetch { core: who, cycle, line });
        }

        // Victim-wins ablation: if the probe would conflict, the requester
        // aborts itself instead (the probe is NACKed before mutating any
        // remote state).
        if transactional && self.cfg.resolution == ResolutionPolicy::VictimWins {
            if let Some(cause) = self.victim_wins_check(who, line, lid, mask, probe_kind) {
                return Err(cause);
            }
        }

        let summary = self.probe_others(who, line, lid, mask, probe_kind);

        // Upgrade: line present & readable, we needed write permission.
        let upgrade = present && readable && is_write && !dirty_hit;

        // Pick the data source / latency.
        let level = if upgrade {
            // Permission-only transaction; data already local.
            AccessLevel::RemoteCache
        } else if summary.owner_supplied {
            AccessLevel::RemoteCache
        } else {
            self.cores[who]
                .caches
                .local_fill_level(line)
                .unwrap_or(AccessLevel::Memory)
        };

        // Install / update the line.
        if present {
            // Upgrade or dirty refetch: line stays resident.
            let enable_dirty = self.cfg.enable_dirty;
            let core = &mut self.cores[who];
            let meta = core.caches.l1.get(line).expect("present line");
            meta.moesi = MoesiState::install_for(is_write, summary.others_had_copy);
            if transactional && enable_dirty {
                meta.spec.mark_dirty(summary.piggyback);
            }
            if dirty_hit {
                meta.spec.clear_dirty(mask);
            }
            if transactional && enable_dirty && summary.piggyback.any() {
                self.emit(TraceEvent::DirtyMark { core: who, line, mask: summary.piggyback });
            }
        } else {
            // Fault layer: capacity-pressure spikes temporarily pin this
            // core's L1 ways — transactional fills inside the window take
            // ordinary capacity aborts, as if unrelated data occupied the
            // set. Checked before any cache mutation so the abort path is
            // byte-for-byte the one a real pinned set produces.
            if self.faults_on && transactional {
                if let Some(cause) = self.capacity_spike_check(who) {
                    return Err(cause);
                }
            }
            // Miss: fill from `level` and insert. The outer-level fill can
            // silently evict lines from L2/L3; the residency index hears
            // about both the fill and those evictions.
            let (ev2, ev3) = self.cores[who].caches.fill_outer(line);
            self.res_add(lid, who);
            if let Some(e) = ev2 {
                let elid = self.intern_line(e);
                self.res_drop_if_absent(e, elid, who);
            }
            if let Some(e) = ev3 {
                let elid = self.intern_line(e);
                self.res_drop_if_absent(e, elid, who);
            }
            let retained = self.cores[who].caches.retained.remove(&line);
            if retained.is_some() {
                self.obs_with(|o| {
                    let id = o.c.retained_folds;
                    o.registry.inc(id);
                });
            }
            let mut spec = retained.unwrap_or(SpecState::EMPTY);
            if transactional && self.cfg.enable_dirty {
                spec.mark_dirty(summary.piggyback);
            }
            // The probe just fetched coherent data for the accessed bytes:
            // any retained dirty marking they carried is now stale (a live
            // conflicting writer would have been aborted by this probe).
            spec.clear_dirty(mask);
            let meta = LineMeta {
                moesi: MoesiState::install_for(is_write, summary.others_had_copy),
                spec,
            };
            // LogTM-style signatures decouple conflict state from the cache:
            // speculative lines need not be pinned and eviction is legal.
            let sig_mode = self.cfg.signatures.is_some();
            let inserted = self.cores[who].caches.l1.insert(line, meta, |m: &LineMeta| {
                !sig_mode && m.spec.is_speculative()
            });
            match inserted {
                Ok(Some(evicted)) => {
                    // Keep the oracle's byte-exact record for evicted
                    // speculative lines (signatures still detect them).
                    // The line is already on the spec-line list (it was
                    // marked by this attempt) and its live+retained union —
                    // hence its directory column — is unchanged.
                    if sig_mode && evicted.meta.spec.is_speculative() {
                        self.cores[who]
                            .caches
                            .retained
                            .entry(evicted.line)
                            .or_insert(SpecState::EMPTY)
                            .merge(&evicted.meta.spec);
                    }
                    // An L1-evicted line usually survives in L2/L3 (or just
                    // moved to `retained`); only a full departure clears it.
                    let elid = self.intern_line(evicted.line);
                    self.res_drop_if_absent(evicted.line, elid, who);
                }
                Ok(None) => {}
                Err(_full) => {
                    // Every way pinned by speculative lines: capacity abort.
                    debug_assert!(transactional, "non-tx access hit a fully pinned set");
                    return Err(AbortCause::Capacity);
                }
            }
            if transactional && self.cfg.enable_dirty && summary.piggyback.any() {
                self.emit(TraceEvent::DirtyMark { core: who, line, mask: summary.piggyback });
            }
        }

        if transactional {
            self.mark_spec(who, line, lid, mask, is_write);
        }
        self.dir_add(lid, who);

        // Fault layer: a delayed coherence response stretches this access
        // by a fixed penalty (the probe already went out; only its answer
        // is late).
        let mut delay = 0;
        if self.faults_on && self.cfg.faults.delayed_probe.fires(&mut self.fault_rng) {
            delay = self.cfg.faults.delay_cycles;
            self.stats.faults.delayed_probes += 1;
            self.stats.faults.delay_cycles += delay;
            self.obs_with(|o| {
                let id = o.c.fault_injections;
                o.registry.inc(id);
            });
        }
        Ok(lat.for_level(level) + delay)
    }

    /// Capacity-spike bookkeeping for one transactional fill: inside an
    /// open window every fill aborts; outside, the spike rate may open a
    /// new window (whose triggering fill aborts too).
    fn capacity_spike_check(&mut self, who: usize) -> Option<AbortCause> {
        let now = self.cores[who].clock;
        if now < self.spike_until[who] {
            self.stats.faults.capacity_spike_aborts += 1;
            self.obs_with(|o| {
                let id = o.c.fault_injections;
                o.registry.inc(id);
            });
            return Some(AbortCause::Capacity);
        }
        if self.cfg.faults.capacity_spike.fires(&mut self.fault_rng) {
            self.spike_until[who] = now + self.cfg.faults.spike_cycles;
            self.stats.faults.capacity_spikes += 1;
            self.stats.faults.capacity_spike_aborts += 1;
            self.obs_with(|o| {
                let id = o.c.fault_injections;
                o.registry.inc(id);
            });
            return Some(AbortCause::Capacity);
        }
        None
    }

    /// Record speculative access bits on a resident line, keeping the
    /// spec-line list (pushed exactly once, on the line's empty→speculative
    /// transition) and the speculative-state directory (updated only when
    /// the live mask actually grows — covered bits are already in the
    /// directory's live+retained union) in sync.
    fn mark_spec(&mut self, who: usize, line: LineAddr, lid: LineId, mask: AccessMask, is_write: bool) {
        let core = &mut self.cores[who];
        let meta = core
            .caches
            .l1
            .peek_mut(line)
            .expect("spec marking requires a resident line");
        let was_spec = meta.spec.is_speculative();
        let grows;
        if is_write {
            grows = mask.0 & !meta.spec.write_mask.0 != 0;
            meta.spec.mark_write(mask);
            if let Some(sig) = core.write_sig.as_mut() {
                sig.insert(line);
            }
        } else {
            grows = mask.0 & !meta.spec.read_mask.0 != 0;
            meta.spec.mark_read(mask);
            if let Some(sig) = core.read_sig.as_mut() {
                sig.insert(line);
            }
        }
        if !was_spec {
            // A freshly-speculative line cannot already be tracked: a line
            // re-fetched with retained state folds that state back into the
            // live mask before marking, so `was_spec` is true for it.
            core.caches.note_spec_line(line, lid);
        }
        if grows {
            self.spec_dir_mark(lid, who, mask, is_write);
        }
        if self.epoch_on && !was_spec {
            self.epoch.spec_touched.push(line);
        }
    }

    /// Victim-wins pre-scan: would this probe conflict with any remote
    /// transaction? If so, record the conflict and return the cause the
    /// *requester* must abort with; no remote state is touched.
    fn victim_wins_check(
        &mut self,
        who: usize,
        line: LineAddr,
        lid: LineId,
        mask: AccessMask,
        kind: ProbeKind,
    ) -> Option<AbortCause> {
        let now = self.cores[who].clock;
        let detector = self.effective_detector(lid);
        let vspec = self.snapshot_victim_spec(who, line, lid);
        for &(v, merged) in &vspec {
            if !self.cores[v].in_running_tx() {
                continue;
            }
            if let ProbeOutcome::Conflict { kind: ck, is_true } =
                detector.check_probe(&merged, kind, mask)
            {
                self.stats.on_conflict(ck, is_true, now, line);
                self.obs_conflict(now, is_true);
                if !is_true {
                    self.heat_line(lid);
                }
                self.emit(TraceEvent::Conflict {
                    requester: who,
                    victim: v,
                    line,
                    kind: ck,
                    is_true,
                });
                self.arena.checkin_vspec(vspec);
                return Some(AbortCause::Conflict { kind: ck, is_true });
            }
        }
        self.arena.checkin_vspec(vspec);
        None
    }

    /// Snapshot, in ascending core order, every other core's merged
    /// (live + retained) speculative state for `line` — the per-probe
    /// victim view the conflict checks run against.
    ///
    /// Default: **one** spec-directory lookup plus bit ops; the directory
    /// column *is* the live+retained union, byte-exact, with dirty bits
    /// excluded (they are local-only and ignored by `check_probe` and the
    /// `is_true` oracle). Under `exhaustive_spec_walk`: the pre-directory
    /// behaviour — walk each candidate target's L1 and retained table.
    /// Both paths produce identical snapshots; equivalence tests prove it.
    ///
    /// Snapshotting *before* the probe loop is also what makes mid-loop
    /// victim teardown sound: `abort_victim` mutates the directory, but
    /// each victim's state is read before any abort this probe causes, and
    /// a victim's teardown never alters another core's masks.
    fn snapshot_victim_spec(
        &mut self,
        who: usize,
        line: LineAddr,
        lid: LineId,
    ) -> Vec<(usize, SpecState)> {
        let mut out = self.arena.checkout_vspec();
        if !self.cfg.exhaustive_spec_walk {
            let row = self.spec_cores[lid as usize];
            let dir_hit = row != 0;
            let n = self.cores.len();
            let mut bits = row & !(1 << who);
            while bits != 0 {
                let v = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (r, w) = self.spec_masks[lid as usize * n + v];
                out.push((
                    v,
                    SpecState {
                        read_mask: AccessMask(r),
                        write_mask: AccessMask(w),
                        dirty_mask: AccessMask::EMPTY,
                    },
                ));
            }
            self.obs_with(|o| {
                let id = if dir_hit { o.c.specdir_hits } else { o.c.specdir_misses };
                o.registry.inc(id);
            });
        } else {
            let mut targets = self.probe_target_bits(who, lid);
            while targets != 0 {
                let v = targets.trailing_zeros() as usize;
                targets &= targets - 1;
                let mut merged = self.cores[v]
                    .caches
                    .l1
                    .peek(line)
                    .map(|m| m.spec)
                    .unwrap_or(SpecState::EMPTY);
                if let Some(ret) = self.cores[v].caches.retained.get(&line) {
                    merged.merge(ret);
                }
                if merged.is_speculative() {
                    // Strip dirty bits so both paths yield identical
                    // snapshots; no conflict check reads them.
                    merged.dirty_mask = AccessMask::EMPTY;
                    out.push((v, merged));
                }
            }
        }
        out
    }

    /// Broadcast a probe for `line`/`mask` from `who` to all other cores:
    /// conflict-check live and retained speculative state, update remote
    /// MOESI, collect piggy-back bits and data-source information.
    ///
    /// Conflict resolution runs in one of three modes:
    ///
    /// * **Batched** (the default): a read-only *verdict pass* joins the
    ///   probe's pre-coarsened mask against every candidate victim's raw
    ///   masks straight out of the spec-directory row — one AND per victim,
    ///   no per-victim snapshot structs — then an *apply pass* walks the
    ///   targets in the same ascending core order, applying verdicts and
    ///   coherence updates. Equivalent to the sequential path because the
    ///   checks are read-only and per-victim independent: aborting victim
    ///   `a` only clears `a`'s own directory column and running-tx status,
    ///   and each victim is visited exactly once, so the state any victim's
    ///   check reads is identical in both orders (fault-RNG draws stay in
    ///   the apply pass, in the original per-victim order).
    /// * **Sequential** (`sequential_probe_resolution` or
    ///   `exhaustive_spec_walk`): the pre-batching code path — snapshot the
    ///   victims' merged state, then check and apply victim-by-victim.
    ///   The A/B fence for the batched pass.
    /// * **Signature**: Bloom-filter membership per victim; inherently
    ///   per-victim, so it always runs on the snapshot path.
    fn probe_others(
        &mut self,
        who: usize,
        line: LineAddr,
        lid: LineId,
        mask: AccessMask,
        kind: ProbeKind,
    ) -> ProbeSummary {
        self.stats.probes += 1;
        let t0 = self.obs_timer();
        let obs_on = self.obs_on;
        let now = self.cores[who].clock;
        self.emit(TraceEvent::Probe {
            core: who,
            cycle: now,
            line,
            mask,
            invalidating: kind.invalidates(),
        });
        // Periodic (debug builds) or per-probe (`verify_residency`) fence:
        // a missing residency bit would silently skip a conflict check, so
        // divergence must fail loudly here, not as wrong results downstream.
        if self.cfg.verify_residency
            || (cfg!(debug_assertions) && self.stats.probes.is_multiple_of(64))
        {
            self.crosscheck_residency(line, lid);
        }
        // Same fence for the speculative-state directory: a stale column
        // would mis-classify (or miss) a conflict, so divergence fails here.
        if self.cfg.verify_spec_directory
            || (cfg!(debug_assertions) && self.stats.probes.is_multiple_of(64))
        {
            self.crosscheck_spec_dir(line, lid);
        }
        let detector = self.effective_detector(lid);
        let mut summary = ProbeSummary::default();
        let use_snapshot = self.cfg.signatures.is_some()
            || self.cfg.sequential_probe_resolution
            || self.cfg.exhaustive_spec_walk;
        let targets_bits = self.probe_target_bits(who, lid);
        self.stats.probe_targets += self.accounted_probe_targets(who, lid);
        // Victim speculative state for the snapshot modes, resolved once
        // per probe; ascending by core id, like the target walk, so a
        // cursor pairs them up. Batched mode leaves it empty.
        let vspec = if use_snapshot {
            self.snapshot_victim_spec(who, line, lid)
        } else {
            self.arena.checkout_vspec()
        };
        // Batched verdict pass: read-only, so running it before any abort
        // is applied sees exactly the state the sequential loop would.
        let mut verdicts = self.arena.checkout_verdicts();
        if !use_snapshot {
            let row = self.spec_cores[lid as usize];
            let n = self.cores.len();
            let probe_coarse = detector.coarsen(mask).0;
            let mut bits = row & targets_bits;
            while bits != 0 {
                let v = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if !self.cores[v].in_running_tx() {
                    continue;
                }
                let (r, w) = self.spec_masks[lid as usize * n + v];
                verdicts.push((v, detector.check_probe_masks(r, w, kind, mask, probe_coarse)));
            }
            // Same per-probe hit/miss accounting the snapshot path records.
            self.obs_with(|o| {
                let id = if row != 0 { o.c.specdir_hits } else { o.c.specdir_misses };
                o.registry.inc(id);
            });
        }
        let mut cursor = 0;
        let mut retained_mask: u64 = 0;
        // Coherence/retention tallies accumulate locally while `meta`
        // borrows the victim's cache, then fold into the registry once
        // after the loop.
        let (mut obs_downgrades, mut obs_invalidations, mut obs_saves) = (0u64, 0u64, 0u64);

        let mut walk = targets_bits;
        while walk != 0 {
            let v = walk.trailing_zeros() as usize;
            walk &= walk - 1;

            // --- Conflict detection / verdict application ----------------
            if !use_snapshot {
                while cursor < verdicts.len() && verdicts[cursor].0 < v {
                    cursor += 1;
                }
                if cursor < verdicts.len() && verdicts[cursor].0 == v {
                    debug_assert!(
                        self.cores[v].in_running_tx(),
                        "verdict for a core no longer transactional"
                    );
                    match verdicts[cursor].1 {
                        ProbeOutcome::Conflict { kind: ck, is_true }
                            if self.cfg.war_speculation
                                && ck == asf_core::detector::ConflictType::WriteAfterRead =>
                        {
                            // DPTM-style coherence decoupling: the reader
                            // speculates through the invalidation and will
                            // validate its values at commit.
                            self.stats.war_speculations += 1;
                            let _ = is_true;
                            self.cores[v].needs_validation = true;
                        }
                        ProbeOutcome::Conflict { kind: ck, is_true } => {
                            self.stats.on_conflict(ck, is_true, now, line);
                            self.obs_conflict(now, is_true);
                            if !is_true {
                                self.heat_line(lid);
                            }
                            self.emit(TraceEvent::Conflict {
                                requester: who,
                                victim: v,
                                line,
                                kind: ck,
                                is_true,
                            });
                            self.abort_victim(v, AbortCause::Conflict { kind: ck, is_true });
                        }
                        ProbeOutcome::NoConflict { piggyback } => {
                            summary.piggyback |= piggyback;
                        }
                    }
                }
            } else {
                while cursor < vspec.len() && vspec[cursor].0 < v {
                    cursor += 1;
                }
                if self.cores[v].in_running_tx() {
                let merged = if cursor < vspec.len() && vspec[cursor].0 == v {
                    vspec[cursor].1
                } else {
                    SpecState::EMPTY
                };
                if self.cfg.signatures.is_some() {
                    // LogTM-SE style: membership tests against the victim's
                    // Bloom signatures; aliases conflict too.
                    let write_hit = self.cores[v]
                        .write_sig
                        .as_ref()
                        .is_some_and(|sig| sig.maybe_contains(line));
                    let read_hit = self.cores[v]
                        .read_sig
                        .as_ref()
                        .is_some_and(|sig| sig.maybe_contains(line));
                    let fired = match kind {
                        ProbeKind::NonInvalidating => write_hit,
                        ProbeKind::Invalidating => write_hit || read_hit,
                    };
                    if fired {
                        use asf_core::detector::ConflictType as Ct;
                        let true_w = mask.overlaps(merged.write_mask);
                        let true_r = mask.overlaps(merged.read_mask);
                        let (ck, is_true) = match kind {
                            ProbeKind::NonInvalidating => (Ct::ReadAfterWrite, true_w),
                            ProbeKind::Invalidating => {
                                if true_w {
                                    (Ct::WriteAfterWrite, true)
                                } else if true_r {
                                    (Ct::WriteAfterRead, true)
                                } else if write_hit {
                                    (Ct::WriteAfterWrite, false)
                                } else {
                                    (Ct::WriteAfterRead, false)
                                }
                            }
                        };
                        if !merged.is_speculative() {
                            // The victim never touched this line: pure
                            // hash aliasing.
                            self.stats.sig_alias_conflicts += 1;
                        }
                        self.stats.on_conflict(ck, is_true, now, line);
                        self.obs_conflict(now, is_true);
                        if !is_true {
                            self.heat_line(lid);
                        }
                        self.emit(TraceEvent::Conflict {
                            requester: who,
                            victim: v,
                            line,
                            kind: ck,
                            is_true,
                        });
                        self.abort_victim(v, AbortCause::Conflict { kind: ck, is_true });
                    }
                } else if merged.is_speculative() {
                    match detector.check_probe(&merged, kind, mask) {
                        ProbeOutcome::Conflict { kind: ck, is_true }
                            if self.cfg.war_speculation
                                && ck == asf_core::detector::ConflictType::WriteAfterRead =>
                        {
                            // DPTM-style coherence decoupling: the reader
                            // speculates through the invalidation and will
                            // validate its values at commit.
                            self.stats.war_speculations += 1;
                            let _ = is_true;
                            self.cores[v].needs_validation = true;
                        }
                        ProbeOutcome::Conflict { kind: ck, is_true } => {
                            self.stats.on_conflict(ck, is_true, now, line);
                            self.obs_conflict(now, is_true);
                            if !is_true {
                                self.heat_line(lid);
                            }
                            self.emit(TraceEvent::Conflict {
                                requester: who,
                                victim: v,
                                line,
                                kind: ck,
                                is_true,
                            });
                            self.abort_victim(
                                v,
                                AbortCause::Conflict { kind: ck, is_true },
                            );
                        }
                        ProbeOutcome::NoConflict { piggyback } => {
                            summary.piggyback |= piggyback;
                        }
                    }
                }
                }
            }

            // Fault layer: a transient false probe conflict can strike any
            // victim still transactional after the real checks — the probe
            // "detects" a conflict that isn't there and the victim aborts.
            // Modelled exactly like a real probe-time abort (teardown now,
            // cause delivered at the victim's next step) so the coherence
            // updates below see a freshly-aborted core; counted only in
            // FaultStats, never in the paper's conflict taxonomy.
            if self.faults_on
                && self.cores[v].in_running_tx()
                && self.cfg.faults.false_probe_conflict.fires(&mut self.fault_rng)
            {
                self.stats.faults.false_probe_conflicts += 1;
                self.obs_with(|o| {
                    let id = o.c.fault_injections;
                    o.registry.inc(id);
                });
                self.abort_victim(v, AbortCause::Spurious);
            }

            // --- Coherence state updates ---------------------------------
            let survived_spec = self.cores[v].in_running_tx();
            if let Some(meta) = self.cores[v].caches.l1.peek_mut(line) {
                summary.others_had_copy = true;
                if meta.moesi.owns_data() {
                    summary.owner_supplied = true;
                }
                match kind {
                    ProbeKind::NonInvalidating => {
                        let prev = meta.moesi;
                        meta.moesi = meta.moesi.after_remote_read_with(self.cfg.coherence);
                        if obs_on && prev.is_demotion(meta.moesi) {
                            obs_downgrades += 1;
                        }
                    }
                    ProbeKind::Invalidating => {
                        if obs_on {
                            obs_invalidations += 1;
                        }
                        let taken = self.cores[v]
                            .caches
                            .invalidate_all_levels(line)
                            .expect("line was resident");
                        // A surviving transaction keeps its speculative
                        // metadata for later conflict checks (§IV-D-2).
                        // Live→retained preserves the per-(line, core)
                        // union, so the spec directory needs no update, and
                        // the line is already on the victim's spec list.
                        if survived_spec && taken.spec.is_speculative() {
                            self.cores[v]
                                .caches
                                .retained
                                .entry(line)
                                .or_insert(SpecState::EMPTY)
                                .merge(&taken.spec);
                            retained_mask |= 1 << v;
                            obs_saves += 1;
                        }
                        self.res_drop_if_absent(line, lid, v);
                    }
                }
            } else {
                // L2/L3-only copies.
                if self.cores[v].caches.l2.contains(line)
                    || self.cores[v].caches.l3.contains(line)
                {
                    summary.others_had_copy = true;
                    if kind.invalidates() {
                        if obs_on {
                            obs_invalidations += 1;
                        }
                        self.cores[v].caches.l2.remove(line);
                        self.cores[v].caches.l3.remove(line);
                        self.res_drop_if_absent(line, lid, v);
                    }
                }
            }
        }
        let visited = targets_bits.count_ones() as u64;
        self.arena.checkin_verdicts(verdicts);
        self.arena.checkin_vspec(vspec);
        self.obs_with(|o| {
            o.registry.inc(o.c.probe_walks);
            o.registry.add(o.c.probe_cores_visited, visited);
            o.registry.add(o.c.coh_downgrades, obs_downgrades);
            o.registry.add(o.c.coh_invalidations, obs_invalidations);
            o.registry.add(o.c.retained_saves, obs_saves);
        });
        // Directory maintenance (probe filter): after an invalidation only
        // the requester and the retained-metadata holders can matter; a
        // read probe adds the requester as a sharer. Cores that held only
        // retained metadata (no live line) keep mattering, so fold the
        // existing holders of retained state back in.
        if self.cfg.fabric == FabricKind::ProbeFilter {
            match kind {
                ProbeKind::Invalidating => {
                    let mut mask = (1u64 << who) | retained_mask;
                    for (v, core) in self.cores.iter().enumerate() {
                        if v != who && core.caches.retained.contains_key(&line) {
                            mask |= 1 << v;
                        }
                    }
                    self.directory[lid as usize] = mask;
                }
                ProbeKind::NonInvalidating => {
                    self.directory[lid as usize] |= 1 << who;
                }
            }
        }
        self.obs_phase(t0, |ph| ph.probe);
        summary
    }

    /// Current cycle of a core (test hook).
    pub fn core_clock(&self, core: CoreId) -> u64 {
        self.cores[core.0].clock
    }

    /// Cross-check the residency index for one line against the ground
    /// truth in every core's hierarchy. A missing bit (unsound: a probe
    /// would skip a core that matters) or a stale bit (the index rotted and
    /// stopped being exact) both panic with a description.
    fn crosscheck_residency(&self, line: LineAddr, lid: LineId) {
        let bits = self.residency[lid as usize];
        for (v, core) in self.cores.iter().enumerate() {
            let truth = core.caches.holds(line);
            let indexed = bits & (1 << v) != 0;
            assert_eq!(
                indexed,
                truth,
                "residency index diverged for line {:#x} on core {v}: \
                 index says {indexed}, caches say {truth}",
                line.base().0
            );
        }
    }

    /// Cross-check one line's speculative-state directory entry against the
    /// ground truth (live L1 metadata merged with the retained table) for
    /// every core. The directory must be *exact* — equal to the union, not
    /// merely a superset — or conflict classification could drift.
    fn crosscheck_spec_dir(&self, line: LineAddr, lid: LineId) {
        let row = self.spec_cores[lid as usize];
        let n = self.cores.len();
        for (v, core) in self.cores.iter().enumerate() {
            let mut truth = core
                .caches
                .l1
                .peek(line)
                .map(|m| m.spec)
                .unwrap_or(SpecState::EMPTY);
            if let Some(ret) = core.caches.retained.get(&line) {
                truth.merge(ret);
            }
            let (r, w) = self.spec_masks[lid as usize * n + v];
            let listed = row & (1 << v) != 0;
            assert_eq!(
                (r, w),
                (truth.read_mask.0, truth.write_mask.0),
                "spec directory diverged for line {:#x} on core {v}: \
                 directory says ({r:#x}, {w:#x}), caches say ({:#x}, {:#x})",
                line.base().0,
                truth.read_mask.0,
                truth.write_mask.0
            );
            assert_eq!(
                listed,
                truth.is_speculative(),
                "spec directory core-bit diverged for line {:#x} on core {v}",
                line.base().0
            );
        }
    }

    /// Exhaustively verify the speculative-state directory against every
    /// core's live and retained metadata (test/debug hook mirroring
    /// [`Self::verify_residency_index`]). Checks both directions — every
    /// speculative (line, core) is listed with exactly the union mask
    /// (soundness: a probe must see every victim's full state) and every
    /// listed column is backed by real state (exactness: stale columns
    /// would fabricate conflicts) — plus the spec-line-list invariant the
    /// teardown walk relies on: every line carrying state appears on its
    /// core's tracked list exactly once.
    pub fn verify_spec_directory_index(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let n = self.cores.len();
        let mut lines: HashSet<LineAddr> = self
            .intern
            .iter()
            .filter(|&(lid, _)| self.spec_cores[lid as usize] != 0)
            .map(|(_, l)| l)
            .collect();
        for core in &self.cores {
            lines.extend(core.caches.spec_lines.iter().map(|&(l, _)| l));
            lines.extend(core.caches.retained.keys().copied());
            lines.extend(
                core.caches
                    .l1
                    .iter()
                    .filter(|(_, m)| m.spec.is_speculative())
                    .map(|(l, _)| l),
            );
        }
        for &line in &lines {
            let lid = self.intern.get(line);
            for (v, core) in self.cores.iter().enumerate() {
                let mut truth = core
                    .caches
                    .l1
                    .peek(line)
                    .map(|m| m.spec)
                    .unwrap_or(SpecState::EMPTY);
                if let Some(ret) = core.caches.retained.get(&line) {
                    truth.merge(ret);
                }
                let (r, w) = lid
                    .map(|lid| self.spec_masks[lid as usize * n + v])
                    .unwrap_or((0, 0));
                let listed =
                    lid.is_some_and(|lid| self.spec_cores[lid as usize] & (1 << v) != 0);
                if (r, w) != (truth.read_mask.0, truth.write_mask.0) {
                    return Err(format!(
                        "line {:#x}: core {v} directory masks ({r:#x}, {w:#x}) != \
                         ground truth ({:#x}, {:#x})",
                        line.base().0,
                        truth.read_mask.0,
                        truth.write_mask.0
                    ));
                }
                if listed != truth.is_speculative() {
                    return Err(format!(
                        "line {:#x}: core {v} listed={listed} but ground-truth \
                         speculative={}",
                        line.base().0,
                        truth.is_speculative()
                    ));
                }
                let tracked =
                    core.caches.spec_lines.iter().filter(|&&(l, _)| l == line).count();
                if truth.is_speculative() && tracked != 1 {
                    return Err(format!(
                        "line {:#x}: core {v} speculative but tracked {tracked}x \
                         on its spec-line list",
                        line.base().0
                    ));
                }
            }
        }
        Ok(())
    }

    /// Exhaustively verify the residency index against every core's caches
    /// and retained tables (test/debug hook, like
    /// [`Self::check_coherence_invariants`]). Checks both directions: every
    /// held line is indexed (soundness — a probe must never skip a core
    /// that matters) and every indexed bit is backed by real residency
    /// (exactness — stale bits would erode the probe savings).
    pub fn verify_residency_index(&self) -> Result<(), String> {
        use std::collections::HashSet;
        let mut lines: HashSet<LineAddr> = self
            .intern
            .iter()
            .filter(|&(lid, _)| self.residency[lid as usize] != 0)
            .map(|(_, l)| l)
            .collect();
        for core in &self.cores {
            lines.extend(core.caches.l1.iter().map(|(l, _)| l));
            lines.extend(core.caches.l2.iter().map(|(l, _)| l));
            lines.extend(core.caches.l3.iter().map(|(l, _)| l));
            lines.extend(core.caches.retained.keys().copied());
        }
        for &line in &lines {
            let bits = self
                .intern
                .get(line)
                .map(|lid| self.residency[lid as usize])
                .unwrap_or(0);
            for (v, core) in self.cores.iter().enumerate() {
                let truth = core.caches.holds(line);
                let indexed = bits & (1 << v) != 0;
                if truth && !indexed {
                    return Err(format!(
                        "line {:#x}: core {v} holds it but the index misses it (unsound)",
                        line.base().0
                    ));
                }
                if indexed && !truth {
                    return Err(format!(
                        "line {:#x}: index lists core {v} but nothing is resident (stale)",
                        line.base().0
                    ));
                }
            }
        }
        Ok(())
    }

    /// Coherence invariant checker (test/debug hook): for every line
    /// resident anywhere, at most one core holds it in a writable state
    /// (M/E), and if any core holds it M or O, no core holds it E. Returns
    /// a description of the first violation found.
    pub fn check_coherence_invariants(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut owners: HashMap<LineAddr, Vec<(usize, MoesiState)>> = HashMap::new();
        for (cid, core) in self.cores.iter().enumerate() {
            for (line, meta) in core.caches.l1.iter() {
                owners.entry(line).or_default().push((cid, meta.moesi));
            }
        }
        for (line, holders) in owners {
            let writable = holders.iter().filter(|(_, s)| s.writable()).count();
            if writable > 1 {
                return Err(format!(
                    "line {:#x}: {} writable copies ({holders:?})",
                    line.base().0,
                    writable
                ));
            }
            let dirtyish = holders
                .iter()
                .any(|(_, s)| matches!(s, MoesiState::Modified | MoesiState::Owned));
            let exclusive = holders.iter().any(|(_, s)| matches!(s, MoesiState::Exclusive));
            if writable == 1 && holders.len() > 1 {
                // A writable copy must be the only copy.
                return Err(format!(
                    "line {:#x}: writable copy coexists with sharers ({holders:?})",
                    line.base().0
                ));
            }
            if dirtyish && exclusive {
                return Err(format!(
                    "line {:#x}: M/O and E copies coexist ({holders:?})",
                    line.base().0
                ));
            }
        }
        Ok(())
    }

    /// Step the machine `n` times (test hook for invariant checking).
    pub fn step_n(&mut self, n: usize) -> bool {
        for _ in 0..n {
            if !self.step() {
                return false;
            }
        }
        true
    }
}
