//! The observability layer (`asf-obs`, DESIGN.md §13): a per-run metrics
//! registry plus hot-path profiling hooks, threaded through the machine's
//! event sites.
//!
//! Disabled-path contract: the machine holds the whole layer behind an
//! `Option` with a hoisted `obs_on` bool — exactly the `FaultPlan::none()`
//! pattern — so a run without observability pays one predictable branch per
//! event site and is bit-identical to a pre-observability build. Enabling
//! it must not perturb the run either: the layer never touches
//! [`asf_stats::run::RunStats`], never draws from any RNG stream, and never
//! advances a clock; the transparency test in `tests/observability.rs`
//! pins `RunStats` equality with everything switched on.
//!
//! Wall-clock phase timings come from `std::time::Instant` and are
//! inherently nondeterministic, which is why the whole report lives in
//! [`crate::machine::SimOutput::obs`] rather than in `RunStats`.

use asf_stats::metrics::{CounterId, GaugeId, MetricsRegistry, PhaseId, PhaseProfiler};
use asf_stats::run::AbortCause;

/// Configuration of the observability layer
/// ([`crate::machine::Machine::enable_observability`]).
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Width, in cycles, of the interval gauges' buckets (conflicts /
    /// aborts per window). The `observe` experiment's "conflicts per 100k
    /// cycles" series uses the default.
    pub interval_cycles: u64,
    /// Record wall-time phase samples (scheduler steps, probe resolution,
    /// teardown, commit) with `std::time::Instant`. Costs two clock reads
    /// per sampled phase; counters and gauges stay on regardless.
    pub profile: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { interval_cycles: 100_000, profile: true }
    }
}

/// Counter handles, registered once at enable time so event sites pay a
/// plain indexed add.
pub(crate) struct Counters {
    pub tx_begins: CounterId,
    pub tx_retries: CounterId,
    pub tx_commits: CounterId,
    pub fallback_acquires: CounterId,
    pub fallback_commits: CounterId,
    pub abort_conflict_true: CounterId,
    pub abort_conflict_false: CounterId,
    pub abort_capacity: CounterId,
    pub abort_user: CounterId,
    pub abort_lock_fallback: CounterId,
    pub abort_validation: CounterId,
    pub abort_spurious: CounterId,
    pub conflicts: CounterId,
    pub false_conflicts: CounterId,
    pub probe_walks: CounterId,
    pub probe_cores_visited: CounterId,
    pub specdir_hits: CounterId,
    pub specdir_misses: CounterId,
    pub retained_saves: CounterId,
    pub retained_folds: CounterId,
    pub fault_injections: CounterId,
    pub sched_pops: CounterId,
    pub teardown_walks: CounterId,
    pub teardown_lines: CounterId,
    pub coh_downgrades: CounterId,
    pub coh_invalidations: CounterId,
    pub l1_evictions: CounterId,
    pub l2_evictions: CounterId,
    pub l3_evictions: CounterId,
}

/// Interval-gauge handles.
pub(crate) struct Gauges {
    pub conflicts: GaugeId,
    pub false_conflicts: GaugeId,
    pub aborts: GaugeId,
}

/// Profiling-phase handles.
pub(crate) struct Phases {
    pub sched: PhaseId,
    pub probe: PhaseId,
    pub teardown: PhaseId,
    pub commit: PhaseId,
}

/// Live observability state owned by a running machine.
pub(crate) struct Obs {
    pub registry: MetricsRegistry,
    pub phases: PhaseProfiler,
    pub profile: bool,
    pub c: Counters,
    pub g: Gauges,
    pub ph: Phases,
}

impl Obs {
    pub(crate) fn new(cfg: ObsConfig) -> Obs {
        let mut registry = MetricsRegistry::new();
        let c = Counters {
            tx_begins: registry.counter("tx.begins"),
            tx_retries: registry.counter("tx.retries"),
            tx_commits: registry.counter("tx.commits"),
            fallback_acquires: registry.counter("tx.fallback_acquires"),
            fallback_commits: registry.counter("tx.fallback_commits"),
            abort_conflict_true: registry.counter("abort.conflict_true"),
            abort_conflict_false: registry.counter("abort.conflict_false"),
            abort_capacity: registry.counter("abort.capacity"),
            abort_user: registry.counter("abort.user"),
            abort_lock_fallback: registry.counter("abort.lock_fallback"),
            abort_validation: registry.counter("abort.validation"),
            abort_spurious: registry.counter("abort.spurious"),
            conflicts: registry.counter("conflict.detected"),
            false_conflicts: registry.counter("conflict.false"),
            probe_walks: registry.counter("probe.walks"),
            probe_cores_visited: registry.counter("probe.cores_visited"),
            specdir_hits: registry.counter("specdir.hits"),
            specdir_misses: registry.counter("specdir.misses"),
            retained_saves: registry.counter("retained.saves"),
            retained_folds: registry.counter("retained.folds"),
            fault_injections: registry.counter("fault.injections"),
            sched_pops: registry.counter("sched.pops"),
            teardown_walks: registry.counter("teardown.walks"),
            teardown_lines: registry.counter("teardown.lines"),
            coh_downgrades: registry.counter("coh.downgrades"),
            coh_invalidations: registry.counter("coh.invalidations"),
            l1_evictions: registry.counter("cache.l1_evictions"),
            l2_evictions: registry.counter("cache.l2_evictions"),
            l3_evictions: registry.counter("cache.l3_evictions"),
        };
        let w = cfg.interval_cycles.max(1);
        let g = Gauges {
            conflicts: registry.interval("conflicts.per_interval", w),
            false_conflicts: registry.interval("false_conflicts.per_interval", w),
            aborts: registry.interval("aborts.per_interval", w),
        };
        let mut phases = PhaseProfiler::new();
        let ph = Phases {
            sched: phases.phase("scheduler-step"),
            probe: phases.phase("probe-resolve"),
            teardown: phases.phase("teardown"),
            commit: phases.phase("commit"),
        };
        Obs { registry, phases, profile: cfg.profile, c, g, ph }
    }

    /// Counter handle for one abort cause.
    #[inline]
    pub(crate) fn abort_counter(&self, cause: AbortCause) -> CounterId {
        match cause {
            AbortCause::Conflict { is_true: true, .. } => self.c.abort_conflict_true,
            AbortCause::Conflict { is_true: false, .. } => self.c.abort_conflict_false,
            AbortCause::Capacity => self.c.abort_capacity,
            AbortCause::User => self.c.abort_user,
            AbortCause::LockFallback => self.c.abort_lock_fallback,
            AbortCause::Validation => self.c.abort_validation,
            AbortCause::Spurious => self.c.abort_spurious,
        }
    }

    /// Consume the live state into the run's report.
    pub(crate) fn into_report(self) -> ObsReport {
        ObsReport { registry: self.registry, phases: self.phases }
    }
}

/// The observability report of one finished run
/// ([`crate::machine::SimOutput::obs`]).
#[derive(Clone, Debug)]
pub struct ObsReport {
    /// Named counters and cycle-bucketed interval gauges.
    pub registry: MetricsRegistry,
    /// Wall-time-per-phase accumulators (empty histograms when profiling
    /// was disabled in [`ObsConfig`]).
    pub phases: PhaseProfiler,
}

impl ObsReport {
    /// Serialise the whole report as one JSON object:
    /// `{"schema":"asf-obs-v1","counters":{..},"intervals":{..},"phases":{..}}`.
    pub fn to_json(&self) -> String {
        let registry = self.registry.to_json();
        let registry = registry
            .trim_end()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .expect("registry JSON is an object")
            .trim_end();
        let mut out = String::from("{\n  \"schema\": \"asf-obs-v1\",");
        out.push_str(registry);
        out.push_str(",\n  \"phases\": ");
        let phases = self.phases.to_json();
        out.push_str(phases.trim_end());
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_core::detector::ConflictType;
    use asf_stats::json::parse;

    #[test]
    fn registry_has_the_advertised_counters() {
        let obs = Obs::new(ObsConfig::default());
        assert!(obs.registry.counter_count() >= 10, "schema promises ≥ 10 named counters");
        for name in ["tx.commits", "probe.walks", "specdir.hits", "retained.folds", "fault.injections"] {
            assert_eq!(obs.registry.get_by_name(name), Some(0), "missing counter {name}");
        }
        assert_eq!(obs.registry.intervals().count(), 3);
    }

    #[test]
    fn abort_causes_map_to_distinct_counters() {
        let obs = Obs::new(ObsConfig::default());
        let causes = [
            AbortCause::Conflict { kind: ConflictType::WriteAfterRead, is_true: true },
            AbortCause::Conflict { kind: ConflictType::WriteAfterRead, is_true: false },
            AbortCause::Capacity,
            AbortCause::User,
            AbortCause::LockFallback,
            AbortCause::Validation,
            AbortCause::Spurious,
        ];
        let ids: Vec<_> = causes.iter().map(|&c| obs.abort_counter(c)).collect();
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b, "abort causes must not share counters");
            }
        }
    }

    #[test]
    fn report_json_carries_all_three_sections() {
        let mut obs = Obs::new(ObsConfig { interval_cycles: 10, profile: true });
        let id = obs.c.tx_commits;
        obs.registry.inc(id);
        let g = obs.g.conflicts;
        obs.registry.bump(g, 25);
        let ph = obs.ph.probe;
        obs.phases.record(ph, std::time::Duration::from_nanos(50));
        let report = obs.into_report();
        let v = parse(&report.to_json()).expect("report JSON parses");
        assert_eq!(v.field("schema").unwrap().as_str().unwrap(), "asf-obs-v1");
        assert_eq!(
            v.field("counters").unwrap().field("tx.commits").unwrap().as_u64().unwrap(),
            1
        );
        let iv = v.field("intervals").unwrap().field("conflicts.per_interval").unwrap();
        assert_eq!(iv.field("buckets").unwrap().as_u64_vec().unwrap(), vec![0, 0, 1]);
        assert_eq!(
            v.field("phases").unwrap().field("probe-resolve").unwrap().field("count").unwrap().as_u64().unwrap(),
            1
        );
    }
}
