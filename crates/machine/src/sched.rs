//! Calendar-queue event scheduler (DESIGN.md §14).
//!
//! The engine's run queue holds one `(clock, core)` entry per live core and
//! pops the globally earliest one each step. A binary heap does this in
//! O(log n) with pointer-chasing sifts; this module replaces it with a
//! *calendar queue*: a ring of [`NBUCKETS`] cycle-window buckets, each a
//! flat `Vec` of packed `u64` event records, plus a single `u64` occupancy
//! bitmask. Popping is: rotate the occupancy mask to the current window,
//! `trailing_zeros` to the first non-empty bucket, min-scan a tiny
//! contiguous `Vec`. No sift, no branches proportional to queue depth.
//!
//! Events are packed as `clock << CORE_BITS | core`, so comparing packed
//! words *is* comparing `(clock, core)` lexicographically — the exact
//! ordering `BinaryHeap<Reverse<(u64, usize)>>` gave the engine, which the
//! golden digests encode. Ties beyond `(clock, core)` (possible only for
//! duplicate events, which the engine never produces) fall back to
//! insertion order because the min-scan takes the first occurrence and
//! removal shifts rather than swaps.
//!
//! # Invariants
//!
//! * `base` never exceeds any queued clock (pushes at or after the last
//!   popped event — true for a discrete-event loop where a core is only
//!   rescheduled from its own turn).
//! * Ring buckets hold exactly the events with `clock ∈ [base,
//!   align(base) +` [`SPAN`]`)` where `align` rounds down to a bucket
//!   boundary; later events wait in a small overflow heap and migrate into
//!   the ring as `base` advances past their window. The *aligned* limit
//!   matters: admitting a full `SPAN` past an unaligned `base` would let a
//!   far-future event alias into the current bucket (indices wrap mod
//!   [`NBUCKETS`]) and pop before nearer events in later buckets. With the
//!   aligned limit each bucket maps to a single cycle window, so window
//!   order equals rotation order and the first non-empty bucket holds the
//!   minimum.
//! * `occupancy` bit `b` is set iff `buckets[b]` is non-empty.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Buckets in the ring. Must equal the bit width of the occupancy word.
pub const NBUCKETS: usize = 64;
/// log2 of the cycle width of one bucket.
const WIDTH_SHIFT: u64 = 6;
/// Cycles covered by one bucket.
pub const BUCKET_WIDTH: u64 = 1 << WIDTH_SHIFT;
/// Cycles covered by the whole ring; events further out go to overflow.
pub const SPAN: u64 = NBUCKETS as u64 * BUCKET_WIDTH;

/// Bits reserved for the core id in a packed event record.
const CORE_BITS: u64 = 6;
/// Largest core id a packed record can carry.
pub const MAX_CORE: usize = (1 << CORE_BITS) - 1;

#[inline]
fn pack(clock: u64, core: usize) -> u64 {
    debug_assert!(core <= MAX_CORE, "core id {core} does not fit packed event");
    debug_assert!(clock < 1 << (64 - CORE_BITS), "clock {clock} overflows packed event");
    (clock << CORE_BITS) | core as u64
}

#[inline]
fn unpack(ev: u64) -> (u64, usize) {
    (ev >> CORE_BITS, (ev & MAX_CORE as u64) as usize)
}

#[inline]
fn bucket_of(clock: u64) -> usize {
    ((clock >> WIDTH_SHIFT) as usize) % NBUCKETS
}

/// Struct-of-arrays calendar queue over `(clock, core)` events.
///
/// Pop order is exactly ascending `(clock, core)` — bit-compatible with the
/// `BinaryHeap<Reverse<(u64, usize)>>` it replaces — with insertion order
/// breaking ties between fully identical events.
#[derive(Debug)]
pub struct CalendarQueue {
    buckets: Vec<Vec<u64>>,
    /// Bit `b` set iff `buckets[b]` is non-empty.
    occupancy: u64,
    /// Lower bound on every queued clock; advances monotonically.
    base: u64,
    /// Cached [`CalendarQueue::ring_limit`] for `base`: first clock the ring
    /// cannot hold. Only moves when `base` crosses a bucket boundary, which
    /// is the only moment overflow migration can admit anything.
    limit: u64,
    /// Events with `clock >=` [`CalendarQueue::ring_limit`], packed, min-heap.
    overflow: BinaryHeap<Reverse<u64>>,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> CalendarQueue {
        CalendarQueue::new()
    }
}

impl CalendarQueue {
    /// An empty queue with `base = 0`.
    pub fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occupancy: 0,
            base: 0,
            limit: SPAN,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the queue empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `core`'s next turn at `clock`.
    ///
    /// `clock` must be at or after the most recently popped event (the
    /// discrete-event contract); pushing into the past would corrupt the
    /// ring's single-window-per-bucket invariant.
    #[inline]
    pub fn push(&mut self, clock: u64, core: usize) {
        debug_assert!(clock >= self.base, "push at {clock} before queue base {}", self.base);
        let ev = pack(clock, core);
        if clock < self.ring_limit() {
            self.bucket_push(ev);
        } else {
            self.overflow.push(Reverse(ev));
        }
        self.len += 1;
    }

    /// First clock the ring cannot hold: one full span past `base`'s bucket
    /// boundary, so no two in-ring events share a bucket across windows.
    #[inline]
    fn ring_limit(&self) -> u64 {
        self.limit
    }

    /// Advance `base`, refreshing the cached ring limit and migrating
    /// overflow events whose window just entered the ring. Skipped entirely
    /// for same-bucket advances — the common case — where the limit cannot
    /// move and migration cannot admit anything.
    #[inline]
    fn advance_base(&mut self, clock: u64) {
        self.base = clock;
        let limit = (clock & !(BUCKET_WIDTH - 1)) + SPAN;
        if limit != self.limit {
            self.limit = limit;
            if !self.overflow.is_empty() {
                self.migrate_overflow();
            }
        }
    }

    /// The earliest queued event without removing it — what the next
    /// [`CalendarQueue::pop`] will return. Read-only: `base` does not
    /// advance and no overflow migration happens, which is sound because
    /// the answer does not depend on either. When the ring is occupied its
    /// first non-empty bucket (in rotation order from `base`) holds the
    /// global minimum — every overflow clock is at or past the ring limit;
    /// when the ring is empty the overflow head is the minimum directly.
    ///
    /// The epoch-parallel engine uses this to pause a shard exactly at a
    /// coherence-epoch boundary: peek, compare against the boundary, pop
    /// only if the event still belongs to this epoch.
    pub fn peek(&self) -> Option<(u64, usize)> {
        if self.len == 0 {
            return None;
        }
        if self.occupancy == 0 {
            let &Reverse(head) = self.overflow.peek().expect("len > 0 with empty ring");
            return Some(unpack(head));
        }
        let cur = bucket_of(self.base);
        let tz = self.occupancy.rotate_right(cur as u32).trailing_zeros() as usize;
        let b = (cur + tz) % NBUCKETS;
        let min = self.buckets[b]
            .iter()
            .copied()
            .min()
            .expect("occupancy bit set on empty bucket");
        Some(unpack(min))
    }

    /// Pop the earliest event: minimum `(clock, core)`, insertion order on
    /// full ties.
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        if self.len == 0 {
            return None;
        }
        if self.occupancy == 0 {
            // Ring drained: jump base to the overflow minimum and refill.
            // The jump always crosses a bucket boundary (overflow clocks sit
            // at or past the old limit), so `advance_base` migrates.
            let &Reverse(head) = self.overflow.peek().expect("len > 0 with empty ring");
            self.advance_base(unpack(head).0);
        }
        let cur = bucket_of(self.base);
        let tz = self.occupancy.rotate_right(cur as u32).trailing_zeros() as usize;
        let b = (cur + tz) % NBUCKETS;
        let bucket = &mut self.buckets[b];
        let mut min_i = 0;
        for (i, &ev) in bucket.iter().enumerate().skip(1) {
            if ev < bucket[min_i] {
                min_i = i;
            }
        }
        // Shifting `remove` (buckets hold at most a handful of events)
        // keeps relative order, preserving insertion-order tie-breaks.
        let ev = bucket.remove(min_i);
        if bucket.is_empty() {
            self.occupancy &= !(1u64 << b);
        }
        self.len -= 1;
        let (clock, core) = unpack(ev);
        self.advance_base(clock);
        Some((clock, core))
    }

    #[inline]
    fn bucket_push(&mut self, ev: u64) {
        let b = bucket_of(ev >> CORE_BITS);
        self.buckets[b].push(ev);
        self.occupancy |= 1u64 << b;
    }

    /// Pull overflow events whose window has entered the ring's span.
    #[inline]
    fn migrate_overflow(&mut self) {
        let limit = self.ring_limit();
        while let Some(&Reverse(ev)) = self.overflow.peek() {
            if (ev >> CORE_BITS) >= limit {
                break;
            }
            self.overflow.pop();
            self.bucket_push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_clock_then_core_order() {
        let mut q = CalendarQueue::new();
        q.push(5, 3);
        q.push(5, 1);
        q.push(2, 7);
        q.push(5, 0);
        assert_eq!(q.pop(), Some((2, 7)));
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), Some((5, 1)));
        assert_eq!(q.pop(), Some((5, 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        let mut q = CalendarQueue::new();
        q.push(0, 0);
        q.push(SPAN * 3 + 17, 1); // overflow
        q.push(SPAN + 1, 2); // overflow
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((0, 0)));
        assert_eq!(q.pop(), Some((SPAN + 1, 2)));
        // Push relative to the advanced base still works.
        q.push(SPAN * 3 + 17, 3);
        assert_eq!(q.pop(), Some((SPAN * 3 + 17, 1)));
        assert_eq!(q.pop(), Some((SPAN * 3 + 17, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn identical_events_pop_in_insertion_order() {
        // The engine never queues duplicates, but the tie-break is pinned
        // anyway: min-scan takes the first occurrence.
        let mut q = CalendarQueue::new();
        for _ in 0..4 {
            q.push(9, 2);
        }
        for _ in 0..4 {
            assert_eq!(q.pop(), Some((9, 2)));
        }
    }

    #[test]
    fn unaligned_base_does_not_alias_far_events_into_current_bucket() {
        // Regression: with base = 10 (mid-bucket), an event at SPAN + 5 is
        // within `base + SPAN` but its bucket index wraps onto bucket 0 —
        // the *current* bucket — so a naive span check would pop it before
        // the nearer event at clock 70 sitting in bucket 1.
        let mut q = CalendarQueue::new();
        q.push(10, 0);
        assert_eq!(q.pop(), Some((10, 0)));
        q.push(SPAN + 5, 1);
        q.push(70, 2);
        assert_eq!(q.pop(), Some((70, 2)));
        assert_eq!(q.pop(), Some((SPAN + 5, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_matches_pop_everywhere() {
        use asf_mem::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(0x9EEC);
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek(), None);
        for core in 0..8 {
            q.push(0, core);
        }
        for _ in 0..5_000 {
            let peeked = q.peek();
            let popped = q.pop();
            assert_eq!(peeked, popped);
            let (now, core) = popped.unwrap();
            // Same delta mix as the reference test, including overflow and
            // the ring-empty-with-overflow peek path.
            let delta = match rng.below(100) {
                0..=9 => 0,
                10..=79 => rng.range(1, 300),
                _ => rng.range(SPAN, SPAN * 4),
            };
            q.push(now + delta, core);
        }
    }

    /// Reference check: interleaved pushes and pops agree with
    /// `BinaryHeap<Reverse<(u64, usize)>>` on a discrete-event-shaped
    /// stream (every push at or after the last pop), including deltas that
    /// exercise the overflow heap.
    #[test]
    fn matches_binary_heap_reference() {
        use asf_mem::rng::SimRng;
        let mut rng = SimRng::seed_from_u64(0x5CED);
        let mut q = CalendarQueue::new();
        let mut h: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for core in 0..8 {
            q.push(0, core);
            h.push(Reverse((0, core)));
        }
        let mut now = 0;
        for _ in 0..20_000 {
            let (qc, qi) = q.pop().expect("queues stay populated");
            let Reverse((hc, hi)) = h.pop().unwrap();
            assert_eq!((qc, qi), (hc, hi));
            now = qc;
            // Mostly near-future deltas, occasionally far past the span
            // (mimics backoff), sometimes zero (same-cycle requeue).
            let delta = match rng.below(100) {
                0..=4 => 0,
                5..=84 => rng.range(1, 400),
                85..=91 => rng.range(400, SPAN),
                // The bucket-aliasing band: just under/over one full span,
                // where an unaligned `base` once mapped ring admissions
                // onto the current bucket.
                92..=97 => rng.range(SPAN - 70, SPAN + 70),
                _ => rng.range(SPAN, SPAN * 5),
            };
            q.push(now + delta, qi);
            h.push(Reverse((now + delta, qi)));
        }
        let _ = now;
        while let Some(got) = q.pop() {
            let Reverse(want) = h.pop().unwrap();
            assert_eq!(got, want);
        }
        assert!(h.is_empty());
    }
}
