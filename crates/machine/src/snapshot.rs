//! Lock-free progress snapshots of a running simulation.
//!
//! A [`ProgressProbe`] is a handful of atomics that a machine, once given
//! one via [`crate::machine::Machine::attach_progress_probe`], refreshes
//! every [`PUBLISH_EVERY_STEPS`] scheduler steps and at completion. Another
//! thread — the serve layer's status endpoint — reads it at any time
//! without touching the simulation.
//!
//! Transparency contract (the `FaultPlan::none()` pattern): publishing
//! copies already-maintained counters (`RunStats`, the forward-progress
//! monitor, core clocks) into relaxed atomics. It draws no randomness,
//! advances no clock, and never influences scheduling, so an attached
//! probe cannot perturb a run — `tests/serve_golden.rs` pins a probed
//! run's stats digest against an unprobed one.

use asf_core::progress::ProgressMonitor;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

/// Why a run was asked to stop early (see [`CancelToken`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelKind {
    /// A client explicitly asked for the job to be cancelled
    /// (`DELETE /v1/jobs/:id` in the serve layer).
    Client,
    /// The job's wall-clock deadline expired (the serve layer's deadline
    /// watchdog fired the token).
    Deadline,
}

impl CancelKind {
    /// Stable label (serve-layer terminal-state names).
    pub fn label(&self) -> &'static str {
        match self {
            CancelKind::Client => "cancelled",
            CancelKind::Deadline => "deadline_exceeded",
        }
    }
}

/// Cooperative cancellation flag shared between a running simulation and
/// whoever supervises it.
///
/// The machine checks the token at the same [`PUBLISH_EVERY_STEPS`] cadence
/// as the progress probe — one relaxed atomic load per 1024 scheduler
/// steps — and returns [`crate::error::SimError::Cancelled`] when it finds
/// the token fired. The token itself never touches the simulation: like
/// the probe, an attached-but-unfired token is bit-transparent (no RNG, no
/// clock, no scheduling influence), so the golden fences hold with a token
/// attached. The first `cancel` call wins; later calls (client cancel
/// racing the deadline watchdog) are ignored.
#[derive(Debug, Default)]
pub struct CancelToken {
    /// 0 = live, 1 = client cancel, 2 = deadline.
    state: AtomicU8,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fire the token. The first caller decides the kind; returns whether
    /// this call was the one that fired it.
    pub fn cancel(&self, kind: CancelKind) -> bool {
        let code = match kind {
            CancelKind::Client => 1,
            CancelKind::Deadline => 2,
        };
        self.state
            .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// The kind the token fired with, `None` while live.
    pub fn kind(&self) -> Option<CancelKind> {
        match self.state.load(Ordering::Relaxed) {
            1 => Some(CancelKind::Client),
            2 => Some(CancelKind::Deadline),
            _ => None,
        }
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }
}

/// Scheduler steps between two probe refreshes. A power of two so the
/// in-loop gate is one mask + compare.
pub const PUBLISH_EVERY_STEPS: u64 = 1024;

/// Shared snapshot of a simulation's progress. All loads/stores are
/// `Relaxed`: readers want a recent, internally *approximate* picture
/// (fields may straddle two publishes), never synchronisation.
#[derive(Debug, Default)]
pub struct ProgressProbe {
    /// Scheduler steps executed.
    steps: AtomicU64,
    /// Max core clock at the last publish — simulated cycles so far.
    cycles: AtomicU64,
    /// Distinct transactions begun.
    tx_started: AtomicU64,
    /// Committed transactions.
    tx_committed: AtomicU64,
    /// Aborted attempts.
    tx_aborted: AtomicU64,
    /// Longest abort streak any core is currently in (the forward-progress
    /// monitor's starvation signal).
    worst_streak: AtomicU64,
    /// The run finished (successfully or not) and published its final state.
    done: AtomicBool,
}

/// One coherent-enough read of a [`ProgressProbe`] (plain data, JSON-able
/// by the serve layer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Scheduler steps executed.
    pub steps: u64,
    /// Simulated cycles (max core clock) at the last publish.
    pub cycles: u64,
    /// Distinct transactions begun.
    pub tx_started: u64,
    /// Committed transactions.
    pub tx_committed: u64,
    /// Aborted attempts.
    pub tx_aborted: u64,
    /// Longest current per-core abort streak.
    pub worst_streak: u64,
    /// The run has finished.
    pub done: bool,
}

impl ProgressProbe {
    /// A fresh all-zero probe.
    pub fn new() -> ProgressProbe {
        ProgressProbe::default()
    }

    /// Publish one refresh. Called by the owning machine; `monitor` feeds
    /// the starvation signal.
    pub fn publish(
        &self,
        steps: u64,
        cycles: u64,
        tx_started: u64,
        tx_committed: u64,
        tx_aborted: u64,
        monitor: &ProgressMonitor,
    ) {
        let worst = (0..monitor.len())
            .map(|i| monitor.core(i).streak as u64)
            .max()
            .unwrap_or(0);
        self.steps.store(steps, Ordering::Relaxed);
        self.cycles.store(cycles, Ordering::Relaxed);
        self.tx_started.store(tx_started, Ordering::Relaxed);
        self.tx_committed.store(tx_committed, Ordering::Relaxed);
        self.tx_aborted.store(tx_aborted, Ordering::Relaxed);
        self.worst_streak.store(worst, Ordering::Relaxed);
    }

    /// Mark the run finished (after a final [`ProgressProbe::publish`]).
    pub fn finish(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    /// Read the current snapshot.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            steps: self.steps.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
            tx_started: self.tx_started.load(Ordering::Relaxed),
            tx_committed: self.tx_committed.load(Ordering::Relaxed),
            tx_aborted: self.tx_aborted.load(Ordering::Relaxed),
            worst_streak: self.worst_streak.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Relaxed),
        }
    }
}

impl ProgressSnapshot {
    /// Serialise as one JSON object (the serve status endpoint's
    /// `progress` field).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"steps\": {}, \"cycles\": {}, \"tx_started\": {}, \
             \"tx_committed\": {}, \"tx_aborted\": {}, \"worst_streak\": {}, \
             \"done\": {}}}",
            self.steps,
            self.cycles,
            self.tx_started,
            self.tx_committed,
            self.tx_aborted,
            self.worst_streak,
            self.done
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_first_writer_wins() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.kind(), None);
        assert!(t.cancel(CancelKind::Deadline));
        // A racing client cancel arrives second and must not overwrite.
        assert!(!t.cancel(CancelKind::Client));
        assert!(t.is_cancelled());
        assert_eq!(t.kind(), Some(CancelKind::Deadline));
        assert_eq!(t.kind().unwrap().label(), "deadline_exceeded");
        assert_eq!(CancelKind::Client.label(), "cancelled");
    }

    #[test]
    fn publish_then_snapshot_roundtrips() {
        let probe = ProgressProbe::new();
        let mut mon = ProgressMonitor::new(2);
        mon.note_attempt(1);
        mon.note_abort(1);
        mon.note_abort(1);
        probe.publish(2048, 99_000, 12, 10, 2, &mon);
        let s = probe.snapshot();
        assert_eq!(s.steps, 2048);
        assert_eq!(s.cycles, 99_000);
        assert_eq!(s.tx_started, 12);
        assert_eq!(s.tx_committed, 10);
        assert_eq!(s.tx_aborted, 2);
        assert_eq!(s.worst_streak, 2);
        assert!(!s.done);
        probe.finish();
        assert!(probe.snapshot().done);
        let json = probe.snapshot().to_json();
        assert!(json.contains("\"tx_committed\": 10"), "{json}");
        assert!(json.contains("\"done\": true"), "{json}");
    }
}
