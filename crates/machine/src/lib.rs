//! # asf-machine — the multicore HTM simulator
//!
//! A deterministic, sequential, discrete-event, cycle-approximate simulator
//! of the paper's Table II machine: N cores with private L1/L2/L3, broadcast
//! MOESI snooping, and an ASF-style best-effort HTM whose conflict detection
//! is pluggable via [`asf_core::DetectorKind`].
//!
//! ## Execution model
//!
//! Each core owns a local cycle clock. The scheduler always advances the
//! core with the smallest clock (ties broken by core id), executing one
//! operation to completion; coherence probes take effect atomically at the
//! requester's timestamp, and a victim discovers its abort before its next
//! operation. This yields bit-for-bit reproducible runs for a given seed.
//!
//! ## HTM semantics (matching §IV of the paper)
//!
//! * **Lazy versioning**: speculative stores are buffered in a per-core
//!   write set and published to the committed global memory at commit;
//!   uncommitted data is never visible to other cores.
//! * **Eager conflict detection**: every cache miss / upgrade broadcasts a
//!   probe carrying the access's byte mask; each remote core checks it
//!   against its live *and retained* speculative line state with the active
//!   detector. Requester wins; the victim aborts.
//! * **Dirty sub-blocks**: a surviving responder piggy-backs its
//!   speculatively-written sub-blocks on the data response; the requester
//!   marks them dirty and treats later local hits on dirty bytes as misses
//!   (forcing the probe that detects the Figure 6 conflicts).
//! * **Retained metadata**: a line invalidated by a false WAR conflict keeps
//!   its speculative state for conflict checking (modelled as a per-core
//!   side table).
//! * **Best effort**: speculative lines are pinned in L1; if a set cannot
//!   hold a new speculative line the transaction takes a capacity abort.
//!   After `max_retries` consecutive aborts a transaction falls back to a
//!   global software lock and executes non-transactionally (the standard
//!   ASF software contract, which also guarantees progress).
//!
//! An **isolation oracle** watches every transactional read: if it overlaps
//! a remote in-flight transaction's write set without any conflict having
//! been raised, the run records an isolation violation. With the dirty
//! mechanism enabled this count is always zero; switching it off
//! (`SimConfig::enable_dirty = false`) reproduces the atomicity hazards of
//! Figure 6 — used by the ablation bench and the integration tests.
//!
//! ```
//! use asf_core::detector::DetectorKind;
//! use asf_machine::machine::{Machine, SimConfig};
//! use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
//! use asf_mem::addr::Addr;
//!
//! // One core, one transaction: write 8 bytes, bump them, commit.
//! let w = ScriptedWorkload {
//!     name: "demo",
//!     scripts: vec![vec![WorkItem::Tx(TxAttempt::new(vec![
//!         TxOp::Write { addr: Addr(0x100), size: 8, value: 41 },
//!         TxOp::Update { addr: Addr(0x100), size: 8, delta: 1 },
//!     ]))]],
//! };
//! let out = Machine::run(&w, SimConfig::paper(DetectorKind::SubBlock(4)));
//! assert_eq!(out.memory.read_u64(Addr(0x100), 8), 42);
//! assert_eq!(out.stats.tx_committed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod error;
pub mod fault;
pub mod hier;
pub mod machine;
pub mod obs;
pub mod sched;
pub mod shard;
pub mod snapshot;
pub mod trace;
pub mod txprog;
pub mod value;

pub use error::{CoreReport, ProgressReport, SimError};
pub use fault::{FaultPlan, FaultRate};
pub use machine::{Machine, ResolutionPolicy, SimConfig, SimOutput};
pub use obs::{ObsConfig, ObsReport};
pub use snapshot::{CancelKind, CancelToken, ProgressProbe, ProgressSnapshot};
pub use shard::{EpochSpan, ScaleStats, ShardConfig, ShardEngine, ShardOutput};
pub use trace::{ChromeTraceSink, RingTrace, TraceEvent, TraceSink};
pub use txprog::{ThreadProgram, TxAttempt, TxBuilder, TxOp, WorkItem, Workload};
pub use value::GlobalMemory;
