//! Per-core private cache hierarchy: L1 with speculative metadata, plus
//! timing-only L2/L3 tag arrays, plus the retained-metadata side table —
//! and, above the per-core level, the *hierarchical fabric* model: clusters
//! of cores forming per-cluster snoop domains joined by an inter-cluster
//! directory (DESIGN.md §15).
//!
//! The paper's machine is a flat 8-core snoop domain; probes broadcast to
//! every other core. Scaling to hundreds of cores that way makes every
//! probe O(total cores). The hierarchical model keeps probes O(cluster
//! sharers): each cluster of 8–16 cores snoops internally exactly as
//! before, while cross-cluster traffic is routed by
//! [`InterClusterDirectory`] — a conservative sharer map in the style of
//! AMD's HT Assist probe filter, lifted one level up — which charges its
//! own lookup/hop latencies ([`DirLatency`]) to a fabric-occupancy budget.

use asf_core::spec::SpecState;
use asf_mem::addr::LineAddr;
use asf_mem::cache::CacheArray;
use asf_mem::config::MachineConfig;
use asf_mem::intern::LineId;
use asf_mem::latency::AccessLevel;
use asf_mem::moesi::MoesiState;
use asf_mem::fxhash::FxHashMap;

/// L1 per-line metadata: coherence state + speculative record.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineMeta {
    /// MOESI coherence state.
    pub moesi: MoesiState,
    /// Speculative access record of the local running transaction (empty
    /// when the core is not in a transaction).
    pub spec: SpecState,
}

/// One core's private hierarchy.
#[derive(Debug)]
pub struct CoreCaches {
    /// L1 data cache with speculative metadata.
    pub l1: CacheArray<LineMeta>,
    /// Timing-only L2 tag array.
    pub l2: CacheArray<()>,
    /// Timing-only L3 tag array.
    pub l3: CacheArray<()>,
    /// Speculative metadata of lines invalidated by non-conflicting remote
    /// writes (false WAR survivals): the paper keeps it "inside the
    /// invalidated cache line"; we keep it beside the cache. Checked by
    /// every incoming probe and folded back on refetch.
    pub retained: FxHashMap<LineAddr, SpecState>,
    /// Lines currently carrying speculative state (live or retained) —
    /// cleared in O(set size) at commit/abort instead of scanning the L1.
    /// Each entry carries the line's interned id so teardown can index the
    /// machine's dense spec directory without a map lookup.
    pub spec_lines: Vec<(LineAddr, LineId)>,
}

impl CoreCaches {
    /// Build an empty hierarchy per the machine configuration.
    pub fn new(cfg: &MachineConfig) -> CoreCaches {
        CoreCaches {
            l1: CacheArray::new(cfg.l1),
            l2: CacheArray::new(cfg.l2),
            l3: CacheArray::new(cfg.l3),
            retained: FxHashMap::default(),
            spec_lines: Vec::new(),
        }
    }

    /// Record that `line` now carries speculative state.
    ///
    /// The caller must guarantee the line is not already tracked — the
    /// machine pushes exactly once, on a line's empty→speculative
    /// transition, so this is a plain O(1) push (the old membership scan
    /// made large write sets quadratic). `debug_assert` keeps the contract
    /// honest in debug builds.
    #[inline]
    pub fn note_spec_line(&mut self, line: LineAddr, lid: LineId) {
        debug_assert!(
            !self.spec_lines.iter().any(|&(l, _)| l == line),
            "spec line {line:?} noted twice"
        );
        self.spec_lines.push((line, lid));
    }

    /// Where would a fill for `line` be satisfied locally (L2/L3), if at
    /// all? (L1 was already checked and missed; remote supply is decided by
    /// the fabric.)
    pub fn local_fill_level(&self, line: LineAddr) -> Option<AccessLevel> {
        if self.l2.contains(line) {
            Some(AccessLevel::L2)
        } else if self.l3.contains(line) {
            Some(AccessLevel::L3)
        } else {
            None
        }
    }

    /// Does this core hold `line` anywhere — any cache level or the
    /// retained-metadata table? This is the ground truth the machine's
    /// residency index mirrors.
    #[inline]
    pub fn holds(&self, line: LineAddr) -> bool {
        self.l1.contains(line)
            || self.l2.contains(line)
            || self.l3.contains(line)
            || self.retained.contains_key(&line)
    }

    /// Install `line` into L2 and L3 on a fill from below (timing model
    /// only). Evictions there used to be silent; they are now reported so
    /// the machine's residency index can drop cores that no longer hold the
    /// evicted lines anywhere.
    pub fn fill_outer(&mut self, line: LineAddr) -> (Option<LineAddr>, Option<LineAddr>) {
        let e2 = self
            .l2
            .insert(line, (), |_| false)
            .expect("unpinned L2 insert cannot fail")
            .map(|e| e.line);
        let e3 = self
            .l3
            .insert(line, (), |_| false)
            .expect("unpinned L3 insert cannot fail")
            .map(|e| e.line);
        (e2, e3)
    }

    /// Invalidate every level's copy of `line` (remote write probe).
    pub fn invalidate_all_levels(&mut self, line: LineAddr) -> Option<LineMeta> {
        let m = self.l1.remove(line);
        self.l2.remove(line);
        self.l3.remove(line);
        m
    }

    /// Clear all speculative state (commit or abort).
    ///
    /// `invalidate_written` — on abort, lines the transaction speculatively
    /// wrote are discarded from the L1 (their hardware data would be the
    /// speculative values); on commit they stay (now-committed data).
    ///
    /// Lines whose residency on this core may have *ended* — abort-discarded
    /// write lines and dropped retained entries — are pushed onto `dropped`
    /// so the machine can update its residency index (re-checking
    /// [`Self::holds`], since a retained line can survive in L2/L3).
    pub fn clear_spec(
        &mut self,
        invalidate_written: bool,
        dropped: &mut Vec<(LineAddr, LineId)>,
    ) {
        // Detach the list to appease the borrow checker, but hand the
        // (cleared) buffer back afterwards so its capacity is reused by the
        // next transaction instead of reallocated every commit/abort.
        let mut lines = std::mem::take(&mut self.spec_lines);
        for &(line, lid) in &lines {
            self.clear_spec_line(line, lid, invalidate_written, dropped);
        }
        lines.clear();
        self.spec_lines = lines;
        // Every retained entry's line was noted when the state was created,
        // so the per-line walk above already drained the table.
        debug_assert!(
            self.retained.is_empty(),
            "retained entries must all be tracked spec lines"
        );
    }

    /// Clear one line's speculative state: the live L1 record and any
    /// retained entry. Teardown is driven line-by-line from the tracked
    /// spec-line list so the machine can retire its spec-directory column in
    /// the same walk; the retained table is drained per-line (never
    /// `clear()`ed), which keeps its capacity pooled across attempts.
    #[inline]
    pub fn clear_spec_line(
        &mut self,
        line: LineAddr,
        lid: LineId,
        invalidate_written: bool,
        dropped: &mut Vec<(LineAddr, LineId)>,
    ) {
        if self.retained.remove(&line).is_some() {
            dropped.push((line, lid));
        }
        if let Some(meta) = self.l1.peek_mut(line) {
            let wrote = meta.spec.write_mask.any();
            meta.spec.gang_clear();
            if invalidate_written && wrote {
                self.l1.remove(line);
                self.l2.remove(line);
                self.l3.remove(line);
                dropped.push((line, lid));
            }
        }
    }

    /// Total speculative lines currently tracked (live + retained).
    pub fn spec_footprint(&self) -> usize {
        self.spec_lines.len()
    }
}

// ----------------------------------------------------------------------
// Hierarchical fabric: cluster topology + inter-cluster directory
// ----------------------------------------------------------------------

/// How the huge-tier machine's cores are grouped into snoop domains.
///
/// Cores `[c * cores_per_cluster, (c+1) * cores_per_cluster)` form cluster
/// `c`. Each cluster is one flat snoop domain (one
/// [`crate::machine::Machine`] in the shard-parallel engine); only the
/// directory sees all clusters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClusterTopology {
    /// Number of clusters (1..=64 — the directory sharer map is a `u64`
    /// bitmask).
    pub clusters: usize,
    /// Cores per cluster (1..=64 — each cluster reuses the flat machine's
    /// 64-core index structures).
    pub cores_per_cluster: usize,
}

impl ClusterTopology {
    /// Define a topology, validating both dimensions.
    pub fn new(clusters: usize, cores_per_cluster: usize) -> ClusterTopology {
        assert!(
            (1..=64).contains(&clusters),
            "cluster count {clusters} outside the directory's 1..=64 bitmask range"
        );
        assert!(
            (1..=64).contains(&cores_per_cluster),
            "cores-per-cluster {cores_per_cluster} outside the snoop domain's 1..=64 range"
        );
        ClusterTopology { clusters, cores_per_cluster }
    }

    /// Topology for `total` simulated cores: clusters of 16 (the upper end
    /// of the per-cluster snoop-domain size), or one cluster when `total`
    /// fits in a single flat domain.
    pub fn for_cores(total: usize) -> ClusterTopology {
        if total <= 16 {
            ClusterTopology::new(1, total)
        } else {
            assert!(
                total.is_multiple_of(16),
                "huge-tier core count {total} must be a multiple of the cluster size 16"
            );
            ClusterTopology::new(total / 16, 16)
        }
    }

    /// Total simulated cores.
    pub fn total_cores(&self) -> usize {
        self.clusters * self.cores_per_cluster
    }

    /// Cluster of a global core id.
    #[inline]
    pub fn cluster_of(&self, global_core: usize) -> usize {
        global_core / self.cores_per_cluster
    }

    /// First global core id of a cluster.
    #[inline]
    pub fn base_core(&self, cluster: usize) -> usize {
        cluster * self.cores_per_cluster
    }
}

/// Latency model of the inter-cluster directory, in cycles.
///
/// Cross-cluster traffic does not stall the requesting core in the
/// epoch-parallel model (delivery is deferred to the epoch barrier, which
/// already coarsens timing to the epoch length); instead the directory
/// accumulates the cycles its lookups and probe hops *would* occupy on the
/// fabric, reported as the scaling experiment's directory-occupancy column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DirLatency {
    /// One directory lookup (committed-line footprint check).
    pub lookup: u64,
    /// One routed probe hop to a sharing cluster.
    pub probe_hop: u64,
}

impl DirLatency {
    /// HT-Assist-flavoured defaults: a lookup costs about a local memory
    /// access, a routed cross-cluster hop about a remote-cache transfer.
    pub fn opteron_like() -> DirLatency {
        DirLatency { lookup: 60, probe_hop: 120 }
    }
}

/// The inter-cluster sharer directory.
///
/// Maps each line to the set of clusters that may hold speculative state
/// for it (a `u64` bitmask). *Conservative*, like the HT-Assist probe
/// filter it scales up from: clusters are added when any of their cores
/// first takes speculative state on the line and never removed — commit
/// and abort teardown are cluster-local silent events the directory does
/// not observe. Over-approximation only routes extra probes (counted, and
/// answered "no conflict"); it can never miss a cluster whose speculative
/// state matters, which is the soundness half the determinism fence pins.
#[derive(Debug, Default)]
pub struct InterClusterDirectory {
    sharers: FxHashMap<LineAddr, u64>,
    /// Directory lookups served (one per committed-line footprint).
    pub lookups: u64,
    /// Cross-cluster probes routed to sharing clusters.
    pub probes_routed: u64,
    /// Modeled fabric occupancy: lookup + hop cycles accumulated.
    pub latency_cycles: u64,
}

impl InterClusterDirectory {
    /// An empty directory.
    pub fn new() -> InterClusterDirectory {
        InterClusterDirectory::default()
    }

    /// Note that `cluster` now holds speculative state for `line`.
    #[inline]
    pub fn note(&mut self, line: LineAddr, cluster: usize) {
        *self.sharers.entry(line).or_insert(0) |= 1u64 << cluster;
    }

    /// Route one committed-write footprint for `line` from `from_cluster`:
    /// returns the bitmask of *other* clusters that may hold speculative
    /// state for the line, charging the lookup and one hop per routed
    /// target to the occupancy budget.
    pub fn route(&mut self, line: LineAddr, from_cluster: usize, lat: DirLatency) -> u64 {
        self.lookups += 1;
        self.latency_cycles += lat.lookup;
        let targets =
            self.sharers.get(&line).copied().unwrap_or(0) & !(1u64 << from_cluster);
        let hops = targets.count_ones() as u64;
        self.probes_routed += hops;
        self.latency_cycles += lat.probe_hop * hops;
        targets
    }

    /// Lines with at least one recorded sharer.
    pub fn lines(&self) -> usize {
        self.sharers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;
    use asf_mem::mask::AccessMask;

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    fn caches() -> CoreCaches {
        CoreCaches::new(&MachineConfig::tiny_l1(1))
    }

    #[test]
    fn fill_levels() {
        let mut c = caches();
        assert_eq!(c.local_fill_level(line(1)), None);
        c.fill_outer(line(1));
        assert_eq!(c.local_fill_level(line(1)), Some(AccessLevel::L2));
        c.l2.remove(line(1));
        assert_eq!(c.local_fill_level(line(1)), Some(AccessLevel::L3));
    }

    #[test]
    fn invalidate_all_levels_removes_everywhere() {
        let mut c = caches();
        c.fill_outer(line(2));
        c.l1.insert(line(2), LineMeta::default(), |_| false).unwrap();
        let m = c.invalidate_all_levels(line(2));
        assert!(m.is_some());
        assert!(!c.l1.contains(line(2)));
        assert!(!c.l2.contains(line(2)));
        assert!(!c.l3.contains(line(2)));
    }

    #[test]
    fn clear_spec_on_commit_keeps_written_lines() {
        let mut c = caches();
        let mut meta = LineMeta::default();
        meta.spec.mark_write(AccessMask::from_range(0, 8));
        meta.moesi = MoesiState::Modified;
        c.l1.insert(line(3), meta, |_| false).unwrap();
        c.note_spec_line(line(3), 3);
        c.clear_spec(false, &mut Vec::new()); // commit
        let m = c.l1.peek(line(3)).unwrap();
        assert!(m.spec.is_empty());
        assert!(c.l1.contains(line(3)));
        assert_eq!(c.spec_footprint(), 0);
    }

    #[test]
    fn clear_spec_on_abort_drops_written_lines() {
        let mut c = caches();
        let mut wmeta = LineMeta::default();
        wmeta.spec.mark_write(AccessMask::from_range(0, 8));
        c.l1.insert(line(3), wmeta, |_| false).unwrap();
        c.note_spec_line(line(3), 3);
        let mut rmeta = LineMeta::default();
        rmeta.spec.mark_read(AccessMask::from_range(0, 8));
        c.l1.insert(line(5), rmeta, |_| false).unwrap();
        c.note_spec_line(line(5), 5);
        // Retained entries are tracked spec lines too (machine invariant).
        c.retained.insert(line(7), SpecState::EMPTY);
        c.note_spec_line(line(7), 7);
        let mut dropped = Vec::new();
        c.clear_spec(true, &mut dropped); // abort
        assert!(!c.l1.contains(line(3)), "spec-written line invalidated");
        assert!(c.l1.contains(line(5)), "spec-read line survives");
        assert!(c.l1.peek(line(5)).unwrap().spec.is_empty());
        assert!(c.retained.is_empty());
        // Both the discarded write line and the dropped retained entry are
        // reported as residency-change candidates, ids attached.
        assert!(dropped.contains(&(line(3), 3)) && dropped.contains(&(line(7), 7)));
    }

    #[test]
    fn holds_sees_every_level_and_retained() {
        let mut c = caches();
        assert!(!c.holds(line(9)));
        c.fill_outer(line(9));
        assert!(c.holds(line(9)), "L2/L3 residency counts");
        c.l2.remove(line(9));
        c.l3.remove(line(9));
        assert!(!c.holds(line(9)));
        c.retained.insert(line(9), SpecState::EMPTY);
        assert!(c.holds(line(9)), "retained metadata counts");
    }

    #[test]
    fn fill_outer_reports_evictions() {
        let mut c = caches();
        // tiny_l1 outer levels are still finite: fill until something falls
        // out and check the eviction is surfaced, not silent.
        let mut evicted = None;
        for n in 0..4096 {
            let (e2, e3) = c.fill_outer(line(n));
            if e2.is_some() || e3.is_some() {
                evicted = e2.or(e3);
                break;
            }
        }
        let ev = evicted.expect("outer levels must evict eventually");
        assert!(!c.l2.contains(ev) || !c.l3.contains(ev));
    }

    #[test]
    fn clear_spec_line_drains_retained_per_line() {
        let mut c = caches();
        c.retained.insert(line(4), SpecState::EMPTY);
        let mut dropped = Vec::new();
        c.clear_spec_line(line(4), 4, true, &mut dropped);
        assert!(c.retained.is_empty());
        assert_eq!(dropped, vec![(line(4), 4)]);
        // A line with no state anywhere is a no-op.
        c.clear_spec_line(line(6), 6, true, &mut dropped);
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "noted twice")]
    fn note_spec_line_rejects_duplicates() {
        let mut c = caches();
        c.note_spec_line(line(1), 1);
        c.note_spec_line(line(1), 1);
    }

    #[test]
    fn cluster_topology_maps_cores() {
        let t = ClusterTopology::new(4, 16);
        assert_eq!(t.total_cores(), 64);
        assert_eq!(t.cluster_of(0), 0);
        assert_eq!(t.cluster_of(15), 0);
        assert_eq!(t.cluster_of(16), 1);
        assert_eq!(t.cluster_of(63), 3);
        assert_eq!(t.base_core(2), 32);
        assert_eq!(ClusterTopology::for_cores(8), ClusterTopology::new(1, 8));
        assert_eq!(ClusterTopology::for_cores(256), ClusterTopology::new(16, 16));
    }

    #[test]
    #[should_panic(expected = "multiple of the cluster size")]
    fn odd_huge_core_counts_rejected() {
        ClusterTopology::for_cores(100);
    }

    #[test]
    fn directory_routes_to_other_sharers_only() {
        let lat = DirLatency { lookup: 10, probe_hop: 100 };
        let mut d = InterClusterDirectory::new();
        // Unknown line: lookup charged, nothing routed.
        assert_eq!(d.route(line(1), 0, lat), 0);
        assert_eq!((d.lookups, d.probes_routed, d.latency_cycles), (1, 0, 10));
        d.note(line(1), 0);
        d.note(line(1), 2);
        d.note(line(1), 5);
        assert_eq!(d.lines(), 1);
        // From cluster 0: clusters 2 and 5 are targets, never the origin.
        assert_eq!(d.route(line(1), 0, lat), (1 << 2) | (1 << 5));
        assert_eq!((d.lookups, d.probes_routed, d.latency_cycles), (2, 2, 220));
        // Conservative: sharers are never dropped.
        assert_eq!(d.route(line(1), 2, lat), 1 | (1 << 5));
    }
}
