//! Per-core private cache hierarchy: L1 with speculative metadata, plus
//! timing-only L2/L3 tag arrays, plus the retained-metadata side table.

use asf_core::spec::SpecState;
use asf_mem::addr::LineAddr;
use asf_mem::cache::CacheArray;
use asf_mem::config::MachineConfig;
use asf_mem::intern::LineId;
use asf_mem::latency::AccessLevel;
use asf_mem::moesi::MoesiState;
use asf_mem::fxhash::FxHashMap;

/// L1 per-line metadata: coherence state + speculative record.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineMeta {
    /// MOESI coherence state.
    pub moesi: MoesiState,
    /// Speculative access record of the local running transaction (empty
    /// when the core is not in a transaction).
    pub spec: SpecState,
}

/// One core's private hierarchy.
#[derive(Debug)]
pub struct CoreCaches {
    /// L1 data cache with speculative metadata.
    pub l1: CacheArray<LineMeta>,
    /// Timing-only L2 tag array.
    pub l2: CacheArray<()>,
    /// Timing-only L3 tag array.
    pub l3: CacheArray<()>,
    /// Speculative metadata of lines invalidated by non-conflicting remote
    /// writes (false WAR survivals): the paper keeps it "inside the
    /// invalidated cache line"; we keep it beside the cache. Checked by
    /// every incoming probe and folded back on refetch.
    pub retained: FxHashMap<LineAddr, SpecState>,
    /// Lines currently carrying speculative state (live or retained) —
    /// cleared in O(set size) at commit/abort instead of scanning the L1.
    /// Each entry carries the line's interned id so teardown can index the
    /// machine's dense spec directory without a map lookup.
    pub spec_lines: Vec<(LineAddr, LineId)>,
}

impl CoreCaches {
    /// Build an empty hierarchy per the machine configuration.
    pub fn new(cfg: &MachineConfig) -> CoreCaches {
        CoreCaches {
            l1: CacheArray::new(cfg.l1),
            l2: CacheArray::new(cfg.l2),
            l3: CacheArray::new(cfg.l3),
            retained: FxHashMap::default(),
            spec_lines: Vec::new(),
        }
    }

    /// Record that `line` now carries speculative state.
    ///
    /// The caller must guarantee the line is not already tracked — the
    /// machine pushes exactly once, on a line's empty→speculative
    /// transition, so this is a plain O(1) push (the old membership scan
    /// made large write sets quadratic). `debug_assert` keeps the contract
    /// honest in debug builds.
    #[inline]
    pub fn note_spec_line(&mut self, line: LineAddr, lid: LineId) {
        debug_assert!(
            !self.spec_lines.iter().any(|&(l, _)| l == line),
            "spec line {line:?} noted twice"
        );
        self.spec_lines.push((line, lid));
    }

    /// Where would a fill for `line` be satisfied locally (L2/L3), if at
    /// all? (L1 was already checked and missed; remote supply is decided by
    /// the fabric.)
    pub fn local_fill_level(&self, line: LineAddr) -> Option<AccessLevel> {
        if self.l2.contains(line) {
            Some(AccessLevel::L2)
        } else if self.l3.contains(line) {
            Some(AccessLevel::L3)
        } else {
            None
        }
    }

    /// Does this core hold `line` anywhere — any cache level or the
    /// retained-metadata table? This is the ground truth the machine's
    /// residency index mirrors.
    #[inline]
    pub fn holds(&self, line: LineAddr) -> bool {
        self.l1.contains(line)
            || self.l2.contains(line)
            || self.l3.contains(line)
            || self.retained.contains_key(&line)
    }

    /// Install `line` into L2 and L3 on a fill from below (timing model
    /// only). Evictions there used to be silent; they are now reported so
    /// the machine's residency index can drop cores that no longer hold the
    /// evicted lines anywhere.
    pub fn fill_outer(&mut self, line: LineAddr) -> (Option<LineAddr>, Option<LineAddr>) {
        let e2 = self
            .l2
            .insert(line, (), |_| false)
            .expect("unpinned L2 insert cannot fail")
            .map(|e| e.line);
        let e3 = self
            .l3
            .insert(line, (), |_| false)
            .expect("unpinned L3 insert cannot fail")
            .map(|e| e.line);
        (e2, e3)
    }

    /// Invalidate every level's copy of `line` (remote write probe).
    pub fn invalidate_all_levels(&mut self, line: LineAddr) -> Option<LineMeta> {
        let m = self.l1.remove(line);
        self.l2.remove(line);
        self.l3.remove(line);
        m
    }

    /// Clear all speculative state (commit or abort).
    ///
    /// `invalidate_written` — on abort, lines the transaction speculatively
    /// wrote are discarded from the L1 (their hardware data would be the
    /// speculative values); on commit they stay (now-committed data).
    ///
    /// Lines whose residency on this core may have *ended* — abort-discarded
    /// write lines and dropped retained entries — are pushed onto `dropped`
    /// so the machine can update its residency index (re-checking
    /// [`Self::holds`], since a retained line can survive in L2/L3).
    pub fn clear_spec(
        &mut self,
        invalidate_written: bool,
        dropped: &mut Vec<(LineAddr, LineId)>,
    ) {
        // Detach the list to appease the borrow checker, but hand the
        // (cleared) buffer back afterwards so its capacity is reused by the
        // next transaction instead of reallocated every commit/abort.
        let mut lines = std::mem::take(&mut self.spec_lines);
        for &(line, lid) in &lines {
            self.clear_spec_line(line, lid, invalidate_written, dropped);
        }
        lines.clear();
        self.spec_lines = lines;
        // Every retained entry's line was noted when the state was created,
        // so the per-line walk above already drained the table.
        debug_assert!(
            self.retained.is_empty(),
            "retained entries must all be tracked spec lines"
        );
    }

    /// Clear one line's speculative state: the live L1 record and any
    /// retained entry. Teardown is driven line-by-line from the tracked
    /// spec-line list so the machine can retire its spec-directory column in
    /// the same walk; the retained table is drained per-line (never
    /// `clear()`ed), which keeps its capacity pooled across attempts.
    #[inline]
    pub fn clear_spec_line(
        &mut self,
        line: LineAddr,
        lid: LineId,
        invalidate_written: bool,
        dropped: &mut Vec<(LineAddr, LineId)>,
    ) {
        if self.retained.remove(&line).is_some() {
            dropped.push((line, lid));
        }
        if let Some(meta) = self.l1.peek_mut(line) {
            let wrote = meta.spec.write_mask.any();
            meta.spec.gang_clear();
            if invalidate_written && wrote {
                self.l1.remove(line);
                self.l2.remove(line);
                self.l3.remove(line);
                dropped.push((line, lid));
            }
        }
    }

    /// Total speculative lines currently tracked (live + retained).
    pub fn spec_footprint(&self) -> usize {
        self.spec_lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;
    use asf_mem::mask::AccessMask;

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    fn caches() -> CoreCaches {
        CoreCaches::new(&MachineConfig::tiny_l1(1))
    }

    #[test]
    fn fill_levels() {
        let mut c = caches();
        assert_eq!(c.local_fill_level(line(1)), None);
        c.fill_outer(line(1));
        assert_eq!(c.local_fill_level(line(1)), Some(AccessLevel::L2));
        c.l2.remove(line(1));
        assert_eq!(c.local_fill_level(line(1)), Some(AccessLevel::L3));
    }

    #[test]
    fn invalidate_all_levels_removes_everywhere() {
        let mut c = caches();
        c.fill_outer(line(2));
        c.l1.insert(line(2), LineMeta::default(), |_| false).unwrap();
        let m = c.invalidate_all_levels(line(2));
        assert!(m.is_some());
        assert!(!c.l1.contains(line(2)));
        assert!(!c.l2.contains(line(2)));
        assert!(!c.l3.contains(line(2)));
    }

    #[test]
    fn clear_spec_on_commit_keeps_written_lines() {
        let mut c = caches();
        let mut meta = LineMeta::default();
        meta.spec.mark_write(AccessMask::from_range(0, 8));
        meta.moesi = MoesiState::Modified;
        c.l1.insert(line(3), meta, |_| false).unwrap();
        c.note_spec_line(line(3), 3);
        c.clear_spec(false, &mut Vec::new()); // commit
        let m = c.l1.peek(line(3)).unwrap();
        assert!(m.spec.is_empty());
        assert!(c.l1.contains(line(3)));
        assert_eq!(c.spec_footprint(), 0);
    }

    #[test]
    fn clear_spec_on_abort_drops_written_lines() {
        let mut c = caches();
        let mut wmeta = LineMeta::default();
        wmeta.spec.mark_write(AccessMask::from_range(0, 8));
        c.l1.insert(line(3), wmeta, |_| false).unwrap();
        c.note_spec_line(line(3), 3);
        let mut rmeta = LineMeta::default();
        rmeta.spec.mark_read(AccessMask::from_range(0, 8));
        c.l1.insert(line(5), rmeta, |_| false).unwrap();
        c.note_spec_line(line(5), 5);
        // Retained entries are tracked spec lines too (machine invariant).
        c.retained.insert(line(7), SpecState::EMPTY);
        c.note_spec_line(line(7), 7);
        let mut dropped = Vec::new();
        c.clear_spec(true, &mut dropped); // abort
        assert!(!c.l1.contains(line(3)), "spec-written line invalidated");
        assert!(c.l1.contains(line(5)), "spec-read line survives");
        assert!(c.l1.peek(line(5)).unwrap().spec.is_empty());
        assert!(c.retained.is_empty());
        // Both the discarded write line and the dropped retained entry are
        // reported as residency-change candidates, ids attached.
        assert!(dropped.contains(&(line(3), 3)) && dropped.contains(&(line(7), 7)));
    }

    #[test]
    fn holds_sees_every_level_and_retained() {
        let mut c = caches();
        assert!(!c.holds(line(9)));
        c.fill_outer(line(9));
        assert!(c.holds(line(9)), "L2/L3 residency counts");
        c.l2.remove(line(9));
        c.l3.remove(line(9));
        assert!(!c.holds(line(9)));
        c.retained.insert(line(9), SpecState::EMPTY);
        assert!(c.holds(line(9)), "retained metadata counts");
    }

    #[test]
    fn fill_outer_reports_evictions() {
        let mut c = caches();
        // tiny_l1 outer levels are still finite: fill until something falls
        // out and check the eviction is surfaced, not silent.
        let mut evicted = None;
        for n in 0..4096 {
            let (e2, e3) = c.fill_outer(line(n));
            if e2.is_some() || e3.is_some() {
                evicted = e2.or(e3);
                break;
            }
        }
        let ev = evicted.expect("outer levels must evict eventually");
        assert!(!c.l2.contains(ev) || !c.l3.contains(ev));
    }

    #[test]
    fn clear_spec_line_drains_retained_per_line() {
        let mut c = caches();
        c.retained.insert(line(4), SpecState::EMPTY);
        let mut dropped = Vec::new();
        c.clear_spec_line(line(4), 4, true, &mut dropped);
        assert!(c.retained.is_empty());
        assert_eq!(dropped, vec![(line(4), 4)]);
        // A line with no state anywhere is a no-op.
        c.clear_spec_line(line(6), 6, true, &mut dropped);
        assert_eq!(dropped.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "noted twice")]
    fn note_spec_line_rejects_duplicates() {
        let mut c = caches();
        c.note_spec_line(line(1), 1);
        c.note_spec_line(line(1), 1);
    }
}
