//! Per-core private cache hierarchy: L1 with speculative metadata, plus
//! timing-only L2/L3 tag arrays, plus the retained-metadata side table.

use asf_core::spec::SpecState;
use asf_mem::addr::LineAddr;
use asf_mem::cache::CacheArray;
use asf_mem::config::MachineConfig;
use asf_mem::latency::AccessLevel;
use asf_mem::moesi::MoesiState;
use asf_mem::fxhash::FxHashMap;

/// L1 per-line metadata: coherence state + speculative record.
#[derive(Clone, Copy, Debug, Default)]
pub struct LineMeta {
    /// MOESI coherence state.
    pub moesi: MoesiState,
    /// Speculative access record of the local running transaction (empty
    /// when the core is not in a transaction).
    pub spec: SpecState,
}

/// One core's private hierarchy.
#[derive(Debug)]
pub struct CoreCaches {
    /// L1 data cache with speculative metadata.
    pub l1: CacheArray<LineMeta>,
    /// Timing-only L2 tag array.
    pub l2: CacheArray<()>,
    /// Timing-only L3 tag array.
    pub l3: CacheArray<()>,
    /// Speculative metadata of lines invalidated by non-conflicting remote
    /// writes (false WAR survivals): the paper keeps it "inside the
    /// invalidated cache line"; we keep it beside the cache. Checked by
    /// every incoming probe and folded back on refetch.
    pub retained: FxHashMap<LineAddr, SpecState>,
    /// Lines currently carrying speculative state (live or retained) —
    /// cleared in O(set size) at commit/abort instead of scanning the L1.
    pub spec_lines: Vec<LineAddr>,
}

impl CoreCaches {
    /// Build an empty hierarchy per the machine configuration.
    pub fn new(cfg: &MachineConfig) -> CoreCaches {
        CoreCaches {
            l1: CacheArray::new(cfg.l1),
            l2: CacheArray::new(cfg.l2),
            l3: CacheArray::new(cfg.l3),
            retained: FxHashMap::default(),
            spec_lines: Vec::new(),
        }
    }

    /// Record that `line` now carries speculative state.
    pub fn note_spec_line(&mut self, line: LineAddr) {
        if !self.spec_lines.contains(&line) {
            self.spec_lines.push(line);
        }
    }

    /// Where would a fill for `line` be satisfied locally (L2/L3), if at
    /// all? (L1 was already checked and missed; remote supply is decided by
    /// the fabric.)
    pub fn local_fill_level(&self, line: LineAddr) -> Option<AccessLevel> {
        if self.l2.contains(line) {
            Some(AccessLevel::L2)
        } else if self.l3.contains(line) {
            Some(AccessLevel::L3)
        } else {
            None
        }
    }

    /// Install `line` into L2 and L3 on a fill from below (timing model
    /// only; evictions there are silent).
    pub fn fill_outer(&mut self, line: LineAddr) {
        let _ = self.l2.insert(line, (), |_| false);
        let _ = self.l3.insert(line, (), |_| false);
    }

    /// Invalidate every level's copy of `line` (remote write probe).
    pub fn invalidate_all_levels(&mut self, line: LineAddr) -> Option<LineMeta> {
        let m = self.l1.remove(line);
        self.l2.remove(line);
        self.l3.remove(line);
        m
    }

    /// Clear all speculative state (commit or abort).
    ///
    /// `invalidate_written` — on abort, lines the transaction speculatively
    /// wrote are discarded from the L1 (their hardware data would be the
    /// speculative values); on commit they stay (now-committed data).
    pub fn clear_spec(&mut self, invalidate_written: bool) {
        // Detach the list to appease the borrow checker, but hand the
        // (cleared) buffer back afterwards so its capacity is reused by the
        // next transaction instead of reallocated every commit/abort.
        let mut lines = std::mem::take(&mut self.spec_lines);
        for &line in &lines {
            if let Some(meta) = self.l1.peek_mut(line) {
                let wrote = meta.spec.write_mask.any();
                meta.spec.gang_clear();
                if invalidate_written && wrote {
                    self.l1.remove(line);
                    self.l2.remove(line);
                    self.l3.remove(line);
                }
            }
        }
        lines.clear();
        self.spec_lines = lines;
        self.retained.clear();
    }

    /// Total speculative lines currently tracked (live + retained).
    pub fn spec_footprint(&self) -> usize {
        self.spec_lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asf_mem::addr::Addr;
    use asf_mem::mask::AccessMask;

    fn line(n: u64) -> LineAddr {
        Addr(n * 64).line()
    }

    fn caches() -> CoreCaches {
        CoreCaches::new(&MachineConfig::tiny_l1(1))
    }

    #[test]
    fn fill_levels() {
        let mut c = caches();
        assert_eq!(c.local_fill_level(line(1)), None);
        c.fill_outer(line(1));
        assert_eq!(c.local_fill_level(line(1)), Some(AccessLevel::L2));
        c.l2.remove(line(1));
        assert_eq!(c.local_fill_level(line(1)), Some(AccessLevel::L3));
    }

    #[test]
    fn invalidate_all_levels_removes_everywhere() {
        let mut c = caches();
        c.fill_outer(line(2));
        c.l1.insert(line(2), LineMeta::default(), |_| false).unwrap();
        let m = c.invalidate_all_levels(line(2));
        assert!(m.is_some());
        assert!(!c.l1.contains(line(2)));
        assert!(!c.l2.contains(line(2)));
        assert!(!c.l3.contains(line(2)));
    }

    #[test]
    fn clear_spec_on_commit_keeps_written_lines() {
        let mut c = caches();
        let mut meta = LineMeta::default();
        meta.spec.mark_write(AccessMask::from_range(0, 8));
        meta.moesi = MoesiState::Modified;
        c.l1.insert(line(3), meta, |_| false).unwrap();
        c.note_spec_line(line(3));
        c.clear_spec(false); // commit
        let m = c.l1.peek(line(3)).unwrap();
        assert!(m.spec.is_empty());
        assert!(c.l1.contains(line(3)));
        assert_eq!(c.spec_footprint(), 0);
    }

    #[test]
    fn clear_spec_on_abort_drops_written_lines() {
        let mut c = caches();
        let mut wmeta = LineMeta::default();
        wmeta.spec.mark_write(AccessMask::from_range(0, 8));
        c.l1.insert(line(3), wmeta, |_| false).unwrap();
        c.note_spec_line(line(3));
        let mut rmeta = LineMeta::default();
        rmeta.spec.mark_read(AccessMask::from_range(0, 8));
        c.l1.insert(line(5), rmeta, |_| false).unwrap();
        c.note_spec_line(line(5));
        c.retained.insert(line(7), SpecState::EMPTY);
        c.clear_spec(true); // abort
        assert!(!c.l1.contains(line(3)), "spec-written line invalidated");
        assert!(c.l1.contains(line(5)), "spec-read line survives");
        assert!(c.l1.peek(line(5)).unwrap().spec.is_empty());
        assert!(c.retained.is_empty());
    }

    #[test]
    fn note_spec_line_dedups() {
        let mut c = caches();
        c.note_spec_line(line(1));
        c.note_spec_line(line(1));
        assert_eq!(c.spec_footprint(), 1);
    }
}
