//! Deterministic fault injection (the robustness layer).
//!
//! ASF is *best-effort*: real hardware aborts transactions for reasons the
//! program never caused — interrupts, TLB misses, cache-way pressure from
//! unrelated data, slow coherence responses. The paper's §V-A backoff
//! manager and the software fallback lock exist to survive exactly this
//! noise, but a simulator that never produces the noise cannot demonstrate
//! that they do. A [`FaultPlan`] makes the noise first-class and
//! *deterministic*: every injection decision is drawn from a dedicated RNG
//! stream derived from the run seed, so a faulty run is exactly as
//! reproducible as a clean one — and a plan with all rates at zero draws
//! nothing at all, leaving the run bit-identical to a build without the
//! fault layer.

use asf_mem::rng::SimRng;

/// Rate of one fault class, as a `num`-in-`den` chance per opportunity.
/// `num == 0` disables the class without consuming randomness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultRate {
    /// Numerator (0 = never fire).
    pub num: u32,
    /// Denominator (must be positive).
    pub den: u32,
}

impl FaultRate {
    /// Disabled: never fires, never draws.
    pub const NEVER: FaultRate = FaultRate { num: 0, den: 1 };
    /// Fires at every opportunity (maximal pressure).
    pub const ALWAYS: FaultRate = FaultRate { num: 1, den: 1 };

    /// A `num`-in-`den` rate.
    pub fn new(num: u32, den: u32) -> FaultRate {
        assert!(den > 0, "fault-rate denominator must be positive");
        FaultRate { num, den }
    }

    /// True when this class can fire at all.
    pub fn enabled(&self) -> bool {
        self.num > 0
    }

    /// Draw one injection decision. Zero rates short-circuit without
    /// touching the RNG, so a disabled class cannot perturb the stream.
    #[inline]
    pub fn fires(&self, rng: &mut SimRng) -> bool {
        self.num > 0 && rng.chance(self.num as u64, self.den as u64)
    }
}

/// Per-run fault-injection plan, carried in
/// [`crate::machine::SimConfig::faults`]. The default ([`FaultPlan::none`])
/// disables every class; such a run is bit-identical to one predating the
/// fault layer (the golden-stats fence enforces this).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Per transactional operation: abort the attempt spuriously (models
    /// ASF's transient-abort class — interrupts, TLB misses, …).
    pub spurious_abort: FaultRate,
    /// Per in-transaction core visited by a probe: raise a false conflict
    /// and abort that victim even though its speculative state does not
    /// overlap (models transient coherence glitches).
    pub false_probe_conflict: FaultRate,
    /// Per transactional L1 fill: open a capacity-pressure window pinning
    /// the victim core's L1 ways for [`FaultPlan::spike_cycles`]; fills
    /// during the window take ordinary capacity aborts.
    pub capacity_spike: FaultRate,
    /// Length of one capacity-pressure window, in cycles.
    pub spike_cycles: u64,
    /// Per probe: delay the coherence response by
    /// [`FaultPlan::delay_cycles`] extra cycles.
    pub delayed_probe: FaultRate,
    /// Extra latency of one delayed coherence response, in cycles.
    pub delay_cycles: u64,
}

impl FaultPlan {
    /// No injection at all (the default; bit-transparent).
    pub const fn none() -> FaultPlan {
        FaultPlan {
            spurious_abort: FaultRate::NEVER,
            false_probe_conflict: FaultRate::NEVER,
            capacity_spike: FaultRate::NEVER,
            spike_cycles: 0,
            delayed_probe: FaultRate::NEVER,
            delay_cycles: 0,
        }
    }

    /// Light background noise: the "healthy production machine" profile.
    pub fn light() -> FaultPlan {
        FaultPlan {
            spurious_abort: FaultRate::new(1, 64),
            false_probe_conflict: FaultRate::new(1, 128),
            capacity_spike: FaultRate::new(1, 256),
            spike_cycles: 2_000,
            delayed_probe: FaultRate::new(1, 64),
            delay_cycles: 200,
        }
    }

    /// Heavy adversarial pressure on every class at once.
    pub fn heavy() -> FaultPlan {
        FaultPlan {
            spurious_abort: FaultRate::new(1, 8),
            false_probe_conflict: FaultRate::new(1, 16),
            capacity_spike: FaultRate::new(1, 64),
            spike_cycles: 5_000,
            delayed_probe: FaultRate::new(1, 8),
            delay_cycles: 500,
        }
    }

    /// Maximal spurious-abort pressure: every transactional operation
    /// aborts, so *no* transaction can ever commit in hardware. The
    /// forward-progress guarantee (backoff → fallback lock) is the only
    /// thing standing between this plan and a livelock.
    pub fn max_spurious() -> FaultPlan {
        FaultPlan { spurious_abort: FaultRate::ALWAYS, ..FaultPlan::none() }
    }

    /// True when any class can fire. The machine skips every injection
    /// site (and every RNG draw) when this is false.
    pub fn enabled(&self) -> bool {
        self.spurious_abort.enabled()
            || self.false_probe_conflict.enabled()
            || self.capacity_spike.enabled()
            || self.delayed_probe.enabled()
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_rates_never_draw() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!FaultRate::NEVER.fires(&mut a));
        }
        // The stream was never consumed: both RNGs still agree.
        assert_eq!(a.below(1 << 40), b.below(1 << 40));
    }

    #[test]
    fn always_fires() {
        let mut rng = SimRng::seed_from_u64(2);
        assert!((0..100).all(|_| FaultRate::ALWAYS.fires(&mut rng)));
    }

    #[test]
    fn rates_are_roughly_calibrated() {
        let mut rng = SimRng::seed_from_u64(3);
        let r = FaultRate::new(1, 4);
        let hits = (0..10_000).filter(|_| r.fires(&mut rng)).count();
        assert!((2_000..3_000).contains(&hits), "1-in-4 fired {hits}/10000");
    }

    #[test]
    fn plan_enablement() {
        assert!(!FaultPlan::none().enabled());
        assert!(FaultPlan::light().enabled());
        assert!(FaultPlan::heavy().enabled());
        assert!(FaultPlan::max_spurious().enabled());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }
}
