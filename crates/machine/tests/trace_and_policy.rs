//! Tests for the tracing subsystem and the conflict-resolution policy
//! ablation.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, ResolutionPolicy, SimConfig};
use asf_machine::trace::TraceEvent;
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;

fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(TxAttempt::new(ops))
}

fn contended() -> ScriptedWorkload {
    ScriptedWorkload {
        name: "contended",
        scripts: vec![
            vec![tx(vec![
                TxOp::Update { addr: Addr(0x1000), size: 8, delta: 1 },
                TxOp::Compute { cycles: 600 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 200 },
                TxOp::Update { addr: Addr(0x1000), size: 8, delta: 1 },
                TxOp::Compute { cycles: 600 },
            ])],
        ],
    }
}

fn cfg(policy: ResolutionPolicy) -> SimConfig {
    let mut c = SimConfig::paper(DetectorKind::Baseline);
    c.machine = MachineConfig::opteron_with_cores(2);
    c.resolution = policy;
    c
}

#[test]
fn trace_records_full_lifecycle() {
    let mut m = Machine::new(&contended(), cfg(ResolutionPolicy::RequesterWins));
    m.enable_trace(10_000);
    let out = m.run_to_completion();
    let trace = out.trace.expect("tracing enabled");
    assert!(!trace.is_empty());
    let begins = trace.count(|e| matches!(e, TraceEvent::TxBegin { .. }));
    let commits = trace.count(|e| matches!(e, TraceEvent::TxCommit { .. }));
    let aborts = trace.count(|e| matches!(e, TraceEvent::TxAbort { .. }));
    let probes = trace.count(|e| matches!(e, TraceEvent::Probe { .. }));
    let conflicts = trace.count(|e| matches!(e, TraceEvent::Conflict { .. }));
    assert_eq!(commits as u64, out.stats.tx_committed);
    assert_eq!(aborts as u64, out.stats.tx_aborted);
    assert_eq!(begins as u64, out.stats.tx_attempts);
    assert_eq!(probes as u64, out.stats.probes);
    assert_eq!(conflicts as u64, out.stats.conflicts.total());
    // The rendered log mentions the conflicting line.
    assert!(trace.render().contains("0x1000"));
}

#[test]
fn trace_absent_when_not_enabled() {
    let out = Machine::run(&contended(), cfg(ResolutionPolicy::RequesterWins));
    assert!(out.trace.is_none());
}

#[test]
fn requester_wins_aborts_the_victim() {
    // Core 1 probes into core 0's running txn: core 0 must be the one
    // aborting under requester-wins.
    let mut m = Machine::new(&contended(), cfg(ResolutionPolicy::RequesterWins));
    m.enable_trace(1000);
    let out = m.run_to_completion();
    let trace = out.trace.unwrap();
    let victims: Vec<usize> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::Conflict { victim, .. } => Some(*victim),
            _ => None,
        })
        .collect();
    assert!(!victims.is_empty());
    assert!(victims.contains(&0), "core 0 (earlier txn) should be a victim");
}

#[test]
fn victim_wins_aborts_the_requester() {
    let mut m = Machine::new(&contended(), cfg(ResolutionPolicy::VictimWins));
    m.enable_trace(1000);
    let out = m.run_to_completion();
    let trace = out.trace.unwrap();
    // Under victim-wins the conflict's requester is the one that aborts.
    let pairs: Vec<(usize, usize)> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::Conflict { requester, victim, .. } => Some((*requester, *victim)),
            _ => None,
        })
        .collect();
    assert!(!pairs.is_empty());
    // Core 1 arrives second and probes core 0; core 1 must abort itself.
    assert!(pairs.iter().any(|&(r, v)| r == 1 && v == 0));
    let abort_cores: Vec<usize> = trace
        .events()
        .filter_map(|e| match e {
            TraceEvent::TxAbort { core, .. } => Some(*core),
            _ => None,
        })
        .collect();
    assert!(abort_cores.contains(&1), "requester must abort under victim-wins");
    // Still serializable.
    assert_eq!(out.memory.read_u64(Addr(0x1000), 8), 2);
    assert_eq!(out.stats.isolation_violations, 0);
}

#[test]
fn both_policies_preserve_serializability_under_load() {
    let mk = || {
        let item = tx(vec![
            TxOp::Update { addr: Addr(0x2000), size: 8, delta: 1 },
            TxOp::Compute { cycles: 50 },
        ]);
        ScriptedWorkload { name: "load", scripts: (0..4).map(|_| vec![item.clone(); 20]).collect() }
    };
    for policy in [ResolutionPolicy::RequesterWins, ResolutionPolicy::VictimWins] {
        let mut c = SimConfig::paper(DetectorKind::SubBlock(4));
        c.machine = MachineConfig::opteron_with_cores(4);
        c.resolution = policy;
        let out = Machine::run(&mk(), c);
        assert_eq!(out.memory.read_u64(Addr(0x2000), 8), 80, "{policy:?}");
        assert_eq!(out.stats.isolation_violations, 0, "{policy:?}");
        assert_eq!(out.stats.tx_committed, 80, "{policy:?}");
    }
}

#[test]
fn victim_wins_nack_leaves_remote_state_intact() {
    // After core 1's NACKed probe, core 0's transaction must still be
    // running and commit its value first.
    let out = Machine::run(&contended(), cfg(ResolutionPolicy::VictimWins));
    assert_eq!(out.memory.read_u64(Addr(0x1000), 8), 2);
    // Core 0 never aborts in this scenario under victim-wins.
    assert!(out.stats.tx_aborted >= 1, "core 1 retried at least once");
}

#[test]
fn mesi_ablation_preserves_semantics_but_shifts_data_supply() {
    use asf_mem::moesi::CoherenceKind;
    // Writer publishes a line; many readers pull it repeatedly. Under MOESI
    // the dirty owner keeps supplying (remote-cache latency); under MESI the
    // first read demotes to Shared and later reads fill from the local
    // hierarchy/memory.
    let writer = tx(vec![TxOp::Write { addr: Addr(0x9000), size: 8, value: 1 }]);
    // Readers start well after the writer committed; the second reader
    // starts after the first has pulled the line, so the M→O (MOESI) vs
    // M→S (MESI) difference decides who supplies its data.
    let reader = |start: u64| {
        tx(vec![
            TxOp::WaitUntil { cycle: start },
            TxOp::Read { addr: Addr(0x9000), size: 8 },
            TxOp::Compute { cycles: 100 },
        ])
    };
    let mk = || ScriptedWorkload {
        name: "mesi",
        scripts: vec![
            vec![writer.clone()],
            vec![reader(1_000)],
            vec![reader(2_000)],
        ],
    };
    let run = |kind: CoherenceKind| {
        let mut c = SimConfig::paper(DetectorKind::Baseline);
        c.machine = MachineConfig::opteron_with_cores(3);
        c.coherence = kind;
        Machine::run(&mk(), c)
    };
    let moesi = run(CoherenceKind::Moesi);
    let mesi = run(CoherenceKind::Mesi);
    // Same committed work, same conflicts, no violations under either.
    assert_eq!(moesi.stats.tx_committed, mesi.stats.tx_committed);
    assert_eq!(moesi.stats.isolation_violations, 0);
    assert_eq!(mesi.stats.isolation_violations, 0);
    // Timing differs: the protocols route data differently.
    assert_ne!(moesi.stats.cycles, mesi.stats.cycles, "ablation must be visible");
}
