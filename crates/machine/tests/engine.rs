//! Behavioural tests of the simulator engine: commit/abort semantics,
//! false-sharing outcomes per detector, the Figure 6 dirty-state scenarios,
//! capacity aborts and the fallback lock, and serializability.

use asf_core::detector::DetectorKind;
use asf_machine::machine::{Machine, SimConfig};
use asf_machine::txprog::{ScriptedWorkload, TxAttempt, TxOp, WorkItem};
use asf_mem::addr::Addr;
use asf_mem::config::MachineConfig;

fn cfg(detector: DetectorKind, cores: usize) -> SimConfig {
    let mut c = SimConfig::paper(detector);
    c.machine = MachineConfig::opteron_with_cores(cores);
    c
}

fn tx(ops: Vec<TxOp>) -> WorkItem {
    WorkItem::Tx(TxAttempt::new(ops))
}

#[test]
fn single_core_commit_publishes_values() {
    let w = ScriptedWorkload {
        name: "single",
        scripts: vec![vec![tx(vec![
            TxOp::Write { addr: Addr(0x100), size: 8, value: 42 },
            TxOp::Update { addr: Addr(0x100), size: 8, delta: 8 },
            TxOp::Write { addr: Addr(0x200), size: 4, value: 7 },
        ])]],
    };
    let out = Machine::run(&w, cfg(DetectorKind::Baseline, 1));
    assert_eq!(out.memory.read_u64(Addr(0x100), 8), 50);
    assert_eq!(out.memory.read_u64(Addr(0x200), 4), 7);
    assert_eq!(out.stats.tx_started, 1);
    assert_eq!(out.stats.tx_committed, 1);
    assert_eq!(out.stats.tx_aborted, 0);
    assert_eq!(out.stats.conflicts.total(), 0);
    assert!(out.stats.cycles > 0);
}

#[test]
fn uncommitted_writes_stay_invisible() {
    // A transaction that only ever aborts (user abort, then the machine
    // gives up via fallback... here we let it commit on a later retry) —
    // simpler: check that memory after a *user-aborted* attempt retried to
    // success holds exactly one application of the ops.
    let w = ScriptedWorkload {
        name: "retry-once",
        scripts: vec![vec![tx(vec![
            TxOp::Update { addr: Addr(0x40), size: 8, delta: 1 },
            // 50% chance per attempt; deterministic seed makes this stable,
            // and replays re-read memory so the committed delta is exactly 1.
            TxOp::UserAbort { num: 1, den: 2 },
        ])]],
    };
    let out = Machine::run(&w, cfg(DetectorKind::Baseline, 1));
    assert_eq!(out.memory.read_u64(Addr(0x40), 8), 1, "exactly one committed increment");
    assert_eq!(out.stats.tx_committed, 1);
    assert_eq!(out.stats.tx_attempts, out.stats.tx_aborted + 1);
}

/// Reader/writer false sharing: core 0 speculatively reads bytes 0..8, core
/// 1 writes bytes 32..40 of the same line — the false-sharing archetype the
/// sub-blocking technique resolves. (Write/write false sharing is *not*
/// resolved by design: the WAW-any rule, paper §IV-D-2.)
fn false_sharing_workload() -> ScriptedWorkload {
    ScriptedWorkload {
        name: "false-share",
        scripts: vec![
            vec![tx(vec![
                TxOp::Read { addr: Addr(0x1000), size: 8 }, // bytes 0..8
                TxOp::Compute { cycles: 800 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 300 },
                TxOp::Write { addr: Addr(0x1020), size: 8, value: 2 }, // bytes 32..40
                TxOp::Compute { cycles: 800 },
            ])],
        ],
    }
}

#[test]
fn baseline_aborts_on_false_sharing() {
    let out = Machine::run(&false_sharing_workload(), cfg(DetectorKind::Baseline, 2));
    assert!(out.stats.conflicts.false_total() >= 1, "{:?}", out.stats.conflicts);
    assert_eq!(out.stats.conflicts.true_total(), 0);
    assert!(out.stats.tx_aborted >= 1);
    // Both eventually commit with their values.
    assert_eq!(out.stats.tx_committed, 2);
    assert_eq!(out.memory.read_u64(Addr(0x1020), 8), 2);
}

#[test]
fn subblock4_eliminates_cross_subblock_false_sharing() {
    for k in [DetectorKind::SubBlock(4), DetectorKind::SubBlock(8), DetectorKind::Perfect] {
        let out = Machine::run(&false_sharing_workload(), cfg(k, 2));
        assert_eq!(out.stats.conflicts.total(), 0, "{k} flagged a conflict");
        assert_eq!(out.stats.tx_aborted, 0, "{k} aborted");
        assert_eq!(out.stats.tx_committed, 2);
        assert_eq!(out.memory.read_u64(Addr(0x1020), 8), 2);
    }
}

#[test]
fn write_write_false_sharing_aborts_at_every_hardware_granularity() {
    // The WAW-any rule: an invalidating probe on a line with any speculative
    // write aborts the victim even across sub-blocks (data-loss avoidance).
    let w = ScriptedWorkload {
        name: "waw-any",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x1800), size: 8, value: 1 },
                TxOp::Compute { cycles: 800 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 300 },
                TxOp::Write { addr: Addr(0x1820), size: 8, value: 2 },
                TxOp::Compute { cycles: 800 },
            ])],
        ],
    };
    for k in [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::SubBlock(16)] {
        let out = Machine::run(&w, cfg(k, 2));
        assert!(out.stats.conflicts.false_total() >= 1, "{k} must keep WAW-any");
    }
    // The perfect oracle has no such constraint.
    let out = Machine::run(&w, cfg(DetectorKind::Perfect, 2));
    assert_eq!(out.stats.conflicts.total(), 0);
}

#[test]
fn subblock_still_conflicts_within_subblock() {
    // Reader at bytes 0..8 vs writer at bytes 8..16 share a 16-byte
    // sub-block: residual false conflict at sb4.
    let w = ScriptedWorkload {
        name: "within-sb",
        scripts: vec![
            vec![tx(vec![
                TxOp::Read { addr: Addr(0x1000), size: 8 },
                TxOp::Compute { cycles: 800 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 300 },
                TxOp::Write { addr: Addr(0x1008), size: 8, value: 2 },
                TxOp::Compute { cycles: 800 },
            ])],
        ],
    };
    let out = Machine::run(&w, cfg(DetectorKind::SubBlock(4), 2));
    assert!(out.stats.conflicts.false_total() >= 1);
    // ...but 8-byte sub-blocks resolve it.
    let out8 = Machine::run(&w, cfg(DetectorKind::SubBlock(8), 2));
    assert_eq!(out8.stats.conflicts.total(), 0);
}

#[test]
fn true_conflicts_detected_by_every_detector() {
    // Both cores update the same 8 bytes.
    let w = ScriptedWorkload {
        name: "true-conflict",
        scripts: vec![
            vec![tx(vec![
                TxOp::Update { addr: Addr(0x2000), size: 8, delta: 1 },
                TxOp::Compute { cycles: 500 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 200 },
                TxOp::Update { addr: Addr(0x2000), size: 8, delta: 1 },
                TxOp::Compute { cycles: 500 },
            ])],
        ],
    };
    for k in [
        DetectorKind::Baseline,
        DetectorKind::SubBlock(4),
        DetectorKind::SubBlock(16),
        DetectorKind::Perfect,
    ] {
        let out = Machine::run(&w, cfg(k, 2));
        assert!(out.stats.conflicts.true_total() >= 1, "{k}: {:?}", out.stats.conflicts);
        assert_eq!(out.memory.read_u64(Addr(0x2000), 8), 2, "{k} lost an update");
        assert_eq!(out.stats.isolation_violations, 0, "{k}");
    }
}

/// The Figure 6(a) scenario: T0 speculatively writes sub-block 0; T1 reads
/// sub-block 1 (no conflict, gets piggy-backed dirty bits), then reads the
/// bytes T0 wrote. The dirty mechanism must force a refetch that aborts T0.
fn figure6a_workload() -> ScriptedWorkload {
    ScriptedWorkload {
        name: "fig6a",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x3000), size: 8, value: 0xAA }, // sb 0
                TxOp::WaitUntil { cycle: 5_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Read { addr: Addr(0x3010), size: 8 }, // sb 1: survives
                TxOp::WaitUntil { cycle: 2_000 },
                TxOp::Read { addr: Addr(0x3000), size: 8 }, // T0's bytes
            ])],
        ],
    }
}

#[test]
fn dirty_state_catches_figure6a_conflict() {
    let mut c = cfg(DetectorKind::SubBlock(4), 2);
    c.enable_dirty = true;
    let out = Machine::run(&figure6a_workload(), c);
    assert_eq!(out.stats.isolation_violations, 0);
    assert!(out.stats.dirty_refetches >= 1, "dirty refetch must trigger");
    assert!(out.stats.conflicts.true_total() >= 1, "true RAW must be detected");
    assert_eq!(out.stats.tx_committed, 2);
}

#[test]
fn disabling_dirty_reproduces_figure6a_hazard() {
    let mut c = cfg(DetectorKind::SubBlock(4), 2);
    c.enable_dirty = false;
    let out = Machine::run(&figure6a_workload(), c);
    assert!(
        out.stats.isolation_violations >= 1,
        "without dirty state the RAW conflict goes undetected"
    );
    assert_eq!(out.stats.dirty_refetches, 0);
}

/// Figure 6(b): T0 aborts (user abort) after T1 marked its sub-blocks
/// dirty; T1's later read must refetch and proceed with committed data.
#[test]
fn figure6b_abort_then_dirty_read_recovers() {
    let w = ScriptedWorkload {
        name: "fig6b",
        scripts: vec![
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x4000), size: 8, value: 0xBB },
                TxOp::WaitUntil { cycle: 1_500 },
                TxOp::UserAbort { num: 1, den: 1 }, // always abort first time…
                // on retry the RNG draws again; num/den=1 ⇒ aborts forever,
                // so the machine eventually takes the fallback path.
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 500 },
                TxOp::Read { addr: Addr(0x4010), size: 8 }, // dirty-marks sb0
                TxOp::WaitUntil { cycle: 3_000 },
                TxOp::Read { addr: Addr(0x4000), size: 8 }, // after T0 aborted
            ])],
        ],
    };
    let mut c = cfg(DetectorKind::SubBlock(4), 2);
    c.max_retries = 2;
    let out = Machine::run(&w, c);
    assert_eq!(out.stats.isolation_violations, 0);
    // T0's aborted value becomes visible only via its fallback execution;
    // T1 committed reading consistent data throughout.
    assert_eq!(out.stats.tx_committed, 2);
    assert!(out.stats.aborts_by_cause[3] >= 1, "user aborts recorded");
}

#[test]
fn capacity_abort_and_fallback_progress() {
    // Tiny L1: 4 sets × 2 ways. Three speculative lines in set 0 cannot be
    // pinned simultaneously → deterministic capacity abort → fallback lock.
    let w = ScriptedWorkload {
        name: "capacity",
        scripts: vec![vec![tx(vec![
            TxOp::Write { addr: Addr(0), size: 8, value: 1 },
            TxOp::Write { addr: Addr(4 * 64), size: 8, value: 2 },
            TxOp::Write { addr: Addr(8 * 64), size: 8, value: 3 },
        ])]],
    };
    let mut c = SimConfig::paper(DetectorKind::Baseline);
    c.machine = MachineConfig::tiny_l1(1);
    c.max_retries = 2;
    let out = Machine::run(&w, c);
    assert!(out.stats.aborts_by_cause[2] >= 1, "capacity aborts recorded");
    assert_eq!(out.stats.fallback_commits, 1);
    assert_eq!(out.stats.tx_committed, 1);
    // The fallback executed the writes.
    assert_eq!(out.memory.read_u64(Addr(0), 8), 1);
    assert_eq!(out.memory.read_u64(Addr(4 * 64), 8), 2);
    assert_eq!(out.memory.read_u64(Addr(8 * 64), 8), 3);
}

#[test]
fn serializability_of_shared_counter() {
    // 4 cores × 25 increments of one shared counter: the committed value
    // must be exactly 100 under every detector (no lost updates).
    let mk = |n_tx: usize| {
        let item = tx(vec![
            TxOp::Update { addr: Addr(0x8000), size: 8, delta: 1 },
            TxOp::Compute { cycles: 60 },
        ]);
        vec![item; n_tx]
    };
    for k in [
        DetectorKind::Baseline,
        DetectorKind::SubBlock(2),
        DetectorKind::SubBlock(4),
        DetectorKind::SubBlock(16),
        DetectorKind::Perfect,
    ] {
        let w = ScriptedWorkload {
            name: "counter",
            scripts: (0..4).map(|_| mk(25)).collect(),
        };
        let out = Machine::run(&w, cfg(k, 4));
        assert_eq!(out.memory.read_u64(Addr(0x8000), 8), 100, "{k} lost updates");
        assert_eq!(out.stats.isolation_violations, 0, "{k}");
        assert_eq!(out.stats.tx_committed + out.stats.fallback_commits
                   - out.stats.fallback_commits, out.stats.tx_committed);
        assert_eq!(out.stats.tx_committed, 100, "{k}");
    }
}

#[test]
fn per_core_slots_on_shared_lines_never_lose_updates() {
    // Each core owns an 8-byte slot of the same two lines — heavy false
    // sharing, zero true sharing. All updates must survive.
    let cores = 4;
    let mk = |tid: usize| {
        let a = Addr(0x9000 + (tid as u64) * 8);
        let b = Addr(0x9040 + (tid as u64) * 8);
        let item = tx(vec![
            TxOp::Update { addr: a, size: 8, delta: 1 },
            TxOp::Update { addr: b, size: 8, delta: 2 },
            TxOp::Compute { cycles: 40 },
        ]);
        vec![item; 20]
    };
    for k in [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect] {
        let w = ScriptedWorkload {
            name: "slots",
            scripts: (0..cores).map(mk).collect(),
        };
        let out = Machine::run(&w, cfg(k, cores));
        for tid in 0..cores {
            assert_eq!(
                out.memory.read_u64(Addr(0x9000 + (tid as u64) * 8), 8),
                20,
                "{k} core {tid} slot A"
            );
            assert_eq!(
                out.memory.read_u64(Addr(0x9040 + (tid as u64) * 8), 8),
                40,
                "{k} core {tid} slot B"
            );
        }
        assert_eq!(out.stats.isolation_violations, 0);
        // Baseline must suffer false conflicts here; perfect must not.
        match k {
            DetectorKind::Baseline => {
                assert!(out.stats.conflicts.false_total() > 0, "baseline saw no false conflicts")
            }
            DetectorKind::Perfect => assert_eq!(out.stats.conflicts.false_total(), 0),
            _ => {}
        }
    }
}

#[test]
fn detector_granularity_orders_false_conflicts() {
    // Single writer + three readers on disjoint 8-byte slots of one line:
    // coarser detectors can only see more (or equal) false conflicts; 8-byte
    // sub-blocks resolve everything (all sharing is read-vs-write here).
    let cores = 4;
    let mk = |tid: usize| {
        let a = Addr(0xa000 + (tid as u64) * 8);
        let item = if tid == 0 {
            tx(vec![
                TxOp::Update { addr: a, size: 8, delta: 1 },
                TxOp::Compute { cycles: 30 },
            ])
        } else {
            tx(vec![
                TxOp::Read { addr: a, size: 8 },
                TxOp::Compute { cycles: 30 },
            ])
        };
        vec![item; 15]
    };
    let run = |k: DetectorKind| {
        let w = ScriptedWorkload { name: "order", scripts: (0..cores).map(mk).collect() };
        Machine::run(&w, cfg(k, cores)).stats.conflicts.false_total()
    };
    let base = run(DetectorKind::Baseline);
    let sb4 = run(DetectorKind::SubBlock(4));
    let sb8 = run(DetectorKind::SubBlock(8));
    let perfect = run(DetectorKind::Perfect);
    assert!(base >= sb4, "baseline {base} < sb4 {sb4}");
    assert!(sb4 >= sb8, "sb4 {sb4} < sb8 {sb8}");
    assert_eq!(perfect, 0);
    assert!(base > 0, "workload generated no contention");
    assert_eq!(sb8, 0, "8-byte slots at 8-byte granularity must not conflict");
}

#[test]
fn plain_nontx_access_aborts_remote_transactions() {
    let w = ScriptedWorkload {
        name: "nontx-abort",
        scripts: vec![
            vec![tx(vec![
                TxOp::Read { addr: Addr(0xb000), size: 8 },
                TxOp::WaitUntil { cycle: 2_000 },
            ])],
            vec![WorkItem::Plain(vec![
                TxOp::WaitUntil { cycle: 500 },
                TxOp::Write { addr: Addr(0xb000), size: 8, value: 9 },
            ])],
        ],
    };
    let out = Machine::run(&w, cfg(DetectorKind::Baseline, 2));
    assert!(out.stats.conflicts.true_total() >= 1);
    assert_eq!(out.memory.read_u64(Addr(0xb000), 8), 9);
    assert_eq!(out.stats.tx_committed, 1); // the txn retried and committed
}

#[test]
fn deterministic_given_seed() {
    let mk = || ScriptedWorkload {
        name: "det",
        scripts: (0..4)
            .map(|_| {
                vec![
                    tx(vec![
                        TxOp::Update { addr: Addr(0xc000), size: 8, delta: 1 },
                        TxOp::Compute { cycles: 50 },
                    ]);
                    10
                ]
            })
            .collect(),
    };
    let a = Machine::run(&mk(), cfg(DetectorKind::SubBlock(4), 4));
    let b = Machine::run(&mk(), cfg(DetectorKind::SubBlock(4), 4));
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.conflicts, b.stats.conflicts);
    assert_eq!(a.stats.tx_attempts, b.stats.tx_attempts);
}

#[test]
fn latency_levels_are_charged() {
    // A second read of the same line must be an L1 hit and cheap.
    let w = ScriptedWorkload {
        name: "latency",
        scripts: vec![vec![
            WorkItem::Plain(vec![TxOp::Read { addr: Addr(0xd000), size: 8 }]),
            WorkItem::Plain(vec![TxOp::Read { addr: Addr(0xd000), size: 8 }]),
        ]],
    };
    let out = Machine::run(&w, cfg(DetectorKind::Baseline, 1));
    assert_eq!(out.stats.l1_misses, 1);
    assert_eq!(out.stats.l1_hits, 1);
    // 210 (memory) + 3 (hit).
    assert_eq!(out.stats.cycles, 213);
}

#[test]
fn coherence_invariants_hold_throughout_contended_runs() {
    // Step the machine manually and check the MOESI single-writer invariant
    // at every scheduler step of a heavily false-sharing run.
    let cores = 4;
    let mk = |tid: usize| {
        let a = Addr(0xe000 + (tid as u64) * 8);
        let item = tx(vec![
            TxOp::Update { addr: a, size: 8, delta: 1 },
            TxOp::Read { addr: Addr(0xe000 + (((tid + 1) % cores) as u64) * 8), size: 8 },
            TxOp::Compute { cycles: 40 },
        ]);
        vec![item; 12]
    };
    for k in [DetectorKind::Baseline, DetectorKind::SubBlock(4), DetectorKind::Perfect] {
        let w = ScriptedWorkload { name: "inv", scripts: (0..cores).map(mk).collect() };
        let mut m = Machine::new(&w, cfg(k, cores));
        let mut steps = 0u64;
        while m.step_n(1) {
            steps += 1;
            if steps.is_multiple_of(7) {
                m.check_coherence_invariants()
                    .unwrap_or_else(|e| panic!("{k} step {steps}: {e}"));
            }
            assert!(steps < 2_000_000, "runaway");
        }
        m.check_coherence_invariants().unwrap();
    }
}

#[test]
fn latency_jitter_keeps_invariants_and_determinism() {
    let mk = || {
        let item = tx(vec![
            TxOp::Update { addr: Addr(0xf000), size: 8, delta: 1 },
            TxOp::Read { addr: Addr(0xf008), size: 8 },
            TxOp::Compute { cycles: 30 },
        ]);
        ScriptedWorkload { name: "jitter", scripts: (0..4).map(|_| vec![item.clone(); 15]).collect() }
    };
    let mut c = cfg(DetectorKind::SubBlock(4), 4);
    c.latency_jitter = 25;
    let a = Machine::run(&mk(), c);
    let b = Machine::run(&mk(), c);
    // Still deterministic per seed…
    assert_eq!(a.stats.cycles, b.stats.cycles);
    // …still serializable…
    assert_eq!(a.memory.read_u64(Addr(0xf000), 8), 60);
    assert_eq!(a.stats.isolation_violations, 0);
    // …and actually different from the unjittered timing.
    let mut c0 = cfg(DetectorKind::SubBlock(4), 4);
    c0.latency_jitter = 0;
    let plain = Machine::run(&mk(), c0);
    assert_ne!(plain.stats.cycles, a.stats.cycles);
}

#[test]
fn retained_metadata_still_detects_conflicts_after_false_war_invalidation() {
    // §IV-D-2: "all the speculative information will still stay inside the
    // invalidated cache line… conflict check will be done for both valid
    // and invalidated cache lines."
    //
    // T0 reads sub-block 0. T1's write to sub-block 2 invalidates T0's line
    // *without* a conflict (false WAR survival at sb4). T2 then writes the
    // very bytes T0 read — T0's line is invalid, so only the retained
    // metadata can catch this true WAR. It must.
    let w = ScriptedWorkload {
        name: "retained",
        scripts: vec![
            vec![tx(vec![
                TxOp::Read { addr: Addr(0x4000), size: 8 }, // sub-block 0
                TxOp::WaitUntil { cycle: 6_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Write { addr: Addr(0x4020), size: 8, value: 1 }, // sub-block 2
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 3_000 },
                TxOp::Write { addr: Addr(0x4000), size: 8, value: 2 }, // T0's bytes
            ])],
        ],
    };
    let out = Machine::run(&w, cfg(DetectorKind::SubBlock(4), 3));
    // Exactly one conflict: T2's true WAR against T0's retained read.
    assert_eq!(out.stats.conflicts.total(), 1, "{:?}", out.stats.conflicts);
    assert_eq!(out.stats.conflicts.true_total(), 1);
    assert_eq!(out.stats.isolation_violations, 0);
    assert_eq!(out.stats.tx_committed, 3);
}

#[test]
fn probe_filter_keeps_probing_retained_only_holders() {
    // Same scenario under the probe filter: after T1's invalidation, T0
    // holds only retained metadata (no line anywhere in its hierarchy);
    // the directory must still route T2's probe to T0.
    use asf_machine::machine::FabricKind;
    let w = ScriptedWorkload {
        name: "retained-filter",
        scripts: vec![
            vec![tx(vec![
                TxOp::Read { addr: Addr(0x4100), size: 8 },
                TxOp::WaitUntil { cycle: 6_000 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 1_000 },
                TxOp::Write { addr: Addr(0x4120), size: 8, value: 1 },
            ])],
            vec![tx(vec![
                TxOp::WaitUntil { cycle: 3_000 },
                TxOp::Write { addr: Addr(0x4100), size: 8, value: 2 },
            ])],
        ],
    };
    let mut c = cfg(DetectorKind::SubBlock(4), 3);
    c.fabric = FabricKind::ProbeFilter;
    let out = Machine::run(&w, c);
    assert_eq!(out.stats.conflicts.true_total(), 1, "{:?}", out.stats.conflicts);
    assert_eq!(out.stats.isolation_violations, 0);
}

#[test]
fn fallback_lock_blocks_new_transactions_until_release() {
    // While a core holds the software fallback lock, other cores' pending
    // transactions must not start (lock subscription). Observable through
    // the trace: every TxBegin after the FallbackAcquire belongs to the
    // owner until its release — here the victim's only commit lands after
    // the long fallback sequence finishes.
    let w = ScriptedWorkload {
        name: "lock-block",
        scripts: vec![
            // Core 0: aborts forever (user abort), falls back after 1 retry,
            // and the fallback executes a long op sequence.
            vec![tx(vec![
                TxOp::Write { addr: Addr(0x6000), size: 8, value: 1 },
                TxOp::Compute { cycles: 2_000 },
                TxOp::UserAbort { num: 1, den: 1 },
            ])],
            // Core 1: wants to start a short txn while the lock is held.
            vec![
                WorkItem::Compute { cycles: 4_500 },
                tx(vec![TxOp::Update { addr: Addr(0x7000), size: 8, delta: 1 }]),
            ],
        ],
    };
    let mut c = cfg(DetectorKind::Baseline, 2);
    c.max_retries = 1;
    let mut m = Machine::new(&w, c);
    m.enable_trace(10_000);
    let out = m.run_to_completion();
    let trace = out.trace.unwrap();
    use asf_machine::trace::TraceEvent as Ev;
    let acquire = trace.events().find_map(|e| match *e {
        Ev::FallbackAcquire { core: 0, cycle } => Some(cycle),
        _ => None,
    });
    let release = trace.events().find_map(|e| match *e {
        Ev::FallbackRelease { core: 0, cycle } => Some(cycle),
        _ => None,
    });
    let (acquire, release) = (
        acquire.expect("core 0 must take the fallback lock"),
        release.expect("core 0 must release the lock"),
    );
    assert!(release > acquire);
    // Core 1's transaction must not begin inside the held window.
    for ev in trace.events() {
        if let Ev::TxBegin { core: 1, cycle, .. } = *ev {
            assert!(
                cycle < acquire || cycle >= release,
                "core 1 began a txn at {cycle} inside the lock window {acquire}..{release}"
            );
        }
    }
    // Both effects landed exactly once regardless of ordering details.
    assert_eq!(out.memory.read_u64(Addr(0x6000), 8), 1);
    assert_eq!(out.memory.read_u64(Addr(0x7000), 8), 1);
    assert_eq!(out.stats.isolation_violations, 0);
    assert_eq!(out.stats.fallback_commits, 1);
}

/// Same-cycle scheduling ties resolve by core id (DESIGN.md §14): when
/// several cores are runnable at the same cycle, the run queue pops them in
/// ascending core order — the `(clock, core)` lexicographic contract the
/// golden digests were captured under — regardless of the order they were
/// *queued* in.
#[test]
fn same_cycle_ties_pop_in_core_id_order() {
    const CORES: usize = 8;
    const RENDEZVOUS: u64 = 5_000;
    // Each core computes a different amount first, so the cores *insert*
    // their rendezvous turns in reverse core order (core 7 arrives first),
    // then they all wake at the same cycle.
    let scripts = (0..CORES)
        .map(|tid| {
            vec![
                WorkItem::Compute { cycles: ((CORES - tid) * 10) as u64 },
                WorkItem::Plain(vec![TxOp::WaitUntil { cycle: RENDEZVOUS }]),
                tx(vec![TxOp::Write {
                    addr: Addr(0x9000 + (tid as u64) * 0x1000),
                    size: 8,
                    value: tid as u64,
                }]),
            ]
        })
        .collect();
    let w = ScriptedWorkload { name: "same-cycle-ties", scripts };
    let mut m = Machine::new(&w, cfg(DetectorKind::SubBlock(8), CORES));
    m.enable_trace(10_000);
    let out = m.run_to_completion();
    let trace = out.trace.unwrap();
    use asf_machine::trace::TraceEvent as Ev;
    // Trace order is execution order: the begin events at the rendezvous
    // cycle must come out in ascending core id, pinning the tie-break.
    let begins: Vec<(u64, usize)> = trace
        .events()
        .filter_map(|e| match *e {
            Ev::TxBegin { core, cycle, .. } => Some((cycle, core)),
            _ => None,
        })
        .collect();
    let expect: Vec<(u64, usize)> = (0..CORES).map(|c| (RENDEZVOUS, c)).collect();
    assert_eq!(begins, expect, "same-cycle pops must come out in core-id order");
    assert_eq!(out.stats.tx_committed, CORES as u64);
}
